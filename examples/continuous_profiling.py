"""Continuous profiling: merge profiles across runs (DCPI-style).

The paper's software sibling, DCPI, runs continuously and accumulates
samples across many executions.  This example profiles the same workload
several times (different sampling seeds standing in for separate
production runs), persists each profile, merges them, and shows the
estimator error shrinking like 1/sqrt(samples) as profiles accumulate —
the practical payoff of cheap always-on sampling.

Run:  python examples/continuous_profiling.py
"""

import os
import tempfile

from repro.analysis.convergence import (convergence_points,
                                        effective_interval,
                                        retired_property)
from repro.analysis.database import ProfileDatabase
from repro.analysis.persistence import load_database, save_database
from repro.harness import run_profiled
from repro.profileme import ProfileMeConfig
from repro.workloads import suite_program

RUNS = 6
INTERVAL = 300


def main():
    program = suite_program("compress", scale=2)

    merged = ProfileDatabase()
    truth = None
    total_fetched = 0
    workdir = tempfile.mkdtemp(prefix="repro-profiles-")
    print("Profiling %r %d times (S=%d), profiles in %s\n"
          % (program.name, RUNS, INTERVAL, workdir))

    for run_index in range(RUNS):
        run = run_profiled(
            program,
            profile=ProfileMeConfig(mean_interval=INTERVAL,
                                    seed=100 + run_index),
            collect_truth=True, keep_records=False)
        truth = run.truth  # identical every run (same program)
        total_fetched += run.truth.total_fetched

        path = os.path.join(workdir, "run%d.json" % run_index)
        save_database(run.database, path)
        merged.merge(load_database(path))

        s_eff = effective_interval(total_fetched, merged.total_samples)
        points = convergence_points(merged, truth, s_eff / (run_index + 1),
                                    retired_property, min_actual=100)
        errors = sorted(abs(p.ratio - 1.0) for p in points)
        mean_error = sum(errors) / len(errors)
        print("after run %d: %5d samples, mean |ratio-1| = %.3f "
              "(median %.3f)"
              % (run_index + 1, merged.total_samples, mean_error,
                 errors[len(errors) // 2]))

    print("\nEstimates sharpen as profiles accumulate — no instrumentation,")
    print("no recompilation, just merged sample databases.")


if __name__ == "__main__":
    main()
