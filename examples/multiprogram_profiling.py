"""System-wide profiling: two processes sharing a cache (section 4.1.3).

ProfileMe's Profiled Context Register lets one sampling infrastructure
attribute samples across every process in the system.  This example runs
two different workloads as contexts sharing an L2 cache, profiles both,
and reports per-context profiles plus the shared-cache interference each
suffers.

Run:  python examples/multiprogram_profiling.py
"""

from repro.analysis.cycles import program_breakdown
from repro.events import Event
from repro.multiprog import MultiProgramSession
from repro.profileme import ProfileMeConfig
from repro.workloads import suite_program

INTERVAL = 80


def main():
    programs = [suite_program("compress", scale=1),
                suite_program("vortex", scale=1)]
    session = MultiProgramSession(
        programs, quantum=200,
        profile=ProfileMeConfig(mean_interval=INTERVAL, seed=9))
    total = session.run()

    print("Ran %d contexts in %d total cycles (shared L2: %d hits, "
          "%d misses)\n"
          % (len(session.contexts), total, session.shared_l2.hits,
             session.shared_l2.misses))

    for ctx in session.contexts:
        core = ctx.core
        print("context %d (%s): retired %d, IPC %.2f, %d samples"
              % (ctx.context, ctx.program.name, core.retired, core.ipc,
                 ctx.driver.delivered))
        misses = ctx.database.top_by_event(Event.DCACHE_MISS, limit=2)
        for pc, count in misses:
            if count == 0:
                continue
            print("  hot miss: pc=%#06x %-20s %d miss samples"
                  % (pc, ctx.program.fetch(pc).disassemble(), count))
        totals, fractions = program_breakdown(ctx.database, INTERVAL)
        top_category = max(
            (c for c in fractions if fractions[c] is not None),
            key=lambda c: fractions[c])
        print("  dominant stall category: %s (%.0f%% of in-progress "
              "cycles)\n"
              % (top_category, 100 * fractions[top_category]))

    grouped = session.records_by_context()
    print("Profiled Context Register attribution check:")
    for context, records in sorted(grouped.items()):
        assert all(r.context == context for r in records)
        print("  context %d: %d records, all correctly stamped"
              % (context, len(records)))


if __name__ == "__main__":
    main()
