"""Profiling an SMT machine: one sampler, per-thread truth.

Runs a memory-bound pointer chase and a compute-bound daxpy as two SMT
hardware contexts sharing one pipeline, measures the classic SMT
throughput win, and shows a single ProfileMe unit attributing samples
across both threads via the Profiled Context Register — including each
thread's dominant stall cause, recovered from the shared sample stream.

Run:  python examples/smt_profiling.py
"""

from repro.analysis.bottlenecks import diagnose
from repro.analysis.database import ProfileDatabase
from repro.cpu.smt import SmtCore, smt_speedup
from repro.profileme import ProfileMeConfig, ProfileMeDriver, ProfileMeUnit
from repro.workloads import classic_kernel


def main():
    chase, _ = classic_kernel("pointer_chase", nodes=8192, hops=4000)
    daxpy, _ = classic_kernel("daxpy", n=1500)
    programs = [chase, daxpy]

    smt_cycles, serial_cycles, speedup = smt_speedup(programs)
    print("back-to-back: %d cycles;  SMT: %d cycles;  speedup %.2fx"
          % (serial_cycles, smt_cycles, speedup))
    print("(the chase's load-latency bubbles are filled by daxpy's "
          "arithmetic)\n")

    # Profile the SMT machine with ONE sampling unit.
    smt = SmtCore(programs)
    driver = ProfileMeDriver()
    databases = {0: ProfileDatabase(), 1: ProfileDatabase()}

    class Demux:
        def add(self, record):
            databases[record.context].add_record(record)

    driver.add_sink(Demux())
    smt.add_probe(ProfileMeUnit(ProfileMeConfig(mean_interval=30, seed=5),
                                handler=driver.handle_interrupt))
    smt.run()

    names = {0: "pointer_chase", 1: "daxpy"}
    for context, database in databases.items():
        core = smt.threads[context]
        print("context %d (%s): %d retired, thread IPC %.2f, %d samples"
              % (context, names[context], core.retired,
                 core.retired / smt.cycle, database.total_samples))
        hottest = max(database.per_pc.values(), key=lambda p: p.samples)
        contributions, notes = diagnose(hottest)
        if contributions:
            name_, mean, cause = contributions[0]
            print("  hottest pc %#x: %s = %.1f cycles (%s)"
                  % (hottest.pc, name_, mean, cause))
        for note in notes[:1]:
            print("  note: %s" % note)
    print("\nmachine IPC: %.2f across both contexts" % smt.ipc)


if __name__ == "__main__":
    main()
