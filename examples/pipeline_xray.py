"""Pipeline X-ray: statistical state reconstruction from paired samples.

Section 5.2 suggests paired samples could "statistically reconstruct
detailed processor pipeline states".  This example does it: it profiles
the Figure 7 three-loop program with 4-way sampling, estimates the
probability of finding a concurrent instruction in each pipeline stage
around a typical instruction, and then runs the section 5.2.4 clustering
suggestion — comparing useful concurrency when loads hit vs miss the
D-cache.

Run:  python examples/pipeline_xray.py
"""

from repro.analysis.pipeline_state import (PipelineStateEstimator,
                                           conditional_concurrency,
                                           memory_shadow_overlap)
from repro.harness import run_profiled
from repro.profileme import ProfileMeConfig
from repro.workloads import fig7_three_loops

BAR = 40


def render_series(label, series, step=4):
    cells = []
    for index in range(0, len(series), step):
        window = series[index:index + step]
        value = sum(window) / len(window)
        cells.append("#" if value > 0.5 else
                     "+" if value > 0.2 else
                     "." if value > 0.05 else " ")
    print("  %-15s |%s|" % (label, "".join(cells)))


def main():
    program, regions = fig7_three_loops(iterations=400)
    run = run_profiled(
        program,
        profile=ProfileMeConfig(mean_interval=40, group_size=4,
                                pair_window=12, seed=13),
    )
    print("Collected %d four-way sample groups (%d member pairs).\n"
          % (len(run.driver.groups), run.pair_analyzer.pairs_usable))

    estimator = PipelineStateEstimator(max_offset=64)
    for sample in run.driver.groups:
        estimator.add(sample)

    profile = estimator.profile()
    print("Probability of finding a concurrent instruction in each stage,")
    print("by cycle offset after a random instruction's fetch "
          "(each cell = 4 cycles):")
    for stage in ("frontend", "queue", "execute", "waiting_retire"):
        render_series(stage, profile[stage])
    print()
    for stage in ("frontend", "queue", "execute", "waiting_retire"):
        print("  mean %-15s occupancy: %.2f"
              % (stage, estimator.mean_occupancy(stage)))

    # Section 5.2.4's clustering example: concurrency when loads hit vs
    # miss, using the load's *memory shadow* (its outstanding fill) as
    # the overlap window.
    buckets = conditional_concurrency(run.driver.groups,
                                      overlap=memory_shadow_overlap)
    print("\nUseful work issued under the load's memory shadow:")
    for key in sorted(buckets):
        split = buckets[key]
        print("  D-cache %-5s anchors=%4d shadow-overlap rate=%.2f"
              % (key, split.anchors, split.rate))
    if "miss" in buckets and "hit" in buckets:
        print("(a missing load's long shadow is where useful overlap "
              "comes from -- or fails to)")


if __name__ == "__main__":
    main()
