"""Quickstart: profile a small program with ProfileMe.

Builds a tiny array-summing loop, runs it on the out-of-order core with
instruction sampling attached, and prints what the profiling software
sees: per-instruction sample counts, event rates, and the Table 1 latency
registers.

Run:  python examples/quickstart.py
"""

from repro.analysis.reports import latency_table
from repro.events import Event
from repro.harness import run_profiled
from repro.isa import ProgramBuilder
from repro.profileme import ProfileMeConfig


def build_program():
    b = ProgramBuilder(name="quickstart")
    b.alloc("arr", 4096)
    b.begin_function("main")
    b.ldi(1, 2000)  # iterations
    b.li_addr(2, "arr")  # pointer
    b.ldi(3, 0)  # accumulator
    b.label("loop")
    b.ld(4, 2, 0)  # load (stride of one cache line: misses often)
    b.mul(5, 4, 4)  # long-latency op fed by the load
    b.add(3, 3, 5)
    b.lda(2, 2, 64)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main")


def main():
    program = build_program()
    run = run_profiled(
        program,
        profile=ProfileMeConfig(mean_interval=25, seed=1),
    )

    core = run.core
    print("Simulated %d instructions in %d cycles (IPC %.2f), "
          "%d aborted on wrong paths, %d branch mispredicts."
          % (core.retired, core.cycle, core.ipc, core.aborted,
             core.mispredicts))
    print("ProfileMe delivered %d samples via %d interrupts.\n"
          % (run.driver.delivered, run.unit.stats.interrupts))

    print("Top instructions by sampled D-cache misses:")
    for pc, count in run.database.top_by_event(Event.DCACHE_MISS, limit=3):
        print("  %#06x  %-22s %3d miss samples"
              % (pc, program.fetch(pc).disassemble(), count))

    print()
    print(latency_table(run.database, program=program))


if __name__ == "__main__":
    main()
