"""Profile-guided code layout: close the optimization loop (section 7).

Profiles a program whose hot functions are scattered between cold pads on
a small instruction cache, uses the sampled I-cache misses to choose a
hot-first function order, *applies* the reordering (relocating code and
relinking branch targets), and re-measures — demonstrating the section 7
claim that ProfileMe data can drive real optimizations.

Run:  python examples/layout_optimizer.py
"""

from repro.analysis.optimize import (function_heat,
                                     layout_order_from_profile,
                                     reorder_functions)
from repro.cpu.config import MachineConfig
from repro.events import Event
from repro.harness import run_profiled
from repro.isa import ProgramBuilder
from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import HierarchyConfig
from repro.profileme import ProfileMeConfig


def scattered_program():
    """Three hot functions interleaved with cold pads of ~one cache span."""
    b = ProgramBuilder(name="scattered")
    b.begin_function("main")
    b.ldi(1, 120)
    for name in ("cold_0", "cold_1", "cold_2"):
        b.jsr(name, ra=26)
    b.label("outer")
    for name in ("hot_0", "hot_1", "hot_2"):
        b.jsr(name, ra=26)
    b.lda(1, 1, -1)
    b.bne(1, "outer")
    b.halt()
    b.end_function()
    for index in range(3):
        b.begin_function("hot_%d" % index)
        for _ in range(35):
            b.add(3, 3, 1)
            b.xor(4, 4, 3)
            b.lda(5, 5, 1)
            b.or_(6, 6, 4)
        b.ret(26)
        b.end_function()
        b.begin_function("cold_%d" % index)
        b.nop(380)
        b.ret(26)
        b.end_function()
    return b.build(entry="main")


def main():
    program = scattered_program()
    config = MachineConfig.alpha21264_like(memory=HierarchyConfig(
        l1i=CacheConfig(name="l1i", size_bytes=2048, line_bytes=64,
                        associativity=1)))
    profile = ProfileMeConfig(mean_interval=20, seed=3)

    before = run_profiled(program, config=config, profile=profile)
    print("Baseline: %d cycles, %d I-cache misses"
          % (before.cycles, before.core.hierarchy.l1i.misses))

    print("\nSampled I-cache misses per function:")
    for name, count in function_heat(before.database, program):
        print("  %-8s %4d miss samples" % (name, count))

    order = layout_order_from_profile(before.database, program)
    print("\nChosen layout order: %s" % ", ".join(order))
    improved = reorder_functions(program, order)

    after = run_profiled(improved, config=config, profile=profile)
    print("\nAfter reordering: %d cycles, %d I-cache misses"
          % (after.cycles, after.core.hierarchy.l1i.misses))
    assert after.core.retired == before.core.retired
    print("Speedup: %.2fx, I-cache misses reduced by %.0f%%"
          % (before.cycles / after.cycles,
             100 * (1 - after.core.hierarchy.l1i.misses
                    / before.core.hierarchy.l1i.misses)))


if __name__ == "__main__":
    main()
