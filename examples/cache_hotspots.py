"""Memory-behaviour analysis from sampled effective addresses (section 7).

Profiles the vortex-like workload (large footprint, random access) with
address retention enabled and produces the section 7 memory feedback:

* load classification (Abraham & Rau): always-hit / always-miss /
  bimodal loads, for scheduling and prefetch decisions;
* per-page miss reports (the CML-buffer equivalent) for page recoloring;
* superpage candidates from DTB-miss runs.

Run:  python examples/cache_hotspots.py
"""

from repro.analysis.optimize import (classify_loads, page_reports,
                                     superpage_candidates)
from repro.analysis.reports import format_table
from repro.harness import run_profiled
from repro.profileme import ProfileMeConfig
from repro.workloads import suite_program


def main():
    program = suite_program("vortex", scale=2)
    print("Profiling %r (%d static instructions) with address "
          "retention..." % (program.name, len(program)))
    run = run_profiled(
        program,
        profile=ProfileMeConfig(mean_interval=40, seed=5),
        keep_addresses=64,
    )
    print("Collected %d samples over %d cycles.\n"
          % (run.driver.delivered, run.cycles))

    classes = classify_loads(run.database, min_samples=5)
    rows = [["%#06x" % c.pc, c.category, c.samples,
             "%.0f%%" % (100 * c.miss_fraction),
             "%.1f" % c.mean_latency]
            for c in classes[:8]]
    print(format_table(
        ["load pc", "class", "samples", "miss rate", "mean latency"],
        rows, title="Load classification (Abraham & Rau)"))

    print()
    reports = page_reports(run.database)
    rows = [["%#x" % (r.page * 8192), r.references, r.dcache_misses,
             r.dtb_misses] for r in reports[:8]]
    print(format_table(
        ["page", "sampled refs", "D-miss samples", "DTB-miss samples"],
        rows, title="Hot pages (CML-buffer equivalent)"))

    print()
    candidates = superpage_candidates(reports, min_run=2)
    if candidates:
        for first_page, count, misses in candidates[:4]:
            print("superpage candidate: %d contiguous pages at %#x "
                  "(%d DTB-miss samples)"
                  % (count, first_page * 8192, misses))
    else:
        print("no contiguous DTB-miss page runs found")


if __name__ == "__main__":
    main()
