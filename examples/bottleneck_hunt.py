"""Bottleneck hunting with paired sampling (sections 5.2 and 6).

Runs the Figure 7 three-loop program with paired sampling, then ranks
instructions two ways — by estimated total latency (available from plain
instruction sampling) and by estimated wasted issue slots (needs paired
sampling) — and shows how the rankings diverge, with Table 1 diagnoses
for the top offenders.

Run:  python examples/bottleneck_hunt.py
"""

from repro.analysis.bottlenecks import (instruction_metrics, rank_agreement,
                                        top_bottlenecks)
from repro.analysis.reports import bottleneck_report
from repro.harness import run_profiled
from repro.profileme import ProfileMeConfig
from repro.workloads import fig7_three_loops


def region_name(regions, pc):
    for name, (start, end) in regions.items():
        if start <= pc < end:
            return name
    return "-"


def main():
    program, regions = fig7_three_loops(iterations=800)
    run = run_profiled(
        program,
        profile=ProfileMeConfig(mean_interval=60, paired=True,
                                pair_window=96, seed=2),
        collect_truth=True,
    )

    analyzer = run.pair_analyzer
    # Calibrate with the measured pair rate (see benchmarks/).
    analyzer.mean_interval = (run.truth.total_fetched
                              / max(1, analyzer.pairs_usable))
    metrics = instruction_metrics(run.database,
                                  analyzer.mean_interval / 2.0,
                                  pair_analyzer=analyzer)

    print("Usable sample pairs: %d\n" % analyzer.pairs_usable)

    print("Rank by TOTAL LATENCY (single-instruction sampling):")
    for metric in top_bottlenecks(metrics, key="total_latency", limit=5):
        print("  %-8s %#06x %-20s latency=%.0f"
              % (region_name(regions, metric.pc), metric.pc,
                 program.fetch(metric.pc).disassemble(),
                 metric.total_latency))

    print("\nRank by WASTED ISSUE SLOTS (paired sampling):")
    for metric in top_bottlenecks(metrics, key="wasted_slots", limit=5):
        print("  %-8s %#06x %-20s wasted=%.0f"
              % (region_name(regions, metric.pc), metric.pc,
                 program.fetch(metric.pc).disassemble(),
                 metric.wasted_slots))

    pearson_r, spearman_r = rank_agreement(metrics)
    print("\nAgreement between the two rankings: pearson=%.2f "
          "spearman=%.2f" % (pearson_r, spearman_r))
    print("(Section 6: latency alone does not pinpoint bottlenecks when "
          "concurrency varies.)\n")

    print(bottleneck_report(metrics, run.database, program=program,
                            limit=4))


if __name__ == "__main__":
    main()
