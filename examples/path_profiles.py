"""Statistical path profiling from the Profiled Path Register (section 5.3).

Traces a branchy workload, then reconstructs the execution path leading
up to sampled instructions from (a) edge execution counts alone, (b) the
captured global branch history, and (c) history plus a paired sample —
printing the Figure 6 success-rate comparison and a worked example of one
reconstruction.

Run:  python examples/path_profiles.py
"""

from repro.analysis.pathprof import (PathReconstructor,
                                     run_reconstruction_experiment)
from repro.analysis.reports import format_table
from repro.isa.interpreter import functional_trace
from repro.utils.rng import SamplingRng
from repro.workloads import suite_program


def main():
    program = suite_program("go", scale=1)
    trace = functional_trace(program)
    print("Traced %d instructions of %r." % (len(trace), program.name))

    recon = PathReconstructor(program, trace)

    # A worked example: one sampled instruction, reconstructed back
    # through 4 branches.
    index = len(trace) - 500
    sample = trace[index]
    history = recon.history_before[index]
    result = recon.consistent_paths(sample.pc, history, bits=4,
                                    interprocedural=False)
    truth = recon.actual_path(index, bits=4, interprocedural=False)
    print("\nSampled pc=%#x, history bits (newest first)=%s"
          % (sample.pc, format(history & 0xF, "04b")[::-1]))
    print("consistent paths found: %d%s"
          % (len(result.paths), " (exploded)" if result.exploded else ""))
    for path in result.paths[:4]:
        marker = "  <-- actual" if path == truth else ""
        print("  " + " -> ".join("%#x" % pc for pc in path[-8:]) + marker)

    # The Figure 6 sweep.
    indices = list(range(300, len(trace) - 1, max(1, len(trace) // 80)))
    for interprocedural, title in ((False, "intraprocedural"),
                                   (True, "interprocedural")):
        results = run_reconstruction_experiment(
            program, trace, history_lengths=(1, 2, 4, 8, 12),
            sample_indices=indices, pair_rng=SamplingRng(7),
            interprocedural=interprocedural, reconstructor=recon)
        rows = [[bits,
                 "%.2f" % results[bits]["execution_counts"],
                 "%.2f" % results[bits]["history_bits"],
                 "%.2f" % results[bits]["history_plus_pair"]]
                for bits in sorted(results)]
        print()
        print(format_table(
            ["history bits", "exec counts", "history", "history+pair"],
            rows, title="Reconstruction success rate (%s)" % title))


if __name__ == "__main__":
    main()
