"""Ablation (section 4.1.1): instruction counting vs fetch opportunities.

The paper weighs two implementations of the Fetched Instruction Counter:
counting predicted-path instructions (every selection profiles a real
instruction, at some hardware cost) vs counting fetch opportunities
(simpler hardware, but selections may land on off-path instructions or
empty slots, "effectively reducing the useful sampling rate").

This benchmark quantifies that trade-off: the useful-sample yield of each
mode across workloads with different fetch behaviour.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.reports import format_table
from repro.harness import run_profiled
from repro.profileme.fetch_counter import CountMode
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program

BENCHMARKS = ("compress", "gcc", "go", "vortex")


def _experiment():
    scale = bench_scale()
    results = {}
    for name in BENCHMARKS:
        program = suite_program(name, scale=scale)
        per_mode = {}
        for mode in (CountMode.INSTRUCTIONS, CountMode.FETCH_OPPORTUNITIES):
            run = run_profiled(
                program,
                profile=ProfileMeConfig(mean_interval=60, mode=mode,
                                        seed=19),
                keep_records=False)
            per_mode[mode] = run.unit.stats
        results[name] = per_mode
    return results


def test_ablation_fetch_modes(benchmark):
    results = run_once(benchmark, _experiment)

    rows = []
    for name, per_mode in sorted(results.items()):
        inst = per_mode[CountMode.INSTRUCTIONS]
        opp = per_mode[CountMode.FETCH_OPPORTUNITIES]
        rows.append([
            name,
            "%.2f" % inst.useful_fraction,
            "%.2f" % opp.useful_fraction,
            opp.empty_selections,
            opp.offpath_selections,
        ])
    print("\n=== Ablation: useful-sample yield by counting mode ===")
    print(format_table(
        ["benchmark", "instr-mode yield", "opportunity-mode yield",
         "empty selections", "off-path selections"], rows))

    for name, per_mode in results.items():
        inst = per_mode[CountMode.INSTRUCTIONS]
        opp = per_mode[CountMode.FETCH_OPPORTUNITIES]
        # Instruction counting never wastes a selection.
        assert inst.useful_fraction == 1.0
        assert inst.empty_selections == 0
        # Opportunity counting always wastes some.
        assert opp.useful_fraction < 1.0
        assert opp.empty_selections + opp.offpath_selections > 0
        # ...but the yield is still the same order of magnitude (the
        # paper's motivation for considering the simpler hardware), with
        # the worst yields on fetch-stall-heavy workloads like vortex,
        # whose empty opportunities dominate.
        assert opp.useful_fraction > 0.1
