"""Section 7: profile-guided optimizations actually applied and measured.

The paper sketches optimizations ProfileMe data could drive; this
benchmark closes the loop on two of them, end to end:

* **code layout** — profile I-cache misses, reorder functions hot-first,
  re-run, measure the miss and cycle reduction;
* **prefetch insertion** — profile D-cache misses, classify loads
  (Abraham & Rau), insert PREFETCH instructions ahead of strided missing
  loads, re-run, measure the speedup.

Both transformations must preserve architectural results exactly.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.optimize import (insert_prefetches,
                                     layout_order_from_profile,
                                     plan_prefetches, reorder_functions)
from repro.analysis.reports import format_table
from repro.cpu.config import MachineConfig
from repro.harness import run_profiled
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import Interpreter
from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import HierarchyConfig
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import stall_kernel


def _scattered_program(iterations):
    """Hot functions interleaved with cold pads (layout experiment)."""
    b = ProgramBuilder(name="scattered")
    b.begin_function("main")
    b.ldi(1, iterations)
    for name in ("cold_0", "cold_1", "cold_2"):
        b.jsr(name, ra=26)
    b.label("outer")
    for name in ("hot_0", "hot_1", "hot_2"):
        b.jsr(name, ra=26)
    b.lda(1, 1, -1)
    b.bne(1, "outer")
    b.halt()
    b.end_function()
    for index in range(3):
        b.begin_function("hot_%d" % index)
        for _ in range(35):
            b.add(3, 3, 1)
            b.xor(4, 4, 3)
            b.lda(5, 5, 1)
            b.or_(6, 6, 4)
        b.ret(26)
        b.end_function()
        b.begin_function("cold_%d" % index)
        b.nop(380)
        b.ret(26)
        b.end_function()
    return b.build(entry="main")


def _layout_experiment(scale):
    program = _scattered_program(iterations=120 * scale)
    config = MachineConfig.alpha21264_like(memory=HierarchyConfig(
        l1i=CacheConfig(name="l1i", size_bytes=2048, line_bytes=64,
                        associativity=1)))
    profile = ProfileMeConfig(mean_interval=20, seed=3)
    before = run_profiled(program, config=config, profile=profile)
    order = layout_order_from_profile(before.database, program)
    improved = reorder_functions(program, order)
    after = run_profiled(improved, config=config, profile=profile)
    assert after.core.retired == before.core.retired
    return {
        "before_cycles": before.cycles,
        "after_cycles": after.cycles,
        "before_misses": before.core.hierarchy.l1i.misses,
        "after_misses": after.core.hierarchy.l1i.misses,
    }


def _prefetch_experiment(scale):
    program = stall_kernel("dcache_miss", iterations=500 * scale)
    run = run_profiled(program,
                       profile=ProfileMeConfig(mean_interval=25, seed=5))
    plans = plan_prefetches(program, run.database, lookahead=8)
    improved = insert_prefetches(program, plans)

    ref = Interpreter(program)
    ref.run_to_halt()
    got = Interpreter(improved)
    got.run_to_halt()
    assert got.state.regs.snapshot() == ref.state.regs.snapshot()

    after = run_profiled(improved,
                         profile=ProfileMeConfig(mean_interval=25, seed=5))
    return {
        "plans": len(plans),
        "before_cycles": run.cycles,
        "after_cycles": after.cycles,
        "before_ipc": run.core.ipc,
        "after_ipc": after.core.ipc,
    }


def test_sec7_optimizations(benchmark):
    scale = bench_scale()
    layout, prefetch = run_once(
        benchmark,
        lambda: (_layout_experiment(scale), _prefetch_experiment(scale)))

    print("\n=== Section 7: applied optimizations ===")
    print(format_table(
        ["experiment", "before cycles", "after cycles", "speedup",
         "detail"],
        [["code layout", layout["before_cycles"], layout["after_cycles"],
          "%.2fx" % (layout["before_cycles"] / layout["after_cycles"]),
          "I-misses %d -> %d" % (layout["before_misses"],
                                 layout["after_misses"])],
         ["prefetching", prefetch["before_cycles"],
          prefetch["after_cycles"],
          "%.2fx" % (prefetch["before_cycles"] / prefetch["after_cycles"]),
          "IPC %.2f -> %.2f (%d prefetches planned)"
          % (prefetch["before_ipc"], prefetch["after_ipc"],
             prefetch["plans"])]]))

    assert layout["after_misses"] < 0.5 * layout["before_misses"]
    assert layout["after_cycles"] < layout["before_cycles"]
    assert prefetch["plans"] >= 1
    assert prefetch["after_cycles"] < 0.8 * prefetch["before_cycles"]
