"""Ablation (section 4.3): amortizing interrupt delivery with buffering.

"ProfileMe makes it possible to reduce this overhead by providing
additional hardware copies of profile registers and by buffering multiple
samples before delivering a performance interrupt."

The benchmark runs the same workload at a fixed sampling rate with an
expensive interrupt (fixed fetch-stall cost per delivery) while sweeping
the buffer depth, and reports interrupts taken, total overhead cycles,
and run-time dilation vs an unprofiled run.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.reports import format_table
from repro.harness import make_core, run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program

DEPTHS = (1, 2, 4, 8, 16)
INTERRUPT_COST = 60  # cycles of fetch stall per delivery


def _experiment():
    scale = bench_scale()
    program = suite_program("compress", scale=2 * scale)

    baseline = make_core(program)
    baseline_cycles = baseline.run()

    rows = []
    for depth in DEPTHS:
        run = run_profiled(
            program,
            profile=ProfileMeConfig(mean_interval=50, buffer_depth=depth,
                                    interrupt_cost_cycles=INTERRUPT_COST,
                                    seed=23),
            keep_records=False)
        stats = run.unit.stats
        rows.append({
            "depth": depth,
            "samples": stats.records_delivered,
            "interrupts": stats.interrupts,
            "overhead_cycles": stats.overhead_cycles,
            "cycles": run.cycles,
            "dilation": run.cycles / baseline_cycles,
        })
    return baseline_cycles, rows


def test_ablation_buffering(benchmark):
    baseline_cycles, rows = run_once(benchmark, _experiment)

    print("\n=== Ablation: interrupt amortization vs buffer depth "
          "(baseline %d cycles) ===" % baseline_cycles)
    print(format_table(
        ["buffer depth", "samples", "interrupts", "overhead cycles",
         "total cycles", "dilation"],
        [[r["depth"], r["samples"], r["interrupts"], r["overhead_cycles"],
          r["cycles"], "%.3f" % r["dilation"]] for r in rows]))

    by_depth = {r["depth"]: r for r in rows}
    # Deeper buffers take proportionally fewer interrupts...
    assert by_depth[16]["interrupts"] * 8 <= by_depth[1]["interrupts"]
    # ...for a comparable number of samples...
    assert (by_depth[16]["samples"]
            > 0.5 * by_depth[1]["samples"])
    # ...and materially less profiling overhead.
    assert (by_depth[16]["overhead_cycles"]
            < 0.25 * by_depth[1]["overhead_cycles"])
    assert by_depth[16]["dilation"] < by_depth[1]["dilation"]
    # Profiling with per-sample interrupts is visibly intrusive.
    assert by_depth[1]["dilation"] > 1.05
