"""Section 5.1: the stochastic error model of the k*S estimator.

Monte-Carlo validation of the paper's analysis (credited to Broder and
Mitzenmacher): for sampling interval S over N fetched instructions of
which a fraction f have property P,

    E[kS] = f * N           (the estimator is unbiased)
    cv(kS) = sqrt(1/N) * sqrt((S - f) / f) ~= sqrt(1 / E[k])

The benchmark sweeps f and S, prints predicted vs observed cv, and
asserts agreement — first against a pure Bernoulli sampler (the model's
own assumptions), then against the actual ProfileMe hardware model
running a synthetic workload.
"""

import math
import random

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.estimators import (approx_coefficient_of_variation,
                                       coefficient_of_variation)
from repro.analysis.reports import format_table
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program

POPULATION = 200_000
TRIALS = 200


def _monte_carlo():
    rng = random.Random(11)
    rows = []
    for fraction in (0.002, 0.01, 0.05, 0.2):
        for interval in (50, 200):
            estimates = []
            draws = POPULATION // interval
            for _ in range(TRIALS):
                k = sum(1 for _ in range(draws)
                        if rng.random() < fraction)
                estimates.append(k * interval)
            mean = sum(estimates) / TRIALS
            var = (sum((e - mean) ** 2 for e in estimates)
                   / (TRIALS - 1))
            observed_cv = math.sqrt(var) / mean if mean else 0.0
            predicted = coefficient_of_variation(POPULATION, interval,
                                                 fraction)
            approx = approx_coefficient_of_variation(
                fraction * POPULATION / interval)
            truth = fraction * POPULATION
            rows.append((fraction, interval, mean / truth, observed_cv,
                         predicted, approx))
    return rows


def _hardware_check():
    """cv of repeated ProfileMe runs on one workload, vs prediction."""
    program = suite_program("compress", scale=bench_scale())
    interval = 100
    estimates = []
    truth_retired = None
    for seed in range(12):
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=interval,
                                                   seed=seed),
                           collect_truth=True, keep_records=False)
        from repro.events import Event

        k = sum(p.event_count(Event.RETIRED)
                for p in run.database.per_pc.values())
        estimates.append(k * interval)
        truth_retired = run.truth.total_retired
        total_fetched = run.truth.total_fetched
    mean = sum(estimates) / len(estimates)
    var = sum((e - mean) ** 2 for e in estimates) / (len(estimates) - 1)
    observed_cv = math.sqrt(var) / mean
    fraction = truth_retired / total_fetched
    predicted = coefficient_of_variation(total_fetched, interval, fraction)
    return mean, truth_retired, observed_cv, predicted


def test_sec51_estimator_error(benchmark):
    rows, hardware = run_once(
        benchmark, lambda: (_monte_carlo(), _hardware_check()))

    print("\n=== Section 5.1: predicted vs observed estimator error ===")
    table = [["%.3f" % f, s, "%.3f" % bias, "%.4f" % obs, "%.4f" % pred,
              "%.4f" % approx]
             for f, s, bias, obs, pred, approx in rows]
    print(format_table(["f", "S", "E[kS]/fN", "observed cv",
                        "exact cv", "sqrt(1/E[k])"], table))

    for fraction, interval, bias, observed, predicted, approx in rows:
        assert abs(bias - 1.0) < 0.05  # unbiased
        assert abs(observed / predicted - 1.0) < 0.35
        assert abs(approx / predicted - 1.0) < 0.05  # S >> f regime

    mean, truth, observed_cv, predicted = hardware
    print("\nProfileMe hardware, retired-count estimate over 12 seeds: "
          "mean=%.0f truth=%d observed cv=%.4f predicted cv=%.4f"
          % (mean, truth, observed_cv, predicted))
    assert abs(mean / truth - 1.0) < 0.05
    # Whole-program sample counts are near-deterministic with interval
    # sampling (intervals sum to N regardless of seed), so the observed
    # cv may sit well below the Bernoulli prediction; it must not exceed
    # it materially.
    assert observed_cv < 2.0 * predicted
