"""Figure 3 at trace scale: the functional fast path.

The cycle-level Figure 3 benchmark is limited to ~10^5-instruction
traces; the paper sampled 10^8-10^9.  The functional profiler (no
timing, full event/branch models) runs ~5-10x faster, so this benchmark
pushes the convergence experiment to multi-million-instruction traces
with S = 500 — much closer to the paper's regime (S = 10^3 on 10^8) —
and verifies the tight-convergence end of Figure 3: hot instructions
with hundreds of matching samples land within a few percent.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.convergence import (convergence_points,
                                        dcache_miss_property,
                                        effective_interval,
                                        envelope_fraction, retired_property,
                                        summarize)
from repro.analysis.reports import format_table
from repro.cpu.functional import FunctionalProfiler
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program

INTERVAL = 500


def _experiment():
    scale = bench_scale()
    all_points = {"retired": [], "dcache_miss": []}
    total_retired = 0
    for name in ("compress", "vortex"):
        program = suite_program(name, scale=40 * scale)
        profiler = FunctionalProfiler(
            program,
            profile=ProfileMeConfig(mean_interval=INTERVAL, seed=23))
        run = profiler.run()
        total_retired += run.retired
        s_eff = effective_interval(run.retired,
                                   run.database.total_samples)
        all_points["retired"].extend(convergence_points(
            run.database, run.truth, s_eff, retired_property))
        all_points["dcache_miss"].extend(convergence_points(
            run.database, run.truth, s_eff, dcache_miss_property,
            min_actual=50))
    return total_retired, all_points


def test_fig3_largescale(benchmark):
    total_retired, all_points = run_once(benchmark, _experiment)
    print("\n=== Figure 3 at trace scale: %d instructions, S=%d ==="
          % (total_retired, INTERVAL))
    for prop, points in all_points.items():
        rows = [[row["k_low"], row["k_high"], row["points"],
                 "%.3f" % row["mean_abs_error"],
                 "%.3f" % row["predicted_error"],
                 "%.2f" % row["envelope_fraction"]]
                for row in summarize(points,
                                     buckets=(1, 16, 64, 256, 1024))]
        print(format_table(
            ["k >=", "k <", "points", "mean|ratio-1|", "1/sqrt(k)",
             "in envelope"], rows,
            title="property: %s" % prop))
        print("envelope fraction: %.2f" % envelope_fraction(points))

    assert total_retired > 1_000_000
    retired = all_points["retired"]
    very_hot = [p for p in retired if p.matching_samples >= 64]
    assert very_hot
    for p in very_hot:
        # 1/sqrt(64) = 0.125; 0.35 leaves ~3 sigma of room for the
        # variance inflation of interval (vs Bernoulli) sampling.
        assert abs(p.ratio - 1.0) < 0.35
    assert envelope_fraction(retired) > 0.5
