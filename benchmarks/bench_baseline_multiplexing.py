"""Section 2.2 baseline: counter multiplexing vs ProfileMe's event field.

"There are typically many more events of interest than there are hardware
counters" — so real tools rotate event selections through the counter
file and scale by duty cycle.  On *phased* programs the rotation aliases
with the phases and the scaled estimates go badly wrong; ProfileMe
records the complete event bit-field with every sample, so one run
estimates every event (with correlations) at once.

The benchmark runs a two-phase program (miss-heavy phase, then
mispredict-heavy phase) and compares per-event estimation error:
multiplexed counters at several rotation quanta vs ProfileMe sampling.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.convergence import effective_interval
from repro.analysis.reports import format_table
from repro.counters.counter import CounterEvent
from repro.counters.multiplex import MultiplexConfig, MultiplexedCounters
from repro.cpu.ooo.core import OutOfOrderCore
from repro.analysis.groundtruth import GroundTruthCollector
from repro.events import Event
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig

from tests.counters.test_multiplex import phased_program

EVENTS = (CounterEvent.DCACHE_MISS, CounterEvent.BRANCH_MISPREDICT,
          CounterEvent.DCACHE_REF, CounterEvent.RETIRED_INST)
TRUTH_FLAGS = {
    CounterEvent.DCACHE_MISS: Event.DCACHE_MISS,
    CounterEvent.BRANCH_MISPREDICT: Event.MISPREDICT,
}


def _truth_counts(truth):
    counts = {}
    for event_kind, flag in TRUTH_FLAGS.items():
        counts[event_kind] = sum(t.count_event(flag)
                                 for t in truth.per_pc.values())
    counts[CounterEvent.RETIRED_INST] = truth.total_retired
    return counts


def _experiment():
    scale = bench_scale()
    program = phased_program(phase_a_iters=1500 * scale,
                             phase_b_iters=1500 * scale)

    rows = []
    for rotation in (200, 1000, 5000):
        core = OutOfOrderCore(program)
        truth = core.add_probe(GroundTruthCollector())
        counters = core.add_probe(MultiplexedCounters(MultiplexConfig(
            events=EVENTS, physical_counters=1,
            rotation_cycles=rotation)))
        core.run()
        truth_counts = _truth_counts(truth)
        errors = {}
        for event_kind in TRUTH_FLAGS:
            true_value = truth_counts[event_kind]
            estimate = counters.estimate(event_kind)
            errors[event_kind] = abs(estimate / true_value - 1.0) \
                if true_value else 0.0
        rows.append(("multiplex@%d" % rotation, errors))

    run = run_profiled(program,
                       profile=ProfileMeConfig(mean_interval=40,
                                               register_sets=4, seed=3),
                       collect_truth=True, keep_records=False)
    s_eff = effective_interval(run.truth.total_fetched,
                               run.database.total_samples)
    truth_counts = _truth_counts(run.truth)
    errors = {}
    for event_kind, flag in TRUTH_FLAGS.items():
        sampled = sum(p.event_count(flag)
                      for p in run.database.per_pc.values())
        true_value = truth_counts[event_kind]
        errors[event_kind] = abs(sampled * s_eff / true_value - 1.0) \
            if true_value else 0.0
    rows.append(("profileme", errors))
    return rows


def test_baseline_multiplexing(benchmark):
    rows = run_once(benchmark, _experiment)

    print("\n=== Section 2.2: event-estimation error on a phased "
          "program ===")
    print(format_table(
        ["method", "|err| dcache_miss", "|err| mispredict"],
        [[name,
          "%.2f" % errors[CounterEvent.DCACHE_MISS],
          "%.2f" % errors[CounterEvent.BRANCH_MISPREDICT]]
         for name, errors in rows]))

    by_name = dict(rows)
    profileme = by_name["profileme"]
    worst_mux = max(
        max(errors.values()) for name, errors in rows
        if name.startswith("multiplex"))
    best_profileme = max(profileme.values())
    # ProfileMe's worst event error beats the multiplexer's worst case
    # by a wide margin on phased behaviour.
    assert best_profileme < 0.35
    assert worst_mux > 2 * best_profileme
