"""Figure 2: where do performance-counter interrupts attribute events?

Reproduces the section 2.2 experiment: a loop with one (cache-hitting)
memory read followed by hundreds of nops, with a D-cache-reference event
counter.  The paper's result:

* in-order Alpha 21164 — almost all samples land on one instruction a
  fixed distance after the load (sharp peak, wrong place);
* out-of-order Pentium Pro — samples smear over ~25 instructions;
* ProfileMe — events are attributed *exactly* to the load.

Also reproduces the "blind spot" observation: interrupts deferred across
an uninterruptible range pile up on the first instruction after it.
"""

from collections import Counter

from benchmarks.conftest import run_once
from repro.analysis.reports import histogram_ascii
from repro.counters.counter import CounterConfig, CounterEvent
from repro.harness import run_profiled, run_with_counter
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import fig2_loop

ITERATIONS = 400
NOPS = 200


def _offsets(counter, load_pc):
    return Counter((s.delivered_pc - load_pc) // 4 for s in counter.samples)


def _experiment():
    program, load_pc = fig2_loop(iterations=ITERATIONS, nop_count=NOPS)
    results = {}

    _, counter = run_with_counter(
        program,
        CounterConfig(event=CounterEvent.DCACHE_REF, period=7,
                      skid_cycles=6),
        core_kind="inorder")
    results["inorder"] = _offsets(counter, load_pc)

    _, counter = run_with_counter(
        program,
        CounterConfig(event=CounterEvent.DCACHE_REF, period=7,
                      skid_cycles=6, skid_jitter_cycles=8),
        core_kind="ooo")
    results["ooo"] = _offsets(counter, load_pc)

    run = run_profiled(program,
                       profile=ProfileMeConfig(mean_interval=40, seed=7))
    profileme = Counter(
        (r.pc - load_pc) // 4 for r in run.records
        if r.op is not None and r.op.value == "ld")
    results["profileme"] = profileme

    # Blind spot: defer interrupts across the whole loop body.
    _, counter = run_with_counter(
        program,
        CounterConfig(event=CounterEvent.DCACHE_REF, period=7,
                      skid_cycles=6),
        uninterruptible=[(0, program.pc_limit - 8)])
    results["blind_spot"] = _offsets(counter, load_pc)
    return results


def test_fig2_attribution(benchmark):
    results = run_once(benchmark, _experiment)

    print("\n=== Figure 2: delivered-PC offset from the causing load "
          "(instructions) ===")
    for name in ("inorder", "ooo", "profileme", "blind_spot"):
        print("\n-- %s --" % name)
        print(histogram_ascii(results[name]))

    inorder, ooo, profileme = (results["inorder"], results["ooo"],
                               results["profileme"])
    # In-order: one sharp (mis-attributed) peak.
    assert len(inorder) == 1
    assert next(iter(inorder)) > 0
    # Out-of-order: smeared over many instructions, no dominant peak.
    assert len(ooo) >= 5
    assert max(ooo.values()) / sum(ooo.values()) < 0.5
    assert max(ooo) - min(ooo) >= 15
    # ProfileMe: every memory sample attributed exactly to the load.
    assert set(profileme) == {0}
    # Blind spot: every delivery lands at/after the uninterruptible range.
    assert all(offset >= NOPS for offset in results["blind_spot"])
