"""Figure 7: latency alone cannot identify bottlenecks.

Runs the three-loop program (serial multiply chain / independent ALU
chains / overlapping cache misses) with paired sampling and produces the
Figure 7 scatter: per-instruction total latency (x) vs. wasted issue
slots (y), one symbol per loop.  The paper's claims to match:

* the rankings diverge: the highest-latency instructions are not the
  biggest slot-wasters (weak global latency/waste correlation);
* within a loop (constant concurrency) latency and waste correlate well;
* the estimated waste tracks the simulator's exact waste.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.bottlenecks import instruction_metrics
from repro.analysis.groundtruth import GroundTruthCollector
from repro.analysis.reports import format_table
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.utils.statistics import pearson, spearman
from repro.workloads import fig7_three_loops


def _experiment():
    from repro.cpu.config import MachineConfig
    from repro.mem.cache import CacheConfig
    from repro.mem.hierarchy import HierarchyConfig

    scale = bench_scale()
    program, regions = fig7_three_loops(iterations=800 * scale,
                                        footprint_words=4096)
    # A 16 KiB L1D makes loop C's 32 KiB working set an L1-miss/L2-hit
    # stream after a short cold pass: long fill latencies with plenty of
    # room for the FP filler to overlap, the paper's loop-3 regime.
    memory = HierarchyConfig(l1d=CacheConfig(name="l1d",
                                             size_bytes=16 * 1024,
                                             line_bytes=64,
                                             associativity=2))
    config = MachineConfig.alpha21264_like(memory=memory)
    run = run_profiled(
        program, config=config,
        profile=ProfileMeConfig(mean_interval=80, paired=True,
                                pair_window=96, seed=31),
        collect_truth=True,
        truth_options={"collect_intervals": True,
                       "collect_issue_series": True})
    # Calibrate the estimators with the *measured* pair rate: selections
    # that land while a pair is in flight are dropped by the hardware, so
    # the effective inter-pair interval exceeds the configured one.  The
    # software reads total fetches from an aggregate counter, exactly as
    # for the Figure 3 estimates.
    analyzer = run.pair_analyzer
    pair_interval = run.truth.total_fetched / max(1, analyzer.pairs_usable)
    analyzer.mean_interval = pair_interval
    # Each usable pair contributes two records to the database, so one
    # record stands for pair_interval / 2 fetched instructions.
    metrics = instruction_metrics(run.database, pair_interval / 2.0,
                                  pair_analyzer=analyzer)
    return program, regions, run, metrics


def _region_of(regions, pc):
    for name, (start, end) in regions.items():
        if start <= pc < end:
            return name
    return None


def test_fig7_wasted_slots(benchmark):
    program, regions, run, metrics = run_once(benchmark, _experiment)

    points = []  # (region, pc, latency, waste)
    for metric in metrics:
        region = _region_of(regions, metric.pc)
        if region is None or metric.wasted_slots is None:
            continue
        if metric.samples < 8:
            continue
        points.append((region, metric.pc, metric.total_latency,
                       metric.wasted_slots))

    print("\n=== Figure 7: total latency vs wasted issue slots ===")
    rows = [[region, "%#x" % pc, "%.0f" % latency, "%.0f" % waste]
            for region, pc, latency, waste in sorted(points)]
    print(format_table(["loop", "pc", "total latency", "wasted slots"],
                       rows))

    by_region = {}
    for region, pc, latency, waste in points:
        by_region.setdefault(region, []).append((latency, waste))
    assert set(by_region) == {"serial", "parallel", "memory"}

    # Waste per latency cycle differs strongly across loops: the serial
    # loop wastes far more of the machine than the memory loop, whose
    # overlapping misses keep useful work flowing.
    slope = {}
    for region, pairs in by_region.items():
        total_latency = sum(p[0] for p in pairs)
        total_waste = sum(p[1] for p in pairs)  # unclamped: unbiased sum
        slope[region] = total_waste / total_latency
    print("waste per latency cycle: %s"
          % {k: "%.2f" % v for k, v in sorted(slope.items())})
    assert slope["serial"] > slope["memory"]
    assert slope["serial"] > slope["parallel"]

    # The paper's headline: the single highest-latency instruction need
    # not be the biggest slot-waster; rank correlations diverge when
    # computed across loops with different concurrency.
    latencies = [p[2] for p in points]
    wastes = [p[3] for p in points]
    global_rank = spearman(latencies, wastes)
    intra = []
    for region, pairs in by_region.items():
        if len(pairs) >= 3:
            intra.append(spearman([p[0] for p in pairs],
                                  [p[1] for p in pairs]))
    print("global spearman(latency, waste) = %.2f; intra-loop = %s"
          % (global_rank, ["%.2f" % r for r in intra]))
    assert max(intra) > global_rank + 0.1

    # The paper's headline observation, verbatim: "the instruction with
    # the highest latency (rightmost triangle) actually wastes fewer
    # issue slots than instructions with lower latencies".
    top_latency = max(points, key=lambda p: p[2])
    assert top_latency[0] == "memory"
    assert any(p[2] < top_latency[2] and p[3] > top_latency[3]
               for p in points if p[0] == "serial")

    # Estimator validity: sampled waste tracks the simulator's exact
    # waste for the hottest instruction of each loop.
    print("\nestimated vs exact wasted slots (hottest pc per loop):")
    for region, (start, end) in regions.items():
        hot = max((m for m in metrics
                   if start <= m.pc < end and m.wasted_slots is not None),
                  key=lambda m: m.samples)
        exact = run.truth.wasted_issue_slots(
            hot.pc, run.core.config.issue_width)
        print("  %-8s pc=%#x estimated=%.0f exact=%d"
              % (region, hot.pc, hot.wasted_slots, exact))
        if exact > 50_000:
            assert 0.3 < hot.wasted_slots / exact < 3.0
