"""Sweep-runner benchmark: result-cache hit rate vs wall-clock.

The sweep layer's whole economic argument (and the ROADMAP's
"sharding, batching, caching" north star) is that re-running a sweep
should cost only the specs whose results are missing.  This benchmark
runs one interval x seed grid three ways — cold (empty cache), warm
(fully cached), and half-warm (half the grid pre-seeded) — and reports
wall-clock, cache hits, and fresh-simulation throughput from the
runner's own `SweepMetrics`.
"""

import tempfile
import time

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.reports import format_table
from repro.engine.session import SessionSpec
from repro.engine.sweep import ResultStore, run_sweep, spec_key
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program

INTERVALS = (50, 100, 200, 400)
SEEDS = (1, 2)


def _specs(scale):
    program = suite_program("compress", scale=scale)
    return [
        SessionSpec(program=program,
                    profile=ProfileMeConfig(mean_interval=interval,
                                            seed=seed),
                    keep_records=False,
                    label="S=%d seed=%d" % (interval, seed))
        for interval in INTERVALS for seed in SEEDS
    ]


def _timed_sweep(specs, store):
    start = time.perf_counter()
    sweep = run_sweep(specs, workers=2, store=store)
    elapsed = time.perf_counter() - start
    metrics = sweep.metrics
    return {
        "wall_s": elapsed,
        "ok": metrics.ok,
        "cached": metrics.cached,
        "cycles_per_sec": metrics.cycles_per_second,
    }


def _experiment():
    scale = bench_scale()
    specs = _specs(scale)
    rows = {}

    store_dir = tempfile.mkdtemp(prefix="sweep-cache-bench-")
    rows["cold"] = _timed_sweep(specs, store_dir)
    rows["warm"] = _timed_sweep(specs, store_dir)

    half_dir = tempfile.mkdtemp(prefix="sweep-cache-bench-half-")
    half_store = ResultStore(half_dir)
    full_store = ResultStore(store_dir)
    for spec in specs[:len(specs) // 2]:
        key = spec_key(spec)
        half_store.store(key, full_store.load_payload(key))
    rows["half-warm"] = _timed_sweep(specs, half_dir)
    return rows


def test_sweep_cache_speedup(benchmark):
    rows = run_once(benchmark, _experiment)

    print("\n=== Sweep runner: result-cache hit rate vs wall-clock ===")
    print(format_table(
        ["cache state", "wall s", "simulated", "cached",
         "fresh cycles/s"],
        [[name, "%.3f" % r["wall_s"], r["ok"], r["cached"],
          "%.0f" % r["cycles_per_sec"]]
         for name, r in rows.items()]))

    total = len(INTERVALS) * len(SEEDS)
    assert rows["cold"]["ok"] == total and rows["cold"]["cached"] == 0
    assert rows["warm"]["cached"] == total and rows["warm"]["ok"] == 0
    assert rows["half-warm"]["cached"] == total // 2
    assert rows["half-warm"]["ok"] == total - total // 2
    # The cache must buy real wall-clock: a fully-warm sweep simulates
    # nothing and should be far faster than the cold run.
    assert rows["warm"]["wall_s"] < rows["cold"]["wall_s"]
