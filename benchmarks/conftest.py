"""Shared benchmark helpers.

Every benchmark runs its experiment exactly once inside pytest-benchmark
(``rounds=1``): the quantity of interest is the experiment's *output*
(the paper's rows/series, printed to stdout), with wall-time reported as
a side benefit.  ``REPRO_BENCH_SCALE`` scales trace lengths: 1 (default)
finishes the whole suite in a few minutes; larger values tighten the
statistics at proportional cost.
"""

import os

import pytest


def bench_scale():
    return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark; return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def scale():
    return bench_scale()
