"""Section 6: variability of windowed IPC across the suite.

The paper measures instructions retired per fixed 30-cycle window on
several SPEC95 benchmarks and reports:

* max/min windowed-IPC ratios between 3 and 30;
* retire-weighted standard deviation of windowed IPC between 20% and 42%
  of the mean, ~31% overall.

This variability is the reason latency alone cannot rank bottlenecks:
useful concurrency genuinely varies across a program's execution.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.concurrency import ipc_variability
from repro.analysis.reports import format_table
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program

BENCHMARKS = ("compress", "gcc", "li", "perl", "povray", "vortex")
WINDOW = 30  # cycles, as in the paper


def _experiment():
    scale = bench_scale()
    results = {}
    for name in BENCHMARKS:
        program = suite_program(name, scale=scale)
        run = run_profiled(
            program,
            profile=ProfileMeConfig(mean_interval=2000, seed=3),
            collect_truth=True,
            truth_options={"collect_retire_series": True})
        windows = run.truth.windowed_ipc(window_cycles=WINDOW)
        # Skip startup and drain partial windows.
        results[name] = ipc_variability(windows[1:-1])
    return results


def test_sec6_ipc_variability(benchmark):
    results = run_once(benchmark, _experiment)

    rows = []
    for name, stats in sorted(results.items()):
        rows.append([name, "%.2f" % stats["weighted_mean"],
                     "%.2f" % stats["max"], "%.2f" % stats["min"],
                     "%.1f" % stats["max_min_ratio"],
                     "%.0f%%" % (100 * stats["stddev_over_mean"])])
    print("\n=== Section 6: windowed (30-cycle) IPC variability ===")
    print(format_table(["benchmark", "mean IPC", "max", "min", "max/min",
                        "stddev/mean"], rows))

    ratios = [stats["max_min_ratio"] for stats in results.values()]
    rel_stddevs = [stats["stddev_over_mean"] for stats in results.values()]

    # Paper: ratios ranged 3..30 across benchmarks.
    assert min(ratios) >= 2.0
    assert max(ratios) >= 4.0
    # Paper: weighted stddev 20-42% of the mean per benchmark, ~31%
    # overall; require every benchmark to show substantial variability.
    assert all(0.10 <= value <= 0.90 for value in rel_stddevs)
    overall = sum(rel_stddevs) / len(rel_stddevs)
    print("overall stddev/mean: %.0f%% (paper: ~31%%)" % (100 * overall))
    assert 0.15 <= overall <= 0.70
