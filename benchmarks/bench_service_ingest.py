"""Service-ingestion benchmark: records/s vs producer count, loss under
overload.

The ROADMAP north star is a service "serving heavy traffic"; this
benchmark measures the two numbers that matter for the ingestion tier:

* **Throughput scaling** — sustained records/s folded server-side with
  1, 4, and 8 concurrent producers pushing over real sockets (the
  acceptance grid of the service issue).
* **Graceful overload** — with an artificially slowed folder
  (``fold_delay``) and a small queue, producers outrun the server; the
  run reports the loss rate and verifies every record is accounted for
  (folded + dropped == sent), mirroring the paper's sample-loss
  accounting (``dropped_busy``).
"""

import threading
import time

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.reports import format_table
from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode
from repro.profileme.registers import ProfileRecord
from repro.service.client import ProfileClient
from repro.service.server import ServerThread

BATCH_RECORDS = 64
PRODUCER_COUNTS = (1, 4, 8)


def _record(pc):
    return ProfileRecord(
        context=0, pc=pc, op=Opcode.ADD, addr=None,
        events=Event.RETIRED, abort_reason=AbortReason.NONE, history=0,
        fetch_to_map=2, map_to_data_ready=1, data_ready_to_issue=0,
        issue_to_retire_ready=1, retire_ready_to_retire=3,
        load_issue_to_completion=None, fetch_cycle=0, done_cycle=10)


def _producer(address, batches, batch):
    client = ProfileClient(address)
    for _ in range(batches):
        client.push(batch)
    client.drain()
    client.close()


def _run_grid(producers, batches_per_producer, fold_delay=0.0,
              queue_size=256):
    batch = [_record(0x10 + 4 * i) for i in range(BATCH_RECORDS)]
    with ServerThread(port=0, shards=4, queue_size=queue_size,
                      fold_delay=fold_delay) as server:
        threads = [threading.Thread(target=_producer,
                                    args=(server.address,
                                          batches_per_producer, batch))
                   for _ in range(producers)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        with ProfileClient(server.address) as client:
            stats = client.query("stats")["stats"]
    sent = producers * batches_per_producer * BATCH_RECORDS
    folded = stats["records"]
    dropped = stats["dropped_records"]
    assert folded + dropped == sent, "unaccounted records"
    return {
        "producers": producers,
        "sent": sent,
        "folded": folded,
        "dropped": dropped,
        "loss": dropped / sent if sent else 0.0,
        "wall_s": elapsed,
        "records_per_s": folded / elapsed if elapsed > 0 else 0.0,
    }


def _experiment():
    batches = 40 * bench_scale()
    throughput = [_run_grid(n, batches) for n in PRODUCER_COUNTS]
    overload = _run_grid(4, batches, fold_delay=0.005, queue_size=4)
    return throughput, overload


def test_bench_service_ingest(benchmark, capsys):
    throughput, overload = run_once(benchmark, _experiment)
    with capsys.disabled():
        print()
        print(format_table(
            ["producers", "records sent", "folded", "dropped",
             "records/s"],
            [[row["producers"], row["sent"], row["folded"], row["dropped"],
              "%.0f" % row["records_per_s"]] for row in throughput],
            title="Sustained ingest throughput (batch=%d records)"
            % BATCH_RECORDS))
        print()
        print(format_table(
            ["producers", "sent", "folded", "dropped", "loss rate",
             "records/s"],
            [[overload["producers"], overload["sent"], overload["folded"],
              overload["dropped"], "%.1f%%" % (100 * overload["loss"]),
              "%.0f" % overload["records_per_s"]]],
            title="Overload (fold_delay=5ms, queue=4): graceful, "
                  "accounted loss"))
    # The server must stay sound under all loads.
    for row in throughput:
        assert row["folded"] + row["dropped"] == row["sent"]
    assert overload["dropped"] > 0  # overload actually overloaded
    assert overload["folded"] > 0  # ...but the server kept serving
