"""Service-ingestion benchmark: wire v1 vs v2, workers, loss under
overload.

The ROADMAP north star is a service "serving heavy traffic"; this
benchmark measures the three numbers that matter for the ingestion tier:

* **Wire-format speedup** — sustained records/s folded server-side with
  producers pushing pre-encoded frames over real sockets, v1 JSON vs v2
  binary.  Frames are encoded once and replayed so producer-side CPU
  stays out of the measurement (on a small box the producers share the
  machine with the server); the measured path is frame reading, CRC
  verification, routing, worker IPC, and the signature-memoized fold.
* **Producer scaling** — the same grid at 1 and 4 concurrent producers.
* **Graceful overload** — with an artificially slowed folder
  (``fold_delay``) and a small queue, producers outrun the server; the
  run reports the loss rate and verifies every record is accounted for
  (folded + dropped == sent), mirroring the paper's sample-loss
  accounting (``dropped_busy``).
"""

import dataclasses
import socket
import threading
import time

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.reports import format_table
from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode
from repro.profileme.registers import ProfileRecord
from repro.service.client import ProfileClient
from repro.service.protocol import (PROTOCOL_V2, PROTOCOL_VERSION,
                                    encode_push_frames, hello_frame,
                                    recv_frame, send_frame, sync_frame)
from repro.service.server import ServerThread

BATCH_RECORDS = 256
PRODUCER_COUNTS = (1, 4)


def _record(pc):
    return ProfileRecord(
        context=0, pc=pc, op=Opcode.ADD, addr=None,
        events=Event.RETIRED, abort_reason=AbortReason.NONE, history=0,
        fetch_to_map=2, map_to_data_ready=1, data_ready_to_issue=0,
        issue_to_retire_ready=1, retire_ready_to_retire=3,
        load_issue_to_completion=None, fetch_cycle=0, done_cycle=10)


def _batch():
    # 16 static instructions sampled over and over: the repeated-
    # signature shape of real sample streams, which is what the fold's
    # signature memo is built for.
    return [_record(0x10 + 4 * (i % 16)) for i in range(BATCH_RECORDS)]


def _diverse_batch():
    # Every record carries a distinct latency value, so every record is
    # a fresh wire signature: the memo never repeats and each record
    # pays the full decode + columnar fold.  This is the fold-bound
    # worst case, bounding how much of the sustained rate the
    # signature memo is responsible for.
    return [dataclasses.replace(record, fetch_to_map=2 + i)
            for i, record in enumerate(_batch())]


def _producer_raw(host, port, version, frame, batches):
    """Replay one pre-encoded push frame *batches* times, then barrier."""
    sock = socket.create_connection((host, port), timeout=30.0)
    try:
        send_frame(sock, hello_frame(version=version))
        reply = recv_frame(sock)
        assert reply.get("kind") == "ok", reply
        for _ in range(batches):
            sock.sendall(frame)
        send_frame(sock, sync_frame())  # fold barrier
        recv_frame(sock)
    finally:
        sock.close()


def _run_grid(version, producers, batches_per_producer, fold_delay=0.0,
              queue_size=256, shards=2, batch=None):
    if batch is None:
        batch = _batch()
    (frame,) = encode_push_frames(batch, version=version)
    with ServerThread(port=0, shards=shards, queue_size=queue_size,
                      fold_delay=fold_delay) as server:
        host, port = server.server.host, server.server.port
        threads = [threading.Thread(target=_producer_raw,
                                    args=(host, port, version, frame,
                                          batches_per_producer))
                   for _ in range(producers)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        with ProfileClient(server.address, wire=version) as client:
            stats = client.query("stats")["stats"]
    sent = producers * batches_per_producer * BATCH_RECORDS
    folded = stats["records"]
    dropped = stats["dropped_records"]
    assert folded + dropped == sent, "unaccounted records"
    return {
        "wire": "v%d" % version,
        "producers": producers,
        "sent": sent,
        "folded": folded,
        "dropped": dropped,
        "loss": dropped / sent if sent else 0.0,
        "wall_s": elapsed,
        "records_per_s": folded / elapsed if elapsed > 0 else 0.0,
    }


def _experiment():
    batches = 40 * bench_scale()
    throughput = [
        _run_grid(version, producers, batches)
        for version in (PROTOCOL_VERSION, PROTOCOL_V2)
        for producers in PRODUCER_COUNTS
    ]
    overload = _run_grid(PROTOCOL_V2, 4, batches, fold_delay=0.005,
                         queue_size=4)
    fold_bound = _run_grid(PROTOCOL_V2, 1, batches,
                           batch=_diverse_batch())
    fold_bound["wire"] = "v2 (fold-bound)"
    return throughput, overload, fold_bound


def test_bench_service_ingest(benchmark, capsys):
    throughput, overload, fold_bound = run_once(benchmark, _experiment)
    best = {row["wire"]: max(r["records_per_s"]
                             for r in throughput if r["wire"] == row["wire"])
            for row in throughput}
    with capsys.disabled():
        print()
        print(format_table(
            ["wire", "producers", "records sent", "folded", "dropped",
             "records/s"],
            [[row["wire"], row["producers"], row["sent"], row["folded"],
              row["dropped"], "%.0f" % row["records_per_s"]]
             for row in throughput + [fold_bound]],
            title="Sustained ingest throughput (batch=%d records, "
                  "pre-encoded frames; the fold-bound row defeats the "
                  "signature memo)" % BATCH_RECORDS))
        print()
        print("v2 speedup over v1 (best of grid): %.1fx"
              % (best["v2"] / best["v1"] if best["v1"] else float("inf")))
        print()
        print(format_table(
            ["wire", "producers", "sent", "folded", "dropped", "loss rate",
             "records/s"],
            [[overload["wire"], overload["producers"], overload["sent"],
              overload["folded"], overload["dropped"],
              "%.1f%%" % (100 * overload["loss"]),
              "%.0f" % overload["records_per_s"]]],
            title="Overload (fold_delay=5ms, queue=4): graceful, "
                  "accounted loss"))
    # The server must stay sound under all loads.
    for row in throughput:
        assert row["folded"] + row["dropped"] == row["sent"]
        assert row["dropped"] == 0  # no overload in the throughput grid
    assert best["v2"] > best["v1"]  # the binary path must actually win
    assert overload["dropped"] > 0  # overload actually overloaded
    assert overload["folded"] > 0  # ...but the server kept serving
    # The fold-bound worst case loses no records either; it is slower
    # than the memoized shape, which is the memo earning its keep.
    assert fold_bound["folded"] == fold_bound["sent"]
