"""Ablation (section 5.2.1): sizing the paired-sampling window W.

"The window size is conservatively chosen to include any pair of
instructions that may be simultaneously in flight."

Sweeping W on the Figure 7 workload shows why: with W far below the
machine's in-flight capacity, pairs that would have exhibited useful
overlap are never sampled beyond W, and the wasted-slot estimator loses
accuracy vs the simulator's exact count; once W covers the in-flight
window, growing it further mostly just dilutes the pair budget.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.bottlenecks import instruction_metrics
from repro.analysis.reports import format_table
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import fig7_three_loops

WINDOWS = (8, 32, 96, 192)


def _experiment():
    scale = bench_scale()
    program, regions = fig7_three_loops(iterations=500 * scale)
    rows = []
    for window in WINDOWS:
        run = run_profiled(
            program,
            profile=ProfileMeConfig(mean_interval=60, paired=True,
                                    pair_window=window, seed=37),
            collect_truth=True,
            truth_options={"collect_intervals": True,
                           "collect_issue_series": True})
        analyzer = run.pair_analyzer
        pair_interval = (run.truth.total_fetched
                         / max(1, analyzer.pairs_usable))
        analyzer.mean_interval = pair_interval
        metrics = instruction_metrics(run.database, pair_interval / 2.0,
                                      pair_analyzer=analyzer)

        # Accuracy of the waste estimate on the serial loop (where waste
        # is large and the exact value is stable).
        start, end = regions["serial"]
        estimated = sum(m.wasted_slots for m in metrics
                        if start <= m.pc < end
                        and m.wasted_slots is not None)
        exact = sum(run.truth.wasted_issue_slots(
            pc, run.core.config.issue_width)
            for pc in run.truth.per_pc if start <= pc < end)
        overlaps = sum(s.useful_overlaps
                       for s in analyzer.per_pc.values())
        rows.append({
            "window": window,
            "pairs": analyzer.pairs_usable,
            "useful_overlaps": overlaps,
            "estimated_waste": estimated,
            "exact_waste": exact,
            "ratio": estimated / exact if exact else float("nan"),
        })
    return rows


def test_ablation_pair_window(benchmark):
    rows = run_once(benchmark, _experiment)

    print("\n=== Ablation: wasted-slot estimate vs pair window W "
          "(serial loop) ===")
    print(format_table(
        ["W", "usable pairs", "useful overlaps", "estimated waste",
         "exact waste", "est/exact"],
        [[r["window"], r["pairs"], r["useful_overlaps"],
          "%.0f" % r["estimated_waste"], r["exact_waste"],
          "%.2f" % r["ratio"]] for r in rows]))

    by_window = {r["window"]: r for r in rows}
    # Every configuration produces usable pairs.
    assert all(r["pairs"] > 50 for r in rows)
    # The conservative window (>= max in-flight, here 96) estimates the
    # serial loop's waste within a factor of two.
    assert 0.5 < by_window[96]["ratio"] < 2.0
    # Tiny windows see overlap only among immediately-adjacent
    # instructions; per-overlap weight W*S shrinks accordingly, and the
    # estimate stays in the same ballpark only because the serial loop
    # has so little useful overlap to miss.  The estimator must not
    # collapse entirely anywhere:
    assert all(r["ratio"] > 0.2 for r in rows)
