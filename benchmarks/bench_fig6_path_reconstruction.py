"""Figure 6: effectiveness of path reconstruction strategies.

Reproduces both panels: success rate (exactly one reconstructed path and
it matches the true execution path) vs. branch-history length, for three
schemes — execution counts, history bits, history bits + paired sampling
(intra-pair distance uniform in [1, 50] as in the paper) — over the
synthetic SPECint95-like suite, intraprocedurally and interprocedurally.

The paper's qualitative results to match:

* accuracy decreases with history length for every scheme;
* history bits beat execution counts, paired sampling helps further;
* interprocedural reconstruction is harder than intraprocedural.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.pathprof import (PathReconstructor,
                                     run_reconstruction_experiment)
from repro.analysis.reports import format_table
from repro.isa.interpreter import functional_trace
from repro.utils.rng import SamplingRng
from repro.workloads import suite_program

BENCHMARKS = ("compress", "go", "li", "perl")
HISTORY_LENGTHS = (1, 2, 4, 6, 8, 10, 12)
SAMPLES_PER_BENCHMARK = 120


def _experiment():
    scale = bench_scale()
    panels = {False: {}, True: {}}
    for name in BENCHMARKS:
        program = suite_program(name, scale=scale)
        trace = functional_trace(program)
        recon = PathReconstructor(program, trace)
        step = max(1, (len(trace) - 400) // SAMPLES_PER_BENCHMARK)
        indices = list(range(300, len(trace) - 1, step))
        for interprocedural in (False, True):
            results = run_reconstruction_experiment(
                program, trace, HISTORY_LENGTHS, indices,
                pair_rng=SamplingRng(29), pair_window=50,
                interprocedural=interprocedural, reconstructor=recon)
            panels[interprocedural][name] = results
    return panels


def _averaged(panel):
    """Mean success rate over benchmarks: H -> scheme -> rate."""
    out = {}
    for bits in HISTORY_LENGTHS:
        schemes = {}
        for scheme in ("execution_counts", "history_bits",
                       "history_plus_pair"):
            rates = [panel[name][bits][scheme] for name in panel]
            schemes[scheme] = sum(rates) / len(rates)
        out[bits] = schemes
    return out


def test_fig6_path_reconstruction(benchmark):
    panels = run_once(benchmark, _experiment)

    for interprocedural, title in ((False, "intraprocedural"),
                                   (True, "interprocedural")):
        averaged = _averaged(panels[interprocedural])
        rows = [[bits,
                 "%.2f" % averaged[bits]["execution_counts"],
                 "%.2f" % averaged[bits]["history_bits"],
                 "%.2f" % averaged[bits]["history_plus_pair"]]
                for bits in HISTORY_LENGTHS]
        print("\n=== Figure 6 (%s): reconstruction success rate ===" % title)
        print(format_table(["history bits", "exec counts", "history",
                            "history+pair"], rows))

    intra = _averaged(panels[False])
    inter = _averaged(panels[True])

    for averaged in (intra, inter):
        # Accuracy decreases as longer paths are attempted.
        assert averaged[HISTORY_LENGTHS[-1]]["history_bits"] < \
            averaged[HISTORY_LENGTHS[0]]["history_bits"]
        for bits in HISTORY_LENGTHS:
            rates = averaged[bits]
            # History bits beat raw execution counts (allow sampling
            # noise at the shortest lengths where both are high).
            if bits >= 4:
                assert rates["history_bits"] > rates["execution_counts"]
            # Paired sampling never hurts and eventually helps.
            assert (rates["history_plus_pair"]
                    >= rates["history_bits"] - 1e-9)
    # The pair filter must show a strict improvement somewhere.
    assert any(intra[b]["history_plus_pair"] > intra[b]["history_bits"]
               for b in HISTORY_LENGTHS)
    # Interprocedural reconstruction is harder at long histories.
    assert (inter[HISTORY_LENGTHS[-1]]["history_bits"]
            <= intra[HISTORY_LENGTHS[-1]]["history_bits"] + 0.02)
