"""Ablation (sections 4.1.2 / 4.3): N-way sampling and register sets.

Two extensions the paper sketches but does not evaluate:

* **Replicated register sets** — with one register set, selections that
  land while a sample is in flight are dropped, thinning aggressive
  sampling rates and biasing them toward fast-flight code regions.
  Replication lets groups overlap; the benchmark measures drop rate and
  estimation bias vs the number of sets at an aggressive interval.
* **N-way sampling** — an N-member group yields N(N-1)/2 concurrent
  pairs per interrupt; the benchmark measures pairs obtained per
  interrupt (the §4.3 cost that matters) at equal sampling rates.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.convergence import (convergence_points,
                                        effective_interval,
                                        retired_property)
from repro.analysis.reports import format_table
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program


def _register_set_sweep(scale):
    program = suite_program("compress", scale=2 * scale)
    rows = []
    for sets in (1, 2, 4, 8):
        run = run_profiled(
            program,
            profile=ProfileMeConfig(mean_interval=25, register_sets=sets,
                                    seed=43),
            collect_truth=True, keep_records=False)
        stats = run.unit.stats
        s_eff = effective_interval(run.truth.total_fetched,
                                   run.database.total_samples)
        points = convergence_points(run.database, run.truth, s_eff,
                                    retired_property, min_actual=100)
        errors = [abs(p.ratio - 1.0) for p in points]
        rows.append({
            "sets": sets,
            "drop_rate": stats.dropped_busy / max(1, stats.selections),
            "samples": stats.records_delivered,
            "concurrent": stats.max_concurrent_groups,
            "mean_error": sum(errors) / len(errors) if errors else 0.0,
        })
    return rows


def _nway_sweep(scale):
    program = suite_program("go", scale=scale)
    rows = []
    for size in (2, 3, 4):
        run = run_profiled(
            program,
            profile=ProfileMeConfig(mean_interval=60, group_size=size,
                                    pair_window=32, seed=47),
            keep_records=False)
        analyzer = run.pair_analyzer
        interrupts = run.unit.stats.interrupts
        rows.append({
            "group_size": size,
            "interrupts": interrupts,
            "usable_pairs": analyzer.pairs_usable,
            "pairs_per_interrupt": analyzer.pairs_usable / max(1, interrupts),
        })
    return rows


def test_ablation_register_sets_and_nway(benchmark):
    scale = bench_scale()
    sets_rows, nway_rows = run_once(
        benchmark, lambda: (_register_set_sweep(scale), _nway_sweep(scale)))

    print("\n=== Ablation: replicated register sets at S=25 ===")
    print(format_table(
        ["register sets", "drop rate", "samples", "max concurrent",
         "mean |ratio-1| (hot)"],
        [[r["sets"], "%.2f" % r["drop_rate"], r["samples"], r["concurrent"],
          "%.3f" % r["mean_error"]] for r in sets_rows]))

    print("\n=== Ablation: N-way sampling pair yield ===")
    print(format_table(
        ["group size", "interrupts", "usable pairs", "pairs/interrupt"],
        [[r["group_size"], r["interrupts"], r["usable_pairs"],
          "%.2f" % r["pairs_per_interrupt"]] for r in nway_rows]))

    by_sets = {r["sets"]: r for r in sets_rows}
    assert by_sets[1]["drop_rate"] > 0.2
    assert by_sets[8]["drop_rate"] < 0.3 * by_sets[1]["drop_rate"]
    assert by_sets[8]["samples"] > 1.3 * by_sets[1]["samples"]

    by_size = {r["group_size"]: r for r in nway_rows}
    # Pair yield per interrupt grows superlinearly with N (C(N,2)).
    assert (by_size[4]["pairs_per_interrupt"]
            > 2.0 * by_size[2]["pairs_per_interrupt"])
