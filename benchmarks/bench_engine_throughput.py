"""Engine-speed benchmark: simulated cycles/sec vs. attached probes.

Measures the probe-dispatch overhead of the simulation engine on both
cores, with 0, 1, and 3 probes attached, and emits JSON so future PRs
can track engine-speed regressions::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        --out engine_throughput.json

Probe mix (chosen to exercise the dispatch fast path):

* ``0 probes`` — the fast path: no observer should cost nothing.
* ``1 probe``  — a *selective* probe overriding only ``on_retire``
  (the shape of a typical event counter).
* ``3 probes`` — selective + a no-override null probe + a probe
  overriding every callback (the shape of ProfileMe + ground truth).

For each configuration the report includes the number of probe-callback
invocations the engine actually performs and the number the legacy
dispatch design (call every probe for every event) would have performed;
the delta is the ProbeBus win.  Event totals are measured once per core
by a calibration probe, so both figures are exact, not sampled.
"""

import argparse
import json
import sys
import time

from repro.cpu.probes import Probe
from repro.harness import make_core
from repro.workloads import suite_program

CALLBACKS = ("on_fetch_slots", "on_issue", "on_retire", "on_abort",
             "on_cycle_end")


class NullProbe(Probe):
    """Overrides nothing: under ProbeBus dispatch it is never called."""


class SelectiveProbe(Probe):
    """Overrides only on_retire — the event-counter shape."""

    def __init__(self):
        self.retired = 0

    def on_retire(self, dyninst, cycle):
        self.retired += 1


class FullProbe(Probe):
    """Overrides every callback; also serves as the event calibrator."""

    def __init__(self):
        self.counts = dict.fromkeys(CALLBACKS, 0)

    def on_fetch_slots(self, cycle, slots):
        self.counts["on_fetch_slots"] += 1

    def on_issue(self, dyninst, cycle):
        self.counts["on_issue"] += 1

    def on_retire(self, dyninst, cycle):
        self.counts["on_retire"] += 1

    def on_abort(self, dyninst, cycle):
        self.counts["on_abort"] += 1

    def on_cycle_end(self, cycle):
        self.counts["on_cycle_end"] += 1


def _overridden(probe):
    """Callback names *probe* actually implements (ProbeBus's criterion)."""
    names = []
    for name in CALLBACKS:
        impl = getattr(type(probe), name, None)
        if impl is not None and impl is not getattr(Probe, name):
            names.append(name)
    return names


PROBE_SETS = {
    "0_probes": lambda: [],
    "1_probe": lambda: [SelectiveProbe()],
    "3_probes": lambda: [SelectiveProbe(), NullProbe(), FullProbe()],
}


def _calibrate(program, core_kind):
    """Exact per-callback event counts for one run of *program*."""
    core = make_core(program, core_kind=core_kind)
    calibrator = FullProbe()
    core.add_probe(calibrator)
    core.run()
    return calibrator.counts


def _timed_run(program, core_kind, probes, repeats):
    best = None
    cycles = 0
    for _ in range(repeats):
        core = make_core(program, core_kind=core_kind)
        for probe in probes:
            core.add_probe(probe)
        start = time.perf_counter()
        cycles = core.run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return cycles, best


def _functional_rates(program, repeats):
    """Functional-path throughput: the ceiling on two-speed fast-forward.

    ``interpreter`` is the bare dispatch-table step loop; ``fast_forward``
    adds the shared warm-state models (caches, TLBs, predictor) the
    two-speed engine keeps hot between detailed windows.
    """
    from repro.cpu.warm import WarmState, fast_forward
    from repro.isa.interpreter import Interpreter

    rates = {}
    for label in ("interpreter", "fast_forward"):
        best = None
        retired = 0
        for _ in range(repeats):
            interp = Interpreter(program)
            start = time.perf_counter()
            if label == "interpreter":
                interp.run_to_halt()
            else:
                fast_forward(interp, WarmState(), 10**12)
            elapsed = time.perf_counter() - start
            retired = interp.retired
            best = elapsed if best is None else min(best, elapsed)
        rates[label] = {
            "retired": retired,
            "wall_s": round(best, 6),
            "retired_per_sec": round(retired / best) if best else 0,
        }
    return rates


def run_benchmark(scale=2, repeats=3):
    results = {"workload": "compress", "scale": scale, "cores": {}}
    program = suite_program("compress", scale=scale)
    results["functional"] = _functional_rates(program, repeats)
    for core_kind in ("ooo", "inorder"):
        events = _calibrate(program, core_kind)
        events_total = sum(events.values())
        core_results = {"events": events}
        for label, factory in PROBE_SETS.items():
            probes = factory()
            cycles, elapsed = _timed_run(program, core_kind, probes,
                                         repeats)
            # Legacy dispatch touched every probe for every event; with
            # no probes it still swept every dispatch site once per
            # event.  ProbeBus only calls overridden callbacks and skips
            # empty subscriber lists outright.
            legacy = events_total * max(1, len(probes))
            engine = sum(events[name]
                         for probe in probes
                         for name in _overridden(probe))
            core_results[label] = {
                "probes": len(probes),
                "cycles": cycles,
                "wall_s": round(elapsed, 6),
                "cycles_per_sec": round(cycles / elapsed) if elapsed else 0,
                "callback_invocations": engine,
                "legacy_equivalent_invocations": legacy,
            }
        results["cores"][core_kind] = core_results
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=2,
                        help="workload scale factor")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best is reported)")
    parser.add_argument("--out", help="write the JSON report here")
    args = parser.parse_args(argv)

    results = run_benchmark(scale=args.scale, repeats=args.repeats)
    text = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as stream:
            stream.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
