"""Continuous-ingest soak: bounded memory under aggressive retention.

Drives a real ``repro serve`` process (inline fold, so the databases
live in the measured process) with a nonstop sample stream whose ticks
advance forever, under an aggressive ``--rollup-interval`` /
``--retain-buckets`` configuration.  Asserts the two properties that
make unbounded-duration profiling safe:

* **RSS plateaus.**  Retention keeps the working set bounded: the
  server's resident set in the final quarter of the soak must not keep
  growing over the second quarter (within a noise allowance).
* **Nothing is lost silently.**  Every folded record is either retained
  or counted evicted (``folded == retained + evicted``, per the
  ``epochs`` accounting), and ``repro query stats`` reports the
  eviction counter.

Run directly (CI's soak-smoke job, non-gating)::

    PYTHONPATH=src python benchmarks/soak_ingest.py --seconds 60

Exit status 0 when every property holds, 1 otherwise.
"""

import argparse
import os
import subprocess
import sys
import tempfile
import time

from repro.profileme.registers import ProfileRecord
from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode
from repro.service.client import ProfileClient

BATCH = 512
NUM_PCS = 256


def _rss_kb(pid):
    with open("/proc/%d/status" % pid) as stream:
        for line in stream:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0


def _batch(tick, step):
    records = []
    for i in range(BATCH):
        records.append(ProfileRecord(
            context=0, pc=0x1000 + 4 * (i % NUM_PCS), op=Opcode.ADD,
            addr=None,
            events=Event.RETIRED | (Event.DCACHE_MISS if i % 5 == 0
                                    else Event.RETIRED),
            abort_reason=AbortReason.NONE, history=0,
            fetch_to_map=2 + (i % 3), map_to_data_ready=1,
            data_ready_to_issue=0, issue_to_retire_ready=1,
            retire_ready_to_retire=3, load_issue_to_completion=None,
            fetch_cycle=tick + i * step, done_cycle=tick + i * step + 10))
    return records, tick + BATCH * step


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=60.0)
    parser.add_argument("--rollup-interval", type=int, default=10_000)
    parser.add_argument("--retain-buckets", type=int, default=6)
    parser.add_argument("--tick-step", type=int, default=40,
                        help="cycles between consecutive samples")
    args = parser.parse_args(argv)

    port_file = os.path.join(tempfile.mkdtemp(prefix="soak."), "port")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.tools.cli", "serve",
         "--port", "0", "--port-file", port_file, "--inline-fold",
         "--shards", "2",
         "--rollup-interval", str(args.rollup_interval),
         "--retain-buckets", str(args.retain_buckets)],
        stdout=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 20.0
        while not os.path.exists(port_file):
            if time.monotonic() > deadline:
                raise RuntimeError("server never wrote its port file")
            time.sleep(0.1)
        with open(port_file) as stream:
            address = "127.0.0.1:%s" % stream.read().strip()
        print("soaking %s for %.0fs (interval=%d, retain=%d)"
              % (address, args.seconds, args.rollup_interval,
                 args.retain_buckets), flush=True)

        rss_samples = []
        pushed = 0
        tick = 0
        stop = time.monotonic() + args.seconds
        next_rss = 0.0
        with ProfileClient(address) as client:
            while time.monotonic() < stop:
                records, tick = _batch(tick, args.tick_step)
                client.push(records)
                pushed += len(records)
                now = time.monotonic()
                if now >= next_rss:
                    rss_samples.append(_rss_kb(server.pid))
                    next_rss = now + 1.0
            client.drain()
            epochs = client.epochs()
        rss_samples.append(_rss_kb(server.pid))

        stats_out = subprocess.check_output(
            [sys.executable, "-m", "repro.tools.cli", "query", address,
             "stats"], text=True)
        print(stats_out)
    finally:
        server.terminate()
        server.wait(timeout=20)

    retained = epochs["total_samples"]
    evicted = epochs["evicted_samples"]
    print("pushed=%d retained=%d evicted=%d buckets=%d"
          % (pushed, retained, evicted, len(epochs["epochs"])))
    quarter = max(1, len(rss_samples) // 4)
    early = sorted(rss_samples[quarter:2 * quarter])
    late = sorted(rss_samples[-quarter:])
    early_med = early[len(early) // 2]
    late_med = late[len(late) // 2]
    print("rss: first=%dkB early-median=%dkB late-median=%dkB last=%dkB"
          % (rss_samples[0], early_med, late_med, rss_samples[-1]))

    failures = []
    if retained + evicted != pushed:
        failures.append("accounting: %d retained + %d evicted != %d pushed"
                        % (retained, evicted, pushed))
    if evicted <= 0:
        failures.append("retention never evicted anything "
                        "(soak too short or retention too loose)")
    if "evicted_samples" not in stats_out:
        failures.append("`repro query stats` does not report "
                        "evicted_samples")
    # The plateau check: allow 30% drift for allocator noise, but the
    # resident set must not keep climbing with ingest volume.
    if late_med > 1.30 * early_med:
        failures.append("rss still growing: %dkB -> %dkB"
                        % (early_med, late_med))
    for failure in failures:
        print("SOAK FAILURE:", failure)
    if not failures:
        print("soak passed: memory bounded, eviction accounted")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
