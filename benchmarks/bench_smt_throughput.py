"""Extension bench: SMT throughput and single-sampler attribution.

The Profiled Context Register exists so one sampling infrastructure can
attribute samples on a multithreaded machine.  This bench exercises the
SMT substrate end to end:

* throughput of three pairings — memory+compute (complementary),
  compute+compute (contending), memory+memory — vs running the same
  programs back to back;
* one ProfileMe unit on the SMT machine: per-thread sample shares must
  track per-thread fetch shares.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.database import ProfileDatabase
from repro.analysis.reports import format_table
from repro.cpu.smt import SmtCore, smt_speedup
from repro.profileme import ProfileMeConfig, ProfileMeDriver, ProfileMeUnit
from repro.workloads import classic_kernel


def _alu_saturating(iterations):
    """Eight independent single-cycle chains: IPC ~3.6 solo, so two
    copies genuinely fight over the four shared issue slots."""
    from repro.isa.builder import ProgramBuilder

    b = ProgramBuilder(name="alu-saturating")
    b.begin_function("main")
    b.ldi(1, iterations)
    for reg in range(4, 12):
        b.ldi(reg, reg)
    b.label("loop")
    for reg in range(4, 12):
        b.lda(reg, reg, 1)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main")


def _pairings(scale):
    mem = lambda seed: classic_kernel("pointer_chase", nodes=8192,
                                      hops=3000 * scale, seed=seed)[0]
    # Durations matched to the chase's solo run time so the pairing
    # speedup measures overlap, not merely the shorter thread hiding
    # inside the longer one's runtime.
    alu_long = lambda: _alu_saturating(26000 * scale)
    alu_short = lambda: _alu_saturating(1500 * scale)
    return {
        "memory+compute": [mem(1), alu_long()],
        "compute+compute": [alu_short(), alu_short()],
        "memory+memory": [mem(1), mem(2)],
    }


def _experiment():
    scale = bench_scale()
    rows = {}
    for name, programs in _pairings(scale).items():
        smt_cycles, serial_cycles, speedup = smt_speedup(
            programs, max_cycles=2_000_000)
        rows[name] = {"smt": smt_cycles, "serial": serial_cycles,
                      "speedup": speedup}

    # Attribution on the complementary pairing.
    programs = _pairings(scale)["memory+compute"]
    smt = SmtCore(programs)
    driver = ProfileMeDriver()
    driver.add_sink(ProfileDatabase())
    smt.add_probe(ProfileMeUnit(ProfileMeConfig(mean_interval=40, seed=3),
                                handler=driver.handle_interrupt))
    smt.run(max_cycles=2_000_000)
    shares = {0: 0, 1: 0}
    for record in driver.all_single_records():
        shares[record.context] += 1
    fetched = {i: smt.threads[i].fetched for i in (0, 1)}
    return rows, shares, fetched


def test_smt_throughput(benchmark):
    rows, shares, fetched = run_once(benchmark, _experiment)

    print("\n=== SMT throughput vs back-to-back execution ===")
    print(format_table(
        ["pairing", "serial cycles", "SMT cycles", "speedup"],
        [[name, row["serial"], row["smt"], "%.2fx" % row["speedup"]]
         for name, row in sorted(rows.items())]))
    total = sum(shares.values())
    print("\nsingle-sampler attribution: context sample shares %s, "
          "fetch shares %s"
          % ({k: "%.2f" % (v / total) for k, v in shares.items()},
             {k: "%.2f" % (v / sum(fetched.values()))
              for k, v in fetched.items()}))

    # Complementary threads overlap strongly; identical issue-saturating
    # threads gain nothing; two pointer chases overlap their misses.
    assert rows["memory+compute"]["speedup"] > 1.5
    assert rows["compute+compute"]["speedup"] < 1.25
    assert rows["memory+memory"]["speedup"] > 1.2

    sample_share = shares[0] / max(1, sum(shares.values()))
    fetch_share = fetched[0] / sum(fetched.values())
    assert abs(sample_share - fetch_share) < 0.08
