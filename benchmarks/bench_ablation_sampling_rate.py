"""Ablation (sections 4, 5.1): sampling rate vs overhead and accuracy.

"The run-time profiling overhead may be decreased arbitrarily by reducing
the sampling rate" — at the cost of slower convergence (error grows like
sqrt(1/E[k])).  The benchmark sweeps the mean sampling interval S and
reports, for a fixed workload: profiling overhead (run-time dilation with
a fixed interrupt cost) and estimation error of per-PC retire counts.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.convergence import (convergence_points,
                                        effective_interval,
                                        retired_property)
from repro.analysis.reports import format_table
from repro.harness import make_core, run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program

INTERVALS = (100, 300, 1000, 3000)
INTERRUPT_COST = 60


def _experiment():
    scale = bench_scale()
    program = suite_program("compress", scale=4 * scale)

    baseline = make_core(program)
    baseline_cycles = baseline.run()

    rows = []
    for interval in INTERVALS:
        run = run_profiled(
            program,
            profile=ProfileMeConfig(mean_interval=interval,
                                    interrupt_cost_cycles=INTERRUPT_COST,
                                    seed=41),
            collect_truth=True, keep_records=False)
        s_eff = effective_interval(run.truth.total_fetched,
                                   run.database.total_samples)
        points = convergence_points(run.database, run.truth, s_eff,
                                    retired_property, min_actual=50)
        errors = [abs(p.ratio - 1.0) for p in points if p.ratio is not None]
        mean_error = sum(errors) / len(errors) if errors else float("nan")
        rows.append({
            "interval": interval,
            "samples": run.database.total_samples,
            "dilation": run.cycles / baseline_cycles,
            "mean_abs_error": mean_error,
        })
    return rows


def test_ablation_sampling_rate(benchmark):
    rows = run_once(benchmark, _experiment)

    print("\n=== Ablation: sampling interval vs overhead and accuracy ===")
    print(format_table(
        ["mean interval S", "samples", "run-time dilation",
         "mean |ratio-1| (hot pcs)"],
        [[r["interval"], r["samples"], "%.3f" % r["dilation"],
          "%.3f" % r["mean_abs_error"]] for r in rows]))

    by_interval = {r["interval"]: r for r in rows}
    # Overhead falls monotonically as sampling slows.
    dilations = [r["dilation"] for r in rows]
    assert all(a >= b - 0.005 for a, b in zip(dilations, dilations[1:]))
    assert by_interval[100]["dilation"] > by_interval[3000]["dilation"]
    # Accuracy degrades as sampling slows.
    assert (by_interval[3000]["mean_abs_error"]
            > by_interval[100]["mean_abs_error"])
    # Dense sampling estimates hot counts tightly.
    assert by_interval[100]["mean_abs_error"] < 0.3
