"""End-to-end PGO loop wall time and measured speedups.

Runs the full :func:`repro.pgo.run_pgo` pipeline — profile, plan, apply,
measure, plus the ground-truth envelope comparison — on two workloads
and reports what each pass bought, alongside the pipeline's own cost.
The wall time recorded by pytest-benchmark is the quantity to watch:
the loop re-simulates the workload once per (unit, replicate), so a
regression here usually means the measurement layer stopped deduplicating
identical specs.
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.reports import format_table
from repro.pgo import PgoOptions, run_pgo
from repro.workloads import stall_kernel, suite_program


def _rows_for(report):
    rows = []
    for m in report.measurements:
        rows.append([report.workload, m.name, m.protocol,
                     m.baseline_cycles, "%.1f" % m.mean_reduction,
                     "%.2f%%" % (100 * m.relative_reduction),
                     "yes" if m.significant else "no"])
    return rows


def _pgo_experiment(scale):
    results = []

    kernel = stall_kernel("dcache_miss", iterations=400 * scale)
    results.append(run_pgo(
        kernel,
        PgoOptions(passes=("prefetch",), interval=20, replicates=3,
                   seed=3, compare_truth=True),
        workload="kernel:dcache_miss"))

    compress = suite_program("compress", scale=scale)
    results.append(run_pgo(
        compress,
        PgoOptions(interval=40, replicates=2, seed=3,
                   max_retired=200_000 * scale),
        workload="compress"))
    return results


def test_pgo_loop_end_to_end(benchmark):
    scale = bench_scale()
    reports = run_once(benchmark, lambda: _pgo_experiment(scale))

    rows = []
    for report in reports:
        rows.extend(_rows_for(report))
    print()
    print(format_table(
        ["workload", "unit", "protocol", "baseline", "reduction",
         "relative", "significant"], rows))

    kernel_report, compress_report = reports
    assert kernel_report.measurement_for("prefetch").significant
    assert compress_report.measurement_for("combined").significant
    comparison = kernel_report.comparison
    print("sampled vs truth: ratio %s within 1 +- %.3f -> %s"
          % ("n/a" if comparison.speedup_ratio is None
             else "%.3f" % comparison.speedup_ratio,
             comparison.envelope_half,
             "WITHIN" if comparison.speedup_within_envelope else "OUTSIDE"))
    assert comparison.decisions_agree
    assert comparison.speedup_within_envelope
