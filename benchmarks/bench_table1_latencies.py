"""Table 1: the latency registers and the stalls they diagnose.

For each Table 1 row, a kernel engineered to provoke that stall is run
with ProfileMe; the benchmark prints the mean of every latency register
and asserts that the *targeted* register is the one that stands out
relative to a quiet baseline kernel.  This validates both the latency
register semantics and Table 1's diagnostic mapping.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.reports import format_table
from repro.harness import run_profiled
from repro.profileme.registers import LATENCY_FIELDS
from repro.profileme.unit import ProfileMeConfig
from repro.workloads.microbench import kernel_names, stall_kernel

# Table 1 mapping: kernel -> the latency register it must inflate.
TARGETS = {
    "map_stall": "fetch_to_map",
    "dep_chain": "map_to_data_ready",
    "fu_contention": "data_ready_to_issue",
    "dcache_miss": "load_issue_to_completion",
    "retire_block": "retire_ready_to_retire",
}


def _mean_latencies(database):
    """Sample-weighted mean of each latency register over all PCs."""
    sums = {name: 0 for name in LATENCY_FIELDS}
    counts = {name: 0 for name in LATENCY_FIELDS}
    for profile in database.per_pc.values():
        for name in LATENCY_FIELDS:
            aggregate = profile.latency(name)
            sums[name] += aggregate.total
            counts[name] += aggregate.count
    return {name: (sums[name] / counts[name] if counts[name] else 0.0)
            for name in LATENCY_FIELDS}


def _baseline_program():
    """A quiet loop: independent single-cycle ops, no memory traffic."""
    from repro.isa.builder import ProgramBuilder

    b = ProgramBuilder(name="baseline")
    b.begin_function("main")
    b.ldi(1, 150)
    b.label("loop")
    for reg in range(4, 10):
        b.lda(reg, reg, 1)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main")


def _experiment():
    from repro.cpu.config import MachineConfig

    results = {}
    for name in list(kernel_names()) + ["baseline"]:
        config = None
        if name == "baseline":
            program = _baseline_program()
        else:
            program = stall_kernel(name, iterations=150)
        if name == "map_stall":
            # A wide window with few rename registers isolates the
            # "lack of physical registers" stall Table 1 describes.
            config = MachineConfig.alpha21264_like(rob_entries=128,
                                                   phys_regs=56)
        run = run_profiled(program, config=config,
                           profile=ProfileMeConfig(mean_interval=15, seed=4))
        results[name] = _mean_latencies(run.database)
    return results


def test_table1_latency_registers(benchmark):
    results = run_once(benchmark, _experiment)

    rows = []
    for kernel, means in sorted(results.items()):
        rows.append([kernel] + ["%.1f" % means[name]
                                for name in LATENCY_FIELDS])
    print("\n=== Table 1: mean latency registers per stall kernel "
          "(cycles) ===")
    print(format_table(["kernel"] + list(LATENCY_FIELDS), rows))

    baseline = results["baseline"]
    for kernel, target in TARGETS.items():
        value = results[kernel][target]
        quiet = max(baseline[target], 1.0)
        # The targeted register must be clearly elevated over the quiet
        # machine (several kernels legitimately inflate more than one
        # register — e.g. a full ROB also stretches Fetch->Map — so the
        # comparison is against the baseline, not across kernels).
        assert value > 2.0 * quiet, (
            "%s: %s = %.2f not above baseline %.2f"
            % (kernel, target, value, quiet))
