"""Probe-registry overhead benchmark: the introspection plane must be free.

Two questions, answered with JSON output so future PRs can track them::

    PYTHONPATH=src python benchmarks/bench_probe_registry.py \
        --out probe_registry.json

* **No-probe overhead** — a machine that is never observed must pay
  nothing for the registry's existence.  The registry is built lazily
  on first ``probe_registry()`` call, so an unobserved run and the
  pre-registry engine execute the same code; this benchmark measures
  both an unobserved run and a run with the registry built (but never
  read mid-run) against each other.  The acceptance bar is the engine
  benchmark's own: the unobserved path must stay within noise of
  ``bench_engine_throughput``'s ``0_probes`` figure.

* **Read throughput** — how fast can a monitoring loop sweep the
  namespace?  Measured over a synthetic 1000-probe registry (the scale
  of a many-core machine) for cached reads, refreshing reads,
  invalidate-then-read-all sweeps, wildcard enumeration, and snapshots.
"""

import argparse
import json
import sys
import time

from repro.harness import make_core
from repro.probes import KIND_COUNTER, ProbeRegistry
from repro.workloads import suite_program


def _timed(fn, repeats):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def bench_engine_overhead(scale, repeats):
    """Unobserved vs. registry-built (but unread) run of one workload."""
    program = suite_program("compress", scale=scale)
    results = {}
    for label in ("unobserved", "registry_built"):
        best = None
        cycles = 0
        for _ in range(repeats):
            core = make_core(program, core_kind="ooo")
            if label == "registry_built":
                core.probe_registry()  # built up front, never read mid-run
            start = time.perf_counter()
            cycles = core.run()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        results[label] = {
            "cycles": cycles,
            "wall_s": round(best, 6),
            "cycles_per_sec": round(cycles / best) if best else 0,
        }
    unobserved = results["unobserved"]["wall_s"]
    built = results["registry_built"]["wall_s"]
    results["overhead_fraction"] = round(
        (built - unobserved) / unobserved, 4) if unobserved else 0.0
    return results


def build_synthetic_registry(probes):
    """A registry with *probes* counters over a shared mutable source."""
    registry = ProbeRegistry()
    state = {"value": 0}
    for index in range(probes):
        registry.register(
            "synth.unit%d.count%d" % (index // 10, index % 10)
            if probes <= 100 else "synth.unit%d.count" % index,
            lambda: state["value"], kind=KIND_COUNTER, unit="events")
    return registry, state


def bench_read_throughput(probes, repeats):
    """Registry-sweep rates over a *probes*-entry namespace."""
    registry, state = build_synthetic_registry(probes)
    names = registry.names()
    results = {"probes": len(names)}

    def cached_reads():
        for name in names:
            registry.read(name)

    def refreshing_reads():
        for name in names:
            registry.read(name, refresh=True)

    def sweep():
        state["value"] += 1
        registry.invalidate()
        registry.read_all()

    sweeps = {
        "cached_read": cached_reads,
        "refresh_read": refreshing_reads,
        "invalidate_read_all": sweep,
        "wildcard_names": lambda: registry.names("synth.unit4*"),
        "snapshot": lambda: registry.snapshot(),
    }
    for label, fn in sweeps.items():
        best = _timed(fn, repeats)
        results[label] = {
            "wall_s": round(best, 6),
            "reads_per_sec": round(len(names) / best) if best else 0,
        }
    return results


def run_benchmark(scale=2, probes=1000, repeats=3):
    return {
        "engine_overhead": bench_engine_overhead(scale, repeats),
        "read_throughput": bench_read_throughput(probes, repeats),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=2,
                        help="workload scale factor for the engine runs")
    parser.add_argument("--probes", type=int, default=1000,
                        help="synthetic registry size")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best is reported)")
    parser.add_argument("--out", help="write the JSON report here")
    args = parser.parse_args(argv)

    results = run_benchmark(scale=args.scale, probes=args.probes,
                            repeats=args.repeats)
    text = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as stream:
            stream.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
