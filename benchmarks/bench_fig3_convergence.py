"""Figure 3: convergence of sampled estimates to exact counts.

The paper samples SPECint95 traces and plots per-static-instruction
estimate/actual ratios against the number of samples, for two properties:
retire counts (left column) and D-cache miss counts (right column).  The
ratios converge inside the ``1 +- 1/sqrt(k)`` envelope, with roughly two
thirds of the points inside.

Scaling (DESIGN.md): traces are 10^5-10^6 instructions with S scaled so
that the expected samples-per-instruction matches the regimes the paper
plots; convergence depends only on E[k].
"""

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.convergence import (convergence_points,
                                        dcache_miss_property,
                                        effective_interval,
                                        envelope_fraction, retired_property,
                                        summarize)
from repro.analysis.reports import format_table
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program

BENCHMARKS = ("compress", "vortex")  # vortex supplies the D-miss column


def _experiment():
    scale = bench_scale()
    all_points = {"retired": [], "dcache_miss": []}
    for name in BENCHMARKS:
        program = suite_program(name, scale=6 * scale)
        # S=120 with +-50% uniform jitter: the minimum interval exceeds
        # the typical sample flight time, so no selections are dropped
        # and the average interval is exactly S (see unit.py on drops).
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=120,
                                                   seed=17),
                           collect_truth=True, keep_records=False)
        s_eff = effective_interval(run.truth.total_fetched,
                                   run.database.total_samples)
        all_points["retired"].extend(convergence_points(
            run.database, run.truth, s_eff, retired_property))
        all_points["dcache_miss"].extend(convergence_points(
            run.database, run.truth, s_eff, dcache_miss_property,
            min_actual=5))
    return all_points


def test_fig3_convergence(benchmark):
    all_points = run_once(benchmark, _experiment)

    for prop, points in all_points.items():
        print("\n=== Figure 3 (%s): estimate/actual ratio vs samples ==="
              % prop)
        rows = [[row["k_low"], row["k_high"], row["points"],
                 "%.3f" % row["mean_abs_error"],
                 "%.3f" % row["predicted_error"],
                 "%.2f" % row["envelope_fraction"]]
                for row in summarize(points)]
        print(format_table(
            ["k >=", "k <", "points", "mean|ratio-1|", "1/sqrt(k)",
             "in envelope"], rows))
        print("overall envelope fraction: %.2f (expect ~2/3)"
              % envelope_fraction(points))

    retired = all_points["retired"]
    assert len(retired) > 50
    # Convergence: hot instructions are estimated within a few sigma
    # (loop-period correlation of uniform intervals inflates the
    # per-PC variance somewhat beyond the Bernoulli envelope).
    hot = [p for p in retired if p.matching_samples >= 40]
    assert hot
    for p in hot:
        assert abs(p.ratio - 1.0) < 0.5
    # Error shrinks with k like 1/sqrt(k).
    rows = summarize(retired, buckets=(1, 16, 10 ** 9))
    if len(rows) == 2:
        assert rows[1]["mean_abs_error"] < rows[0]["mean_abs_error"]
    # A healthy share of points inside the one-sigma envelope (paper:
    # about two thirds).
    assert envelope_fraction(retired) > 0.45
    # The D-cache-miss property converges too (fewer matching samples,
    # so just require the hot ones to be in the right ballpark).
    misses = all_points["dcache_miss"]
    hot_misses = [p for p in misses if p.matching_samples >= 64]
    for p in hot_misses:
        assert abs(p.ratio - 1.0) < 0.5
