"""Database data-plane benchmark: legacy scalar vs columnar fold/merge.

The profile store is the hot sink of the whole pipeline — every sample
the service ingests lands in :class:`ProfileDatabase`.  This benchmark
measures the three data-plane operations the columnar rewrite targets,
against an embedded re-implementation of the legacy scalar store (one
``PcProfile`` object per pc, per-record flag walks and
``LatencyAggregate`` method calls):

* **fold** — records/s from wire payload to queryable per-pc rows (the
  shard worker's boundary), three ways: decode + the legacy scalar
  loop, decode + the columnar ``add_record`` loop, and the service's
  fused path (:class:`~repro.service.fold.ShardFolder`,
  signature-memoized straight into the columns — repeats never
  materialize a record object at all).
* **merge** — records/s through an N-shard merge into a fresh database
  (the shape of every service query).
* **top-k** — ``top_by_event`` over the merged store.

The fused fold + columnar merge pipeline is the acceptance row: it must
beat the legacy scalar pipeline >= 5x.
"""

import time

from benchmarks.conftest import bench_scale, run_once
from repro.analysis.database import (LatencyAggregate, PcProfile,
                                     ProfileDatabase, decompose_events)
from repro.analysis.reports import format_table
from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode
from repro.profileme.registers import LATENCY_FIELDS, ProfileRecord
from repro.service.fold import ShardFolder
from repro.service.protocol import decode_push_payload, encode_push_payload

SHARDS = 8
NUM_PCS = 2048
EVENT_MIX = (
    Event.RETIRED,
    Event.RETIRED | Event.DCACHE_MISS,
    Event.RETIRED | Event.BRANCH_TAKEN,
    Event.RETIRED | Event.DCACHE_MISS | Event.L2_MISS,
    Event.ABORTED | Event.BAD_PATH,
)


class LegacyDatabase:
    """The pre-columnar profile store, frozen here as the baseline.

    One ``PcProfile`` per pc; ``add_record`` walks the decomposed event
    flags and calls ``LatencyAggregate.add`` per present latency —
    exactly the scalar per-record work the columnar plan table and
    fused signature fold eliminate.
    """

    def __init__(self):
        self.per_pc = {}
        self.total_samples = 0

    def add_record(self, record):
        profile = self.per_pc.get(record.pc)
        if profile is None:
            profile = self.per_pc[record.pc] = PcProfile(pc=record.pc)
        profile.samples += 1
        events = profile.events
        for flag in decompose_events(record.events):
            events[flag] = events.get(flag, 0) + 1
        if record.events & Event.BRANCH_TAKEN:
            profile.taken_count += 1
        latencies = profile.latencies
        for name in LATENCY_FIELDS:
            value = getattr(record, name)
            if value is not None:
                aggregate = latencies.get(name)
                if aggregate is None:
                    aggregate = latencies[name] = LatencyAggregate()
                aggregate.add(value)
        self.total_samples += 1

    def merge(self, other):
        per_pc = self.per_pc
        for pc, theirs in other.per_pc.items():
            mine = per_pc.get(pc)
            if mine is None:
                mine = per_pc[pc] = PcProfile(pc=pc)
            mine.samples += theirs.samples
            mine.taken_count += theirs.taken_count
            for flag, count in theirs.events.items():
                mine.events[flag] = mine.events.get(flag, 0) + count
            for name, aggregate in theirs.latencies.items():
                target = mine.latencies.get(name)
                if target is None:
                    target = mine.latencies[name] = LatencyAggregate()
                target.count += aggregate.count
                target.total += aggregate.total
                target.total_sq += aggregate.total_sq
        self.total_samples += other.total_samples

    def top_by_event(self, flag, limit=10):
        ranked = sorted(((profile.events.get(flag, 0), -pc)
                         for pc, profile in self.per_pc.items()),
                        reverse=True)[:limit]
        return [(-negated, count) for count, negated in ranked]


def _stream(n):
    """*n* records over NUM_PCS static instructions, a few signatures
    each — the repeated-signature shape of real sample streams."""
    records = []
    for i in range(n):
        pc = 0x1000 + 4 * (i % NUM_PCS)
        events = EVENT_MIX[i % len(EVENT_MIX)]
        records.append(ProfileRecord(
            context=0, pc=pc, op=Opcode.ADD, addr=None, events=events,
            abort_reason=AbortReason.NONE, history=0,
            fetch_to_map=2 + (i % 3), map_to_data_ready=1,
            data_ready_to_issue=0, issue_to_retire_ready=1 + (i % 2),
            retire_ready_to_retire=3,
            load_issue_to_completion=12 if events & Event.DCACHE_MISS
            else None,
            fetch_cycle=i, done_cycle=i + 10))
    return records


def _shard_slices(records):
    return [records[shard::SHARDS] for shard in range(SHARDS)]


def _run_legacy(payloads):
    shards = []
    start = time.perf_counter()
    for payload in payloads:
        db = LegacyDatabase()
        for record in decode_push_payload(payload):
            db.add_record(record)
        shards.append(db)
    fold_s = time.perf_counter() - start
    start = time.perf_counter()
    merged = LegacyDatabase()
    for db in shards:
        merged.merge(db)
    merge_s = time.perf_counter() - start
    start = time.perf_counter()
    top = merged.top_by_event(Event.DCACHE_MISS, limit=10)
    top_s = time.perf_counter() - start
    return merged.total_samples, top, fold_s, merge_s, top_s


def _run_columnar(payloads):
    shards = []
    start = time.perf_counter()
    for payload in payloads:
        db = ProfileDatabase()
        for record in decode_push_payload(payload):
            db.add_record(record)
        shards.append(db)
    fold_s = time.perf_counter() - start
    return shards, fold_s


def _run_fused(payloads):
    shards = []
    start = time.perf_counter()
    for payload in payloads:
        folder = ShardFolder()
        folder.fold_payload(payload)
        shards.append(folder.snapshot_database())
    fold_s = time.perf_counter() - start
    return shards, fold_s


def _merge_and_top(shards):
    start = time.perf_counter()
    merged = ProfileDatabase()
    for db in shards:
        merged.merge(db)
    merge_s = time.perf_counter() - start
    start = time.perf_counter()
    top = merged.top_by_event(Event.DCACHE_MISS, limit=10)
    top_s = time.perf_counter() - start
    return merged.total_samples, top, merge_s, top_s


def _experiment():
    n = 60_000 * bench_scale()
    payloads = [encode_push_payload(part)
                for part in _shard_slices(_stream(n))]
    rows = []

    total, top_legacy, fold_s, merge_s, top_s = _run_legacy(payloads)
    assert total == n
    rows.append(("legacy scalar", n, fold_s, merge_s, top_s))

    shards, fold_s = _run_columnar(payloads)
    total, top_columnar, merge_s, top_s = _merge_and_top(shards)
    assert total == n
    rows.append(("columnar", n, fold_s, merge_s, top_s))

    shards, fold_s = _run_fused(payloads)
    total, top_fused, merge_s, top_s = _merge_and_top(shards)
    assert total == n
    rows.append(("columnar fused", n, fold_s, merge_s, top_s))

    # All three paths must agree exactly before any speedup counts.
    assert top_legacy == top_columnar == top_fused
    return rows


def test_bench_database_fold(benchmark, capsys):
    rows = run_once(benchmark, _experiment)
    pipeline = {name: n / (fold_s + merge_s)
                for name, n, fold_s, merge_s, _ in rows}
    with capsys.disabled():
        print()
        print(format_table(
            ["path", "records", "fold records/s", "merge records/s",
             "top-k ms", "fold+merge records/s"],
            [[name, n, "%.0f" % (n / fold_s), "%.0f" % (n / merge_s),
              "%.2f" % (1e3 * top_s), "%.0f" % pipeline[name]]
             for name, n, fold_s, merge_s, top_s in rows],
            title="Profile-store data plane (%d shards, %d pcs)"
            % (SHARDS, NUM_PCS)))
        print()
        print("fused fold+merge speedup over legacy scalar: %.1fx"
              % (pipeline["columnar fused"] / pipeline["legacy scalar"]))
    # The acceptance row: the service-shaped pipeline (fused signature
    # fold + columnar merge) must beat the legacy scalar path >= 5x.
    assert pipeline["columnar fused"] >= 5 * pipeline["legacy scalar"]
    assert pipeline["columnar"] > pipeline["legacy scalar"]
