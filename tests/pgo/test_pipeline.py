"""End-to-end tests for the PGO loop: the PR's acceptance pins.

These run the real pipeline (profile -> plan -> apply -> measure) on
small workloads and pin the headline claims:

* the measured cycle reduction is statistically significant (the 95% CI
  excludes zero) on at least two workloads;
* the sampled pipeline's decisions and speedup match the exact-count
  ground-truth pipeline inside the paper's ``1 +- 1/sqrt(k)`` envelope;
* non-relocatable programs degrade gracefully — relocating passes skip
  with a typed reason while branch hints still measure.

Module-scoped fixtures share each pipeline run across its assertions.
"""

import pytest

from repro.analysis.persistence import (PGO_REPORT_FORMAT_VERSION,
                                        load_pgo_report, save_pgo_report)
from repro.errors import AnalysisError
from repro.pgo import PgoOptions, run_pgo
from repro.pgo.pipeline import options_from_args, replicate_seeds
from repro.pgo.report import document_schema
from repro.workloads import stall_kernel, suite_program


@pytest.fixture(scope="module")
def dcache_report():
    program = stall_kernel("dcache_miss", iterations=400)
    options = PgoOptions(passes=("prefetch",), interval=20, replicates=3,
                         seed=3, compare_truth=True, max_retired=200_000)
    return run_pgo(program, options, workload="kernel:dcache_miss")


@pytest.fixture(scope="module")
def compress_report():
    program = suite_program("compress", scale=1)
    options = PgoOptions(interval=40, replicates=2, seed=3,
                         max_retired=200_000)
    return run_pgo(program, options, workload="compress")


@pytest.fixture(scope="module")
def gcc_report():
    program = suite_program("gcc", scale=1)
    options = PgoOptions(interval=30, replicates=1, seed=3,
                         max_retired=200_000)
    return run_pgo(program, options, workload="gcc")


# ----------------------------------------------------------------------
# Acceptance: measured, significant speedups on two workloads.


class TestMeasuredSpeedups:
    def test_prefetch_wins_on_dcache_kernel(self, dcache_report):
        m = dcache_report.measurement_for("prefetch")
        assert m.protocol == "dynamic-predictor"
        assert m.mean_reduction > 0
        assert m.significant  # 95% CI excludes zero
        assert m.ci_low > 0

    def test_hints_win_on_compress(self, compress_report):
        m = compress_report.measurement_for("hints")
        assert m.protocol == "static-predictor"
        assert m.significant
        assert m.relative_reduction > 0.05  # well over noise

    def test_layout_wins_on_compress(self, compress_report):
        m = compress_report.measurement_for("layout")
        assert m.protocol == "dynamic-predictor"
        assert m.significant

    def test_combined_unit_exists_when_multiple_passes(self, compress_report):
        combined = compress_report.measurement_for("combined")
        assert combined is not None
        assert combined.significant

    def test_reductions_are_baseline_minus_optimized(self, dcache_report):
        m = dcache_report.measurement_for("prefetch")
        assert m.reductions == tuple(m.baseline_cycles - c
                                     for c in m.optimized_cycles)


# ----------------------------------------------------------------------
# Acceptance: sampled matches ground truth within 1/sqrt(k).


class TestGroundTruthEnvelope:
    def test_decisions_agree(self, dcache_report):
        comparison = dcache_report.comparison
        assert comparison is not None
        assert comparison.decisions_agree
        per_pass = {c.name: c for c in comparison.per_pass}
        assert per_pass["prefetch"].matched == per_pass["prefetch"].sampled
        assert not per_pass["prefetch"].conflicts

    def test_speedup_within_envelope(self, dcache_report):
        comparison = dcache_report.comparison
        assert comparison.k_min > 0
        assert comparison.envelope_half == pytest.approx(
            1.0 / comparison.k_min ** 0.5)
        assert comparison.speedup_within_envelope

    def test_per_decision_estimates_within_envelope(self, dcache_report):
        comparison = dcache_report.comparison
        assert comparison.envelope_rows
        assert comparison.envelope_fraction == 1.0
        for row in comparison.envelope_rows:
            assert row.estimate == pytest.approx(
                row.k * dcache_report.effective_interval)
            assert row.within


# ----------------------------------------------------------------------
# Graceful degradation on non-relocatable programs.


class TestJumpTableWorkload:
    def test_relocating_passes_skip_with_typed_reason(self, gcc_report):
        for name in ("layout", "prefetch"):
            report = gcc_report.plan.report_for(name)
            assert report.status == "skipped"
            assert "indirect" in report.reason
            assert report.pcs  # names the offending JMP PCs

    def test_all_units_still_measured(self, gcc_report):
        names = {m.name for m in gcc_report.measurements}
        assert {"layout", "prefetch", "hints", "combined"} <= names
        # Skipped passes measure as identity: exactly zero reduction.
        assert gcc_report.measurement_for("layout").mean_reduction == 0.0


# ----------------------------------------------------------------------
# The persisted report document.


class TestReportDocument:
    def test_round_trip(self, dcache_report, tmp_path):
        path = tmp_path / "report.json"
        save_pgo_report(dcache_report.document, path)
        assert load_pgo_report(path) == dcache_report.document

    def test_version_pinned(self, dcache_report):
        assert dcache_report.document["version"] == PGO_REPORT_FORMAT_VERSION
        assert dcache_report.document["format"] == "repro-pgo-report"

    def test_schema_covers_the_headline_fields(self, dcache_report):
        paths = document_schema(dcache_report.document)
        for expected in (
                "measurements[].ci_low: number",
                "measurements[].ci_high: number",
                "measurements[].significant: boolean",
                "comparison.speedup_within_envelope: boolean",
                "profile.effective_interval: number",
                "passes[].status: string",
        ):
            assert expected in paths

    def test_schema_matches_the_committed_file(self, dcache_report):
        # tests/data/pgo_report_schema.json is what the CI pgo-smoke job
        # diffs a fresh `repro optimize --quick` report against; this
        # test keeps the committed file honest.  Regenerate it with
        # document_schema() after deliberate format changes.
        import json
        import pathlib

        committed = json.loads(
            (pathlib.Path(__file__).parent.parent / "data"
             / "pgo_report_schema.json").read_text())
        assert document_schema(dcache_report.document) == committed

    def test_document_is_json_safe_and_deterministic(self, dcache_report):
        import json

        first = json.dumps(dcache_report.document, sort_keys=True)
        second = json.dumps(dcache_report.document, sort_keys=True)
        assert first == second

    def test_load_rejects_other_documents(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else",
                                    "version": 1}))
        with pytest.raises(AnalysisError):
            load_pgo_report(path)


# ----------------------------------------------------------------------
# Options and failure modes.


class TestOptions:
    def test_replicate_seeds_are_spread(self):
        options = PgoOptions(seed=5, replicates=3)
        assert replicate_seeds(options) == [5, 106, 207]

    def test_unknown_pass_rejected_up_front(self):
        with pytest.raises(AnalysisError, match="unknown PGO pass"):
            PgoOptions(passes=("layout", "unroll"))

    def test_quick_mode_defaults(self):
        class Args:
            passes = None
            seeds = 3
            interval = 100
            max_retired = None
            quick = True
            seed = 1
            mode = "detailed"
            window = 2000
            core = "ooo"
            lookahead = 6
            jobs = 1
            checkpoint = None
            compare_truth = False

        options = options_from_args(Args())
        assert options.replicates == 2
        assert options.max_retired == 200_000
        assert options.passes == ("layout", "prefetch", "hints")

    def test_no_samples_is_a_typed_error(self):
        program = stall_kernel("dcache_miss", iterations=2)
        options = PgoOptions(passes=("prefetch",), interval=1_000_000,
                             replicates=1)
        with pytest.raises(AnalysisError, match="interval"):
            run_pgo(program, options)

    def test_two_speed_mode_runs(self):
        program = stall_kernel("dcache_miss", iterations=400)
        options = PgoOptions(passes=("prefetch",), interval=20,
                             replicates=1, seed=3, exec_mode="two-speed",
                             window=500)
        report = run_pgo(program, options)
        # Two-speed honours the configured interval exactly, so it *is*
        # the effective interval (section 5.1 calibration is for the
        # detailed engine).
        assert report.effective_interval == 20.0
        assert report.measurement_for("prefetch") is not None
