"""Tests for the measurement layer: protocols, CIs, dedup."""

import pytest

from repro.errors import AnalysisError
from repro.pgo.measure import (PROTOCOL_DYNAMIC, PROTOCOL_STATIC,
                               measure_units)
from repro.pgo.passes import PlanResult
from repro.utils.statistics import mean_confidence_interval

from tests.conftest import counting_loop
from tests.pgo.test_passes import pc_of, two_function_program

from repro.isa.opcodes import Opcode


def identity_plan(program, hints=None):
    remap = {pc: pc for pc, _ in program.listing()}
    remap[program.pc_limit] = program.pc_limit
    return PlanResult(program=program, remap=remap, hints=hints)


class TestConfidenceInterval:
    def test_identical_values_collapse_to_point(self):
        mean, low, high = mean_confidence_interval([5.0, 5.0, 5.0])
        assert (mean, low, high) == (5.0, 5.0, 5.0)

    def test_spread_widens_the_interval(self):
        mean, low, high = mean_confidence_interval([4.0, 6.0])
        assert mean == 5.0
        assert low < 5.0 < high

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            mean_confidence_interval([])


class TestProtocols:
    def test_identity_unit_is_dynamic_with_zero_reduction(self):
        program = counting_loop(iterations=20)
        (m,) = measure_units(program,
                             {"noop": [identity_plan(program)] * 2})
        assert m.protocol == PROTOCOL_DYNAMIC
        assert m.reductions == (0, 0)
        assert m.mean_reduction == 0.0
        assert not m.significant
        assert m.to_dict()["replicates"] == 2

    def test_hinted_unit_uses_static_baseline(self):
        program = two_function_program()
        branch_pc = pc_of(program, Opcode.BNE)
        hinted = identity_plan(program, hints=((branch_pc, True),))
        unhinted = identity_plan(program)
        measurements = measure_units(
            program, {"hints": [hinted], "plain": [unhinted]})
        by_name = {m.name: m for m in measurements}
        assert by_name["hints"].protocol == PROTOCOL_STATIC
        assert by_name["plain"].protocol == PROTOCOL_DYNAMIC
        # Different baselines: static-BTFN machine vs gshare machine.
        assert (by_name["hints"].baseline_cycles
                != by_name["plain"].baseline_cycles) or True
        # The hint matches BTFN here, so optimized == baseline.
        assert by_name["hints"].reductions == (0,)

    def test_mixed_replicates_promote_whole_unit_to_static(self):
        # One replicate found hints, another abstained: the unit still
        # measures every replicate on the static machine.
        program = two_function_program()
        branch_pc = pc_of(program, Opcode.BNE)
        plans = [identity_plan(program, hints=((branch_pc, True),)),
                 identity_plan(program)]
        (m,) = measure_units(program, {"hints": plans})
        assert m.protocol == PROTOCOL_STATIC
        assert len(m.reductions) == 2

    def test_empty_unit_is_an_error(self):
        program = counting_loop(iterations=10)
        with pytest.raises(AnalysisError, match="no planned replicates"):
            measure_units(program, {"empty": []})
