"""Unit tests for the typed PGO passes and the pass manager."""

import pytest

from repro.errors import AnalysisError
from repro.events import Event
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import Interpreter
from repro.isa.opcodes import Opcode
from repro.pgo.passes import (PASS_ORDER, PassNotApplicable,
                              STATUS_APPLIED, STATUS_EMPTY, STATUS_SKIPPED,
                              Transformation, plan_passes, resolve_passes)
from repro.analysis.database import ProfileDatabase

from tests.analysis.test_database import make_record


# ----------------------------------------------------------------------
# Program fixtures.


def two_function_program():
    """main calls leaf in a loop; leaf does a strided load."""
    b = ProgramBuilder(name="twofn")
    b.alloc("arr", 256, init=list(range(256)))
    b.begin_function("main")
    b.li_addr(2, "arr")
    b.ldi(1, 8)
    b.label("loop")
    b.jsr("leaf", ra=26)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    b.begin_function("leaf")
    b.ld(3, 2, 0)  # the strided load
    b.lda(2, 2, 8)  # unique updater: stride 8
    b.ret(26)
    b.end_function()
    return b.build(entry="main")


def jump_table_program():
    b = ProgramBuilder(name="jumpy")
    b.begin_function("main")
    b.ldi(1, 8)
    b.jmp(1)
    b.halt()
    b.end_function()
    return b.build(entry="main")


def pc_of(program, opcode, index=0):
    pcs = [i * 4 for i, inst in enumerate(program.instructions)
           if inst.op is opcode]
    return pcs[index]


# ----------------------------------------------------------------------
# Synthetic profile databases.


def db_with(records):
    db = ProfileDatabase()
    for record in records:
        db.add(record)
    return db


def leaf_hot_database(program):
    """I-cache heat concentrated in leaf; misses + latencies on its load."""
    load_pc = pc_of(program, Opcode.LD)
    records = []
    for _ in range(6):
        records.append(make_record(
            pc=load_pc, op=Opcode.LD,
            events=Event.RETIRED | Event.DCACHE_MISS | Event.ICACHE_MISS,
            latencies={"load_issue_to_completion": 40}))
    records.append(make_record(pc=program.entry, op=Opcode.LDI,
                               events=Event.RETIRED))
    return db_with(records)


def branch_database(program, taken_times, not_taken_times):
    branch_pc = pc_of(program, Opcode.BNE)
    records = []
    for _ in range(taken_times):
        records.append(make_record(pc=branch_pc, op=Opcode.BNE,
                                   events=Event.RETIRED | Event.BRANCH_TAKEN))
    for _ in range(not_taken_times):
        records.append(make_record(pc=branch_pc, op=Opcode.BNE,
                                   events=Event.RETIRED))
    return db_with(records)


# ----------------------------------------------------------------------
# Transformation mechanics.


class TestTransformation:
    def test_decision_is_kind_pc_detail(self):
        t = Transformation(kind="hint", pc=0x20, detail=(("taken", True),),
                           evidence=(("k", 9),))
        assert t.decision == ("hint", 0x20, (("taken", True),))

    def test_matching_samples_reads_k(self):
        t = Transformation(kind="prefetch", pc=0x10, detail=(),
                           evidence=(("k", 7), ("miss_fraction", 0.9)))
        assert t.matching_samples == 7
        bare = Transformation(kind="prefetch", pc=0x10, detail=())
        assert bare.matching_samples == 0

    def test_to_dict_round_trip_shapes(self):
        t = Transformation(kind="layout", pc=0,
                           detail=(("function", "leaf"), ("position", 0)),
                           evidence=(("k", 3),))
        d = t.to_dict()
        assert d["detail"] == {"function": "leaf", "position": 0}
        assert d["evidence"] == {"k": 3}


class TestResolvePasses:
    def test_unknown_pass_is_typed_error(self):
        with pytest.raises(AnalysisError, match="unknown PGO pass"):
            resolve_passes(("layout", "vectorize"))

    def test_canonical_order_regardless_of_request_order(self):
        names = [p.name for p in resolve_passes(("hints", "layout"))]
        assert names == ["layout", "hints"]
        assert tuple(p.name for p in resolve_passes(PASS_ORDER)) == PASS_ORDER


# ----------------------------------------------------------------------
# Individual passes through the manager.


class TestLayoutPass:
    def test_hot_function_moves_first(self):
        program = two_function_program()
        result = plan_passes(program, leaf_hot_database(program),
                             passes=("layout",))
        report = result.report_for("layout")
        assert report.status == STATUS_APPLIED
        assert result.program.functions["leaf"][0] == 0
        # Decisions carry the original-PC anchor and the chosen position.
        by_function = {dict(t.detail)["function"]: dict(t.detail)["position"]
                       for t in report.transformations}
        assert by_function["leaf"] == 0
        assert by_function["main"] == 1

    def test_remap_tracks_relocation(self):
        program = two_function_program()
        result = plan_passes(program, leaf_hot_database(program),
                             passes=("layout",))
        load_pc = pc_of(program, Opcode.LD)
        moved = result.remap[load_pc]
        assert result.program.fetch(moved).op is Opcode.LD
        assert moved != load_pc

    def test_already_optimal_order_is_empty(self):
        program = two_function_program()
        # Heat on main (already first): nothing to do.
        db = db_with([make_record(pc=program.entry, op=Opcode.LDI,
                                  events=Event.RETIRED | Event.ICACHE_MISS)])
        result = plan_passes(program, db, passes=("layout",))
        assert result.report_for("layout").status == STATUS_EMPTY
        assert result.program is program


class TestPrefetchPass:
    def test_prefetch_inserted_after_missing_strided_load(self):
        program = two_function_program()
        result = plan_passes(program, leaf_hot_database(program),
                             passes=("prefetch",))
        report = result.report_for("prefetch")
        assert report.status == STATUS_APPLIED
        (t,) = report.transformations
        load_pc = pc_of(program, Opcode.LD)
        assert t.pc == load_pc  # anchored to the *original* PC
        detail = dict(t.detail)
        assert detail["stride"] == 8
        assert detail["displacement"] == 0 + 6 * 8  # imm + lookahead*stride
        # The PREFETCH sits right after the load in the new image.
        after = result.remap[load_pc] + 4
        assert result.program.fetch(after).op is Opcode.PREFETCH

    def test_insufficient_samples_is_empty(self):
        program = two_function_program()
        load_pc = pc_of(program, Opcode.LD)
        db = db_with([make_record(
            pc=load_pc, op=Opcode.LD,
            events=Event.RETIRED | Event.DCACHE_MISS,
            latencies={"load_issue_to_completion": 40})] * 3)  # < min 5
        result = plan_passes(program, db, passes=("prefetch",))
        assert result.report_for("prefetch").status == STATUS_EMPTY


class TestHintPass:
    def test_only_btfn_overrides_become_decisions(self):
        program = two_function_program()
        # bne target is backward (the loop label), so BTFN already says
        # taken; a mostly-taken profile changes nothing.
        agree = plan_passes(program, branch_database(program, 8, 1),
                            passes=("hints",))
        assert agree.report_for("hints").status == STATUS_EMPTY
        assert agree.hints is None
        # A mostly-not-taken profile overrides BTFN.
        override = plan_passes(program, branch_database(program, 1, 8),
                               passes=("hints",))
        report = override.report_for("hints")
        assert report.status == STATUS_APPLIED
        (t,) = report.transformations
        assert t.kind == "hint"
        assert dict(t.detail) == {"taken": False}
        assert override.hints == ((pc_of(program, Opcode.BNE), False),)
        # Hints never touch the program text.
        assert override.program is program

    def test_hints_pcs_follow_relocation(self):
        program = two_function_program()
        # Heat in leaf + a branch override in main: after layout moves
        # leaf first, the hint must name the branch's *new* PC.
        records = []
        load_pc = pc_of(program, Opcode.LD)
        for _ in range(6):
            records.append(make_record(
                pc=load_pc, op=Opcode.LD,
                events=Event.RETIRED | Event.DCACHE_MISS | Event.ICACHE_MISS,
                latencies={"load_issue_to_completion": 40}))
        branch_pc = pc_of(program, Opcode.BNE)
        for _ in range(6):
            records.append(make_record(pc=branch_pc, op=Opcode.BNE,
                                       events=Event.RETIRED))
        result = plan_passes(program, db_with(records),
                             passes=("layout", "hints"))
        assert result.applied_passes == ("layout", "hints")
        ((hint_pc, taken),) = result.hints
        assert taken is False
        assert hint_pc == result.remap[branch_pc]
        assert result.program.fetch(hint_pc).op is Opcode.BNE


# ----------------------------------------------------------------------
# Applicability guards and chaining.


class TestApplicabilityGuards:
    def test_relocating_passes_skip_on_jump_tables(self):
        program = jump_table_program()
        jmp_pc = pc_of(program, Opcode.JMP)
        db = db_with([make_record(pc=program.entry, op=Opcode.LDI,
                                  events=Event.RETIRED | Event.ICACHE_MISS)])
        result = plan_passes(program, db, passes=PASS_ORDER)
        for name in ("layout", "prefetch"):
            report = result.report_for(name)
            assert report.status == STATUS_SKIPPED
            assert "indirect" in report.reason
            assert jmp_pc in report.pcs
        # A skipped pass never half-applies.
        assert result.program is program
        assert result.report_for("hints").status == STATUS_EMPTY

    def test_pass_not_applicable_is_analysis_error(self):
        exc = PassNotApplicable("layout", "because", pcs=(8,))
        assert isinstance(exc, AnalysisError)
        assert exc.pass_name == "layout"
        assert exc.pcs == (8,)


class TestChaining:
    def test_combined_plan_preserves_architecture(self):
        program = two_function_program()
        result = plan_passes(program, leaf_hot_database(program),
                             passes=("layout", "prefetch"))
        assert result.applied_passes == ("layout", "prefetch")
        # Prefetch landed on the load even though layout moved it.
        load_pc = pc_of(program, Opcode.LD)
        new_load = result.remap[load_pc]
        assert result.program.fetch(new_load).op is Opcode.LD
        assert result.program.fetch(new_load + 4).op is Opcode.PREFETCH
        # And the transformed program computes the same result.
        ref = Interpreter(program)
        ref.run_to_halt()
        got = Interpreter(result.program)
        got.run_to_halt()
        assert got.state.memory.snapshot() == ref.state.memory.snapshot()
        ref_regs = ref.state.regs.snapshot()
        got_regs = got.state.regs.snapshot()
        ref_regs[26] = got_regs[26] = 0  # return addresses move
        assert got_regs == ref_regs

    def test_identity_remap_covers_pc_limit(self):
        program = two_function_program()
        result = plan_passes(program, leaf_hot_database(program),
                             passes=("layout", "prefetch"))
        # pc_limit chains through every relocation (extent arithmetic).
        assert result.remap[program.pc_limit] == result.program.pc_limit
