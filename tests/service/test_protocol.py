"""Tests for the profiling-service wire protocol."""

import pytest

from repro.errors import ProtocolError
from repro.events import AbortReason, Event
from repro.profileme.registers import GroupRecord, PairedRecord
from repro.service.protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                    check_ok, encode_frame, error_frame,
                                    hello_frame, ok_frame, parse_address,
                                    push_frame, record_from_wire,
                                    record_to_wire, split_frames)

from tests.analysis.test_database import make_record


class TestRecordRoundTrip:
    def test_single_record_every_field(self):
        record = make_record(pc=0x40, events=Event.RETIRED | Event.DCACHE_MISS,
                             addr=4096,
                             latencies={"load_issue_to_completion": 17})
        assert record_from_wire(record_to_wire(record)) == record

    def test_offpath_record_without_opcode(self):
        import dataclasses

        record = dataclasses.replace(
            make_record(op=None, events=Event.ABORTED | Event.BAD_PATH),
            abort_reason=AbortReason.FETCH_DISCARD)
        clone = record_from_wire(record_to_wire(record))
        assert clone == record
        assert clone.op is None
        assert clone.abort_reason is AbortReason.FETCH_DISCARD

    def test_none_latencies_survive(self):
        record = make_record(latencies={"data_ready_to_issue": None,
                                        "issue_to_retire_ready": None})
        clone = record_from_wire(record_to_wire(record))
        assert clone.data_ready_to_issue is None
        assert clone.issue_to_retire_ready is None

    def test_pair_with_missing_second(self):
        pair = PairedRecord(first=make_record(pc=0x10), second=None,
                            intra_pair_cycles=None, intra_pair_distance=7)
        assert record_from_wire(record_to_wire(pair)) == pair

    def test_group_with_missing_members(self):
        group = GroupRecord(
            records=(make_record(pc=0x10), None, make_record(pc=0x30)),
            fetch_offsets=(0, None, 12), distances=(5, 5))
        assert record_from_wire(record_to_wire(group)) == group

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError, match="unknown record tag"):
            record_from_wire({"t": "bogus"})

    def test_malformed_record_rejected(self):
        wire = record_to_wire(make_record())
        del wire["events"]
        with pytest.raises(ProtocolError, match="malformed wire record"):
            record_from_wire(wire)

    def test_wrong_latency_count_rejected(self):
        wire = record_to_wire(make_record())
        wire["lat"] = wire["lat"][:-1]
        with pytest.raises(ProtocolError):
            record_from_wire(wire)


class TestFraming:
    def test_frame_round_trip(self):
        frame = push_frame([make_record()], sync=True)
        frames, clean = split_frames(encode_frame(frame))
        assert clean == len(encode_frame(frame))
        assert frames == [frame]

    def test_split_keeps_only_complete_frames(self):
        data = encode_frame(hello_frame()) + encode_frame(ok_frame())
        frames, clean = split_frames(data + data[:5])  # torn trailing frame
        assert len(frames) == 2
        assert clean == len(data)

    def test_oversized_length_prefix_rejected(self):
        bogus = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"x"
        with pytest.raises(ProtocolError, match="exceeds"):
            split_frames(bogus)

    def test_non_strict_salvages_prefix_before_corruption(self):
        good = encode_frame(hello_frame())
        bogus = (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"x"
        frames, clean = split_frames(good + bogus, strict=False)
        assert frames == [hello_frame()]
        assert clean == len(good)
        assert split_frames(bogus, strict=False) == ([], 0)

    def test_non_strict_stops_at_undecodable_body(self):
        # A frame appended after a torn one: the framing is lost, the
        # torn frame's claimed body swallows the next header, and its
        # bytes are not JSON.  Non-strict parsing keeps what precedes.
        good = encode_frame(hello_frame())
        torn = encode_frame(ok_frame())[:-3]
        data = good + torn + encode_frame(ok_frame())
        frames, clean = split_frames(data, strict=False)
        assert frames == [hello_frame()]
        assert clean == len(good)
        with pytest.raises(ProtocolError):
            split_frames(data)

    def test_hello_carries_version(self):
        assert hello_frame()["version"] == PROTOCOL_VERSION

    def test_check_ok_raises_on_error_frame(self):
        with pytest.raises(ProtocolError, match="server said: nope"):
            check_ok(error_frame("nope"), "test")
        with pytest.raises(ProtocolError, match="connection closed"):
            check_ok(None, "test")
        assert check_ok(ok_frame(x=1), "test")["x"] == 1


class TestAddressParsing:
    def test_host_port(self):
        assert parse_address("127.0.0.1:9137") == ("127.0.0.1", 9137)
        assert parse_address(("localhost", 80)) == ("localhost", 80)

    def test_bad_addresses(self):
        for bad in ("nohost", ":80", "host:", "host:banana"):
            with pytest.raises(ProtocolError):
                parse_address(bad)
