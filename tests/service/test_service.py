"""Tests for the continuous-profiling server and client transport.

Covers ingestion, the query API, overload behaviour (bounded queues +
drop accounting), snapshot persistence, spill/replay fault tolerance,
and the acceptance-criterion end-to-end differential: a database
exported from the service after streaming a session through the wire is
byte-identical (canonical JSON) to the database built in-process.
"""

import dataclasses
import os
import socket
import struct

import pytest

from repro.analysis.persistence import canonical_json, load_database
from repro.engine.session import SessionSpec, run_session
from repro.engine.sweep import spec_key
from repro.events import Event
from repro.profileme.unit import ProfileMeConfig
from repro.service.client import ProfileClient, ServiceSink
from repro.service.protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                    hello_frame, recv_frame, send_frame)
from repro.service.server import ServerThread
from repro.workloads import stall_kernel

from tests.analysis.test_database import make_record


def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


@pytest.fixture
def server():
    with ServerThread(port=0, shards=2) as thread:
        yield thread


class TestProbePush:
    def test_probe_readings_fold_into_series(self, server):
        with ProfileClient(server.address) as client:
            client.push_probes({"cpu0.core.ipc": 0.5,
                                "cpu0.core.retired": 100}, tick=1000)
            client.push_probes({"cpu0.core.ipc": 0.7,
                                "cpu0.core.retired": 250}, tick=2000)
            client.drain()
            reply = client.query("probes", pattern="cpu0.*")
        series = reply["series"]
        assert series["cpu0.core.retired"] == [2, 350, 100, 250, 250, 2000]
        count, total, minimum, maximum, last, last_tick = \
            series["cpu0.core.ipc"]
        assert count == 2 and last == pytest.approx(0.7)
        assert minimum == pytest.approx(0.5)
        assert last_tick == 2000

    def test_series_pattern_filter_and_registry_snapshot(self, server):
        with ProfileClient(server.address) as client:
            client.push_probes({"cpu0.core.ipc": 0.5, "mem.l2.misses": 3},
                               tick=10)
            client.drain()
            reply = client.query("probes", pattern="mem.*")
        assert list(reply["series"]) == ["mem.l2.misses"]
        # The server's own registry never matches a mem.* pattern...
        assert reply["probes"] == {}
        with ProfileClient(server.address) as client:
            wide = client.query("probes")
        # ...but an unfiltered query snapshots it: ServerStats counters
        # plus per-shard samples/lag gauges, with live values.
        assert wide["probes"]["service.probe_pushes"]["value"] == 1
        assert wide["probes"]["service.shard0.lag"]["kind"] == "gauge"

    def test_non_numeric_readings_are_skipped(self, server):
        with ProfileClient(server.address) as client:
            client.push_probes({"profileme.registers.abort_reason": "none",
                                "cpu0.core.halted": 0}, tick=5)
            client.drain()
            reply = client.query("probes")
        assert "profileme.registers.abort_reason" not in reply["series"]
        assert "cpu0.core.halted" in reply["series"]

    def test_streamed_session_lands_probe_series(self, server):
        spec = SessionSpec(
            program=stall_kernel("dcache_miss", iterations=120),
            profile=ProfileMeConfig(mean_interval=50),
            keep_records=False, push_to=server.address, probe_stream=200)
        result = run_session(spec)
        with ProfileClient(server.address) as client:
            client.drain()
            reply = client.query("probes", pattern="cpu0.core.retired")
        series = reply["series"]["cpu0.core.retired"]
        # The final flush samples the end-of-run registry, so the
        # series' last reading equals the session's own snapshot.
        assert series[4] == result.probes["cpu0.core.retired"]["value"]
        assert series[5] == result.cycles


class TestIngestAndQuery:
    def test_push_drain_query_top(self, server):
        with ProfileClient(server.address) as client:
            client.push([make_record(pc=0x10),
                         make_record(pc=0x10),
                         make_record(pc=0x20,
                                     events=Event.RETIRED | Event.DCACHE_MISS)])
            client.drain()
            reply = client.query("top", event="RETIRED", limit=5)
        assert reply["top"][0] == [0x10, 2]
        assert reply["total_samples"] == 3
        assert reply["dropped_records"] == 0

    def test_latency_and_stats_queries(self, server):
        with ProfileClient(server.address) as client:
            client.push([make_record(pc=0x10,
                                     latencies={"fetch_to_map": 6})])
            client.drain()
            latency = client.query("latency", pc=0x10)
            stats = client.query("stats")
            missing = client.query("latency", pc=0x999)
        assert latency["found"] and latency["samples"] == 1
        assert latency["latencies"]["fetch_to_map"] == [1, 6, 36]
        assert stats["total_samples"] == 1
        assert stats["stats"]["batches"] == 1
        assert not missing["found"]

    def test_convergence_reports_error_envelope(self, server):
        with ProfileClient(server.address) as client:
            client.push([make_record(pc=0x10) for _ in range(16)])
            client.drain()
            reply = client.query("convergence", event="RETIRED", limit=1)
        row = reply["convergence"][0]
        assert row["pc"] == 0x10
        assert row["samples"] == 16
        assert row["envelope"] == pytest.approx(1 / 4.0)

    def test_push_database_document_merges(self, server):
        from repro.analysis.database import ProfileDatabase

        db = ProfileDatabase()
        db.add(make_record(pc=0x40))
        with ProfileClient(server.address) as client:
            client.push([make_record(pc=0x40)])
            assert client.push_database(db.to_dict())
            client.drain()
            reply = client.query("stats")
        assert reply["total_samples"] == 2
        assert reply["stats"]["db_merges"] == 1

    def test_sharding_spreads_connections(self, server):
        for pc in (0x10, 0x20):
            with ProfileClient(server.address) as client:
                client.push([make_record(pc=pc)])
                client.drain()
        with ProfileClient(server.address) as client:
            reply = client.query("stats")
        assert sorted(reply["shards"], reverse=True)[0] >= 1
        assert reply["total_samples"] == 2
        assert len(reply["shards"]) == 2

    def test_unknown_event_is_a_handled_error(self, server):
        from repro.errors import ProtocolError

        with ProfileClient(server.address) as client:
            with pytest.raises(ProtocolError, match="unknown event"):
                client.query("top", event="BOGUS")
            with pytest.raises(ProtocolError, match="unknown query"):
                client.query("frobnicate")


class TestProtocolEnforcement:
    def test_version_mismatch_refused(self, server):
        sock = socket.create_connection(("127.0.0.1", server.server.port),
                                        timeout=5)
        try:
            send_frame(sock, {"kind": "hello", "version": 99})
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply["kind"] == "error"
        assert "version" in reply["message"]
        assert str(PROTOCOL_VERSION) in reply["message"]

    def test_non_hello_opening_refused(self, server):
        sock = socket.create_connection(("127.0.0.1", server.server.port),
                                        timeout=5)
        try:
            send_frame(sock, {"kind": "push", "records": []})
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply["kind"] == "error"

    def test_unknown_kind_after_handshake(self, server):
        sock = socket.create_connection(("127.0.0.1", server.server.port),
                                        timeout=5)
        try:
            send_frame(sock, hello_frame())
            assert recv_frame(sock)["kind"] == "ok"
            send_frame(sock, {"kind": "launder"})
            reply = recv_frame(sock)
        finally:
            sock.close()
        assert reply["kind"] == "error"
        assert "unknown frame kind" in reply["message"]


class TestOverload:
    def test_drops_are_counted_and_server_stays_responsive(self):
        # Slow the folder down so a flooding producer outruns it: the
        # bounded queue sheds batches, the counters account for every
        # one, and the connection keeps answering queries.
        with ServerThread(port=0, shards=1, queue_size=2,
                          fold_delay=0.02) as server:
            sent = 30
            with ProfileClient(server.address) as client:
                for index in range(sent):
                    client.push([make_record(pc=0x10 + 4 * index)])
                client.drain()
                reply = client.query("stats")
        stats = reply["stats"]
        assert stats["dropped_batches"] > 0
        assert stats["batches"] + stats["dropped_batches"] == sent
        assert stats["records"] + stats["dropped_records"] == sent
        assert reply["total_samples"] == stats["records"]

    def test_loss_accounting_rides_every_query(self, server):
        with ProfileClient(server.address) as client:
            for reply in (client.query("stats"),
                          client.query("top"),
                          client.query("export"),
                          client.drain()):
                assert "dropped_batches" in reply
                assert "dropped_records" in reply


class TestSnapshots:
    def test_snapshot_written_atomically_and_loadable(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        with ServerThread(port=0, snapshot_path=path,
                          snapshot_interval=3600.0) as server:
            with ProfileClient(server.address) as client:
                client.push([make_record(pc=0x10)])
                client.drain()
        # stop() writes a final snapshot; no .tmp leftovers.
        database = load_database(path)
        assert database.samples_at(0x10) == 1
        assert [n for n in os.listdir(str(tmp_path)) if ".tmp" in n] == []


class TestClientFaultTolerance:
    def test_unreachable_server_without_spill_counts_losses(self):
        client = ProfileClient("127.0.0.1:%d" % _free_port(),
                               retries=1, backoff=0.01, cooldown=60.0)
        assert not client.push([make_record()])
        assert not client.push([make_record()])
        assert client.stats.lost_batches == 2
        # Second push hit the cooldown window: only the first burned
        # connection attempts.
        assert client.stats.retries == 1

    def test_spill_and_replay_delivers_everything(self, tmp_path):
        port = _free_port()
        spill = str(tmp_path / "spill.bin")
        client = ProfileClient("127.0.0.1:%d" % port, retries=0,
                               backoff=0.01, spill_path=spill)
        client.push([make_record(pc=0x10)])
        client.push([make_record(pc=0x20)])
        assert client.stats.spilled_batches == 2
        assert os.path.getsize(spill) > 0

        server = ServerThread(port=port)
        server.start()
        try:
            client.push([make_record(pc=0x30)])
            client.drain()
            reply = client.query("stats")
        finally:
            client.close()
            server.stop()
        assert reply["total_samples"] == 3
        assert client.stats.replayed_batches >= 2
        assert os.path.getsize(spill) == 0  # truncated after replay

    def test_truncated_spill_replay_counts_the_dropped_batch(self, tmp_path):
        # Fault injection: the producer "dies" mid-append, leaving a
        # partial trailing frame in the spill.  Replay must deliver the
        # complete frames, discard the partial one, and account for the
        # discard on both ends instead of losing it silently.
        port = _free_port()
        spill = str(tmp_path / "spill.bin")
        client = ProfileClient("127.0.0.1:%d" % port, retries=0,
                               backoff=0.01, spill_path=spill)
        client.push([make_record(pc=0x10)])
        client.push([make_record(pc=0x20)])
        assert client.stats.spilled_batches == 2
        with open(spill, "rb+") as stream:
            stream.truncate(os.path.getsize(spill) - 3)

        server = ServerThread(port=port)
        server.start()
        try:
            client.drain()  # reconnects; replay runs first
            client.push([make_record(pc=0x30)])
            client.drain()
            reply = client.query("stats")
        finally:
            client.close()
            server.stop()
        assert client.stats.replayed_batches == 1
        assert client.stats.replay_dropped == 1
        assert reply["total_samples"] == 2  # one replayed + one live
        assert reply["stats"]["replay_dropped"] == 1

    def test_corrupt_spill_is_discarded_counted_and_unblocks(self, tmp_path):
        # A garbage length prefix used to make every reconnection raise,
        # wedging the client on an unreplayable file forever.  Now the
        # junk is dropped, counted, and the connection proceeds.
        port = _free_port()
        spill = str(tmp_path / "spill.bin")
        with open(spill, "wb") as stream:
            stream.write(struct.pack(">I", MAX_FRAME_BYTES + 1))
            stream.write(b"junk")

        server = ServerThread(port=port)
        server.start()
        try:
            client = ProfileClient("127.0.0.1:%d" % port, retries=0,
                                   backoff=0.01, spill_path=spill)
            assert client.push([make_record(pc=0x10)])
            client.drain()
            reply = client.query("stats")
            client.close()
        finally:
            server.stop()
        assert client.stats.replay_dropped == 1
        assert os.path.getsize(spill) == 0
        assert reply["total_samples"] == 1
        assert reply["stats"]["replay_dropped"] == 1

    def test_sink_batches_and_drains(self, server):
        client = ProfileClient(server.address)
        sink = ServiceSink(client, batch_size=4)
        for index in range(10):
            sink.add(make_record(pc=0x10 + 4 * index))
        info = sink.close()  # flush remainder + drain + disconnect
        assert info is not None
        assert client.stats.sent_batches == 3  # 4 + 4 + 2
        assert client.stats.sent_records == 10


class TestEndToEndDifferential:
    def _spec(self):
        return SessionSpec(
            program=stall_kernel("dep_chain", iterations=200),
            profile=ProfileMeConfig(mean_interval=30, seed=1),
            keep_records=False, keep_addresses=0)

    def test_served_export_byte_identical_to_in_process(self, server):
        spec = self._spec()
        expected = canonical_json(run_session(spec).database.to_dict())

        pushed = dataclasses.replace(spec, push_to=server.address)
        run_session(pushed)
        with ProfileClient(server.address) as client:
            served = canonical_json(client.query("export")["database"])
        assert served == expected

    def test_push_to_does_not_move_the_spec_key(self):
        spec = self._spec()
        pushed = dataclasses.replace(spec, push_to="127.0.0.1:9137")
        assert spec_key(spec) == spec_key(pushed)

    def test_paired_sampling_streams_identically(self, server):
        spec = SessionSpec(
            program=stall_kernel("dcache_miss", iterations=150),
            profile=ProfileMeConfig(mean_interval=40, paired=True, seed=2),
            keep_records=False)
        expected = canonical_json(run_session(spec).database.to_dict())
        run_session(dataclasses.replace(spec, push_to=server.address))
        with ProfileClient(server.address) as client:
            served = canonical_json(client.query("export")["database"])
        assert served == expected
