"""Fault injection for the shard worker processes.

A continuous profiler's folder must behave like the paper's sampling
hardware under stress: losses are allowed, *unaccounted* losses are not,
and a restarted component must not replay anything twice.  These tests
SIGKILL workers mid-fold and check the two crash invariants end to end:

* the restarted worker resumes from its last checkpoint, so exports stay
  byte-identical to what the checkpoint contained — nothing is double
  counted, nothing half-folded survives;
* every batch accepted after that checkpoint is accounted as dropped,
  so ``records + dropped_records`` always equals what producers sent.

Plus the shedding path (bounded queue overflow) surfacing through the
``service.worker<N>.*`` probe namespace, and the inline (no-process)
fallback folding identically to the process mode.
"""

import json
import socket

import pytest

from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode
from repro.profileme.registers import ProfileRecord
from repro.service.protocol import (PROTOCOL_V2, encode_push_frames,
                                    hello_frame, recv_frame, send_frame)
from repro.service.server import ServerThread
from repro.service.workers import kill_worker, worker_pid


def canonical_json(document):
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def make_records(count, base_pc=0x40):
    return [ProfileRecord(
        context=0, pc=base_pc + 4 * (i % 16), op=Opcode.ADD, addr=None,
        events=Event.RETIRED | (Event.DCACHE_MISS if i % 3 == 0
                                else Event.NONE),
        abort_reason=AbortReason.NONE, history=i,
        fetch_to_map=2, map_to_data_ready=None, data_ready_to_issue=1,
        issue_to_retire_ready=None, retire_ready_to_retire=3,
        load_issue_to_completion=None,
        fetch_cycle=100 + 10 * i, done_cycle=120 + 10 * i)
        for i in range(count)]


class SyncConnection:
    """A raw v2 connection whose pushes are acknowledged per batch.

    ``push_sync`` returns only after the server has *accepted* (enqueued
    or shed) the batch, which is what makes kill timing deterministic:
    after the ack, the batch is in the worker's backlog accounting.
    """

    def __init__(self, server):
        self.sock = socket.create_connection((server.host, server.port),
                                             timeout=10.0)
        send_frame(self.sock, hello_frame(version=PROTOCOL_V2))
        reply = recv_frame(self.sock)
        assert reply.get("kind") == "ok"

    def push_sync(self, samples):
        frames = encode_push_frames(samples, sync=True)
        replies = []
        for frame in frames:
            self.sock.sendall(frame)
            reply = recv_frame(self.sock)
            assert reply.get("kind") == "ok"
            replies.append(reply)
        return replies

    def query(self, command, **params):
        send_frame(self.sock, {"kind": "query", "command": command,
                               "params": params})
        reply = recv_frame(self.sock)
        assert reply.get("kind") == "ok", reply.get("message")
        return reply

    def close(self):
        self.sock.close()


class TestCrashRecovery:
    @pytest.fixture()
    def server(self):
        with ServerThread(port=0, shards=1, queue_size=64,
                          fold_delay=0.02) as thread:
            yield thread.server

    def test_sigkill_mid_fold_no_double_count(self, server):
        conn = SyncConnection(server)
        try:
            for i in range(4):
                conn.push_sync(make_records(5, base_pc=0x40 + 0x100 * i))
            export1 = conn.query("export")
            stats1 = conn.query("stats")
            assert stats1["stats"]["records"] == 20
            assert stats1["stats"]["dropped_records"] == 0

            # Six more batches, accepted (acked) but not checkpointed:
            # whether or not the worker folds them before the kill, they
            # are exactly what the crash must account as dropped.
            for i in range(6):
                conn.push_sync(make_records(5, base_pc=0x40 + 0x100 * i))
            kill_worker(server.workers[0])

            export2 = conn.query("export")
            stats2 = conn.query("stats")["stats"]
            assert canonical_json(export2["database"]) \
                == canonical_json(export1["database"])
            assert stats2["worker_restarts"] == 1
            assert stats2["records"] == 20
            assert stats2["dropped_batches"] == 6
            assert stats2["dropped_records"] == 30
            assert stats2["records"] + stats2["dropped_records"] == 50

            # The restarted worker keeps folding new traffic.
            conn.push_sync(make_records(5, base_pc=0x9000))
            stats3 = conn.query("stats")
            assert stats3["stats"]["records"] == 25
            assert stats3["total_samples"] == 25
            assert stats3["stats"]["dropped_records"] == 30
        finally:
            conn.close()

    def test_sigkill_before_any_checkpoint(self, server):
        conn = SyncConnection(server)
        try:
            for _ in range(3):
                conn.push_sync(make_records(4))
            kill_worker(server.workers[0])
            stats = conn.query("stats")["stats"]
            assert stats["worker_restarts"] == 1
            assert stats["records"] == 0
            assert stats["dropped_records"] == 12
            # Fresh start from nothing: new pushes fold normally.
            conn.push_sync(make_records(4))
            assert conn.query("stats")["total_samples"] == 4
        finally:
            conn.close()

    def test_restart_surfaces_in_worker_probes(self, server):
        conn = SyncConnection(server)
        try:
            conn.push_sync(make_records(3))
            conn.query("stats")  # checkpoint
            conn.push_sync(make_records(3))
            kill_worker(server.workers[0])
            conn.query("stats")  # barrier through the restarted worker
            probes = conn.query("probes", pattern="service.worker0.*")
            values = {name: probe["value"]
                      for name, probe in probes["probes"].items()}
            assert values["service.worker0.restarts"] == 1
            assert values["service.worker0.dropped_batches"] == 1
            assert values["service.worker0.dropped_records"] == 3
            assert values["service.worker0.records"] == 3
        finally:
            conn.close()


class TestQueueShedding:
    def test_overflow_is_shed_and_visible_in_probes(self):
        with ServerThread(port=0, shards=1, queue_size=2,
                          fold_delay=0.05) as thread:
            server = thread.server
            conn = SyncConnection(server)
            try:
                sent = 12
                dropped_acks = 0
                for i in range(sent):
                    replies = conn.push_sync(make_records(5))
                    dropped_acks += sum(1 for r in replies if r["dropped"])
                assert dropped_acks > 0  # the queue really overflowed
                stats = conn.query("stats")["stats"]
                assert stats["dropped_batches"] == dropped_acks
                assert stats["batches"] == sent - dropped_acks
                assert stats["records"] + stats["dropped_records"] \
                    == sent * 5
                probes = conn.query("probes",
                                    pattern="service.worker0.*")
                values = {name: probe["value"]
                          for name, probe in probes["probes"].items()}
                assert values["service.worker0.dropped_batches"] \
                    == dropped_acks
                assert values["service.worker0.dropped_records"] \
                    == dropped_acks * 5
                assert values["service.worker0.restarts"] == 0
            finally:
                conn.close()


class TestInlineMode:
    def test_inline_folds_identically_to_processes(self):
        batches = [make_records(7, base_pc=0x40 + 0x40 * i)
                   for i in range(5)]
        exports = []
        for use_workers in (True, False):
            with ServerThread(port=0, shards=2,
                              workers=use_workers) as thread:
                conn = SyncConnection(thread.server)
                try:
                    for batch in batches:
                        conn.push_sync(batch)
                    exports.append(canonical_json(
                        conn.query("export")["database"]))
                    if not use_workers:
                        assert worker_pid(thread.server.workers[0]) is None
                finally:
                    conn.close()
        assert exports[0] == exports[1]

    def test_kill_worker_is_noop_inline(self):
        with ServerThread(port=0, shards=1, workers=False) as thread:
            kill_worker(thread.server.workers[0])  # must not raise
            conn = SyncConnection(thread.server)
            try:
                conn.push_sync(make_records(2))
                assert conn.query("stats")["total_samples"] == 2
            finally:
                conn.close()
