"""End-to-end tests for continuous-ingest rollup through the service.

A server started with ``--rollup-interval`` buckets every shard's
samples by their wire-carried fetch cycle; ``--retain-buckets`` bounds
live buckets per shard with eviction accounting.  These tests drive the
full path — client push over the v2 wire, shard workers, the ``epochs``
query, stats accounting, and the probe registry's per-shard gauges.
"""

import pytest

from repro.errors import ProtocolError, ServiceError
from repro.service.client import ProfileClient
from repro.service.server import ServerThread

from tests.analysis.test_rollup import tick_record


@pytest.fixture
def rollup_server():
    with ServerThread(port=0, shards=2, rollup_interval=100) as thread:
        yield thread


def _push_stream(address, ticks, pc=0x10):
    with ProfileClient(address) as client:
        client.push([tick_record(tick, pc=pc) for tick in ticks])
        client.drain()


class TestEpochsQuery:
    def test_epochs_report_bucketed_ingest(self, rollup_server):
        _push_stream(rollup_server.address, range(0, 500, 50))
        with ProfileClient(rollup_server.address) as client:
            reply = client.epochs()
        assert reply["rollup_interval"] == 100
        assert reply["retain_buckets"] == 0
        assert reply["evicted_samples"] == 0
        assert sum(row["samples"] for row in reply["epochs"]) == 10
        assert reply["total_samples"] == 10
        starts = [row["start"] for row in reply["epochs"]]
        assert starts == sorted(starts)

    def test_since_until_filter(self, rollup_server):
        _push_stream(rollup_server.address, range(0, 1000, 100))
        with ProfileClient(rollup_server.address) as client:
            window = client.epochs(since=300, until=600)
            everything = client.epochs()
        assert window["epochs"]
        assert len(window["epochs"]) < len(everything["epochs"])
        for row in window["epochs"]:
            assert row["start"] < 600
            assert row["start"] + row["span"] > 300

    def test_limit_keeps_newest(self, rollup_server):
        _push_stream(rollup_server.address, range(0, 1000, 100))
        with ProfileClient(rollup_server.address) as client:
            capped = client.epochs(limit=2)
            everything = client.epochs()
        assert len(capped["epochs"]) == 2
        assert capped["epochs"] == everything["epochs"][-2:]

    def test_malformed_ranges_rejected_client_side(self, rollup_server):
        with ProfileClient(rollup_server.address) as client:
            with pytest.raises(ProtocolError):
                client.epochs(since=10, until=10)
            with pytest.raises(ProtocolError):
                client.epochs(limit=0)
            with pytest.raises(ProtocolError):
                client.epochs(since="soon")

    def test_epochs_on_flat_server_is_empty(self):
        with ServerThread(port=0, shards=1) as thread:
            _push_stream(thread.address, [0, 10, 20])
            with ProfileClient(thread.address) as client:
                reply = client.epochs()
        assert reply["epochs"] == []
        assert reply["rollup_interval"] == 0
        assert reply["total_samples"] == 3


class TestRetentionAccounting:
    def test_ingested_equals_retained_plus_evicted(self):
        with ServerThread(port=0, shards=2, rollup_interval=50,
                          retain_buckets=3) as thread:
            _push_stream(thread.address, range(0, 2000, 20))
            with ProfileClient(thread.address) as client:
                reply = client.epochs()
                stats = client.query("stats")
        assert reply["evicted_samples"] > 0
        assert reply["total_samples"] + reply["evicted_samples"] == 100
        assert sum(reply["shard_evicted"]) == reply["evicted_samples"]
        assert stats["stats"]["evicted_samples"] == \
            reply["evicted_samples"]

    def test_shard_probes_expose_buckets_and_evictions(self):
        with ServerThread(port=0, shards=1, rollup_interval=50,
                          retain_buckets=2) as thread:
            _push_stream(thread.address, range(0, 1000, 25))
            with ProfileClient(thread.address) as client:
                reply = client.query("probes", pattern="service.shard0.*")
        probes = reply["probes"]
        assert probes["service.shard0.buckets"]["kind"] == "gauge"
        assert probes["service.shard0.buckets"]["value"] >= 1
        assert probes["service.shard0.evicted_samples"]["value"] > 0

    def test_retention_requires_interval(self):
        with pytest.raises(ServiceError):
            ServerThread(port=0, retain_buckets=2)


class TestRollupQueries:
    def test_top_and_export_see_all_buckets(self, rollup_server):
        _push_stream(rollup_server.address, range(0, 500, 50), pc=0x10)
        _push_stream(rollup_server.address, range(0, 300, 50), pc=0x20)
        with ProfileClient(rollup_server.address) as client:
            top = client.query("top", event="RETIRED", limit=5)
            export = client.query("export")
        assert top["top"] == [[0x10, 10], [0x20, 6]]
        assert export["database"]["version"] == 2
        assert export["database"]["total_samples"] == 16

    def test_inline_fold_matches_worker_accounting(self):
        ticks = list(range(0, 1200, 30))
        replies = []
        for workers in (True, False):
            with ServerThread(port=0, shards=1, rollup_interval=100,
                              retain_buckets=4, workers=workers) as thread:
                _push_stream(thread.address, ticks)
                with ProfileClient(thread.address) as client:
                    replies.append(client.epochs())
        assert replies[0]["total_samples"] == replies[1]["total_samples"]
        assert replies[0]["evicted_samples"] == \
            replies[1]["evicted_samples"]
        assert replies[0]["epochs"] == replies[1]["epochs"]
