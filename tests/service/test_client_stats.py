"""Client-side loss accounting: no failure path is silent.

These are unit tests against ProfileClient's internal failure handlers
with fake sockets — no server needed.  Each pins a counter that used to
be a bare ``except: pass``:

* ``close_errors`` — a socket ``close()`` that raises during disconnect
  leaks the descriptor until GC; it must be counted, never swallowed.
* ``dropped_reports`` — a replay-drop report frame that fails to send
  leaves the server's drop accounting short; the swallowed frame must
  be counted locally.
"""

from repro.service.client import ProfileClient


class FakeSocket:
    """Scriptable socket: raise on close() and/or sendall()."""

    def __init__(self, close_raises=False, sendall_raises=False):
        self.close_raises = close_raises
        self.sendall_raises = sendall_raises
        self.closed = 0
        self.sent = []

    def close(self):
        self.closed += 1
        if self.close_raises:
            raise OSError("injected close failure")

    def sendall(self, data):
        if self.sendall_raises:
            raise OSError("injected send failure")
        self.sent.append(data)


def make_client():
    # Never connects: the tests drive the failure handlers directly.
    return ProfileClient("localhost:0")


class TestCloseErrors:
    def test_failing_close_is_counted_not_raised(self):
        client = make_client()
        client._sock = FakeSocket(close_raises=True)
        client.close()  # must not raise
        assert client._sock is None
        assert client.stats.close_errors == 1

    def test_clean_close_counts_nothing(self):
        client = make_client()
        sock = FakeSocket()
        client._sock = sock
        client.close()
        assert sock.closed == 1
        assert client.stats.close_errors == 0

    def test_repeated_close_failures_accumulate(self):
        client = make_client()
        for expected in (1, 2, 3):
            client._sock = FakeSocket(close_raises=True)
            client.close()
            assert client.stats.close_errors == expected


class TestDroppedReports:
    def test_unsendable_report_is_counted(self):
        client = make_client()
        client._sock = FakeSocket(sendall_raises=True)
        client._report_replay_dropped(2)
        # The local loss record survives even though the frame didn't.
        assert client.stats.replay_dropped == 2
        assert client.stats.dropped_reports == 1

    def test_delivered_report_counts_no_drop(self):
        client = make_client()
        sock = FakeSocket()
        client._sock = sock
        client._report_replay_dropped(3)
        assert client.stats.replay_dropped == 3
        assert client.stats.dropped_reports == 0
        assert len(sock.sent) == 1
