"""Wire protocol v2: round-trip properties and adversarial frame fuzzing.

The binary encoding earns its 10x only if it is *exactly* as safe as the
JSON it replaces.  Three obligations, each tested here:

* **Round trip** (Hypothesis): any encodable batch decodes back to equal
  samples, and re-encoding the decoded batch reproduces the original
  bytes — the encoding is canonical, so delta/varint state can never
  drift between peers.  Covers pc regressions (negative deltas), 64-bit
  wrap-around, empty batches, paired/group samples, and v1 <-> v2
  cross-encoding equivalence.

* **Adversarial input**: every torn prefix of a valid frame, truncated
  varints, corrupted CRCs, unknown tags/ordinals, and oversized headers
  must produce a typed :class:`ProtocolError` — never an unhandled
  exception, never a silently wrong decode.  A live server fed garbage
  must keep serving other connections and account every refused frame.

* **Fused fold differential**: the signature-memoized fold in
  :mod:`repro.service.fold` must produce byte-identical canonical
  exports to record-by-record aggregation, for any stream.
"""

import json
import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.persistence import database_to_dict
from repro.errors import ProtocolError
from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode
from repro.profileme.registers import GroupRecord, PairedRecord, ProfileRecord
from repro.service.fold import ShardFolder
from repro.service.protocol import (FRAME_PROBE_PUSH, FRAME_PUSH,
                                    MAX_FRAME_BYTES, PROTOCOL_V2, V2_MAGIC,
                                    _sample_count, _sv_decode, _sv_encode,
                                    _uv_decode, _uv_encode,
                                    decode_probe_payload, decode_push_payload,
                                    encode_binary_frame, encode_frame,
                                    encode_probe_payload, encode_push_payload,
                                    hello_frame, plan_push_frames,
                                    record_from_wire, record_to_wire,
                                    recv_frame, send_frame, split_frames)


def canonical_json(document):
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Strategies.

_U64 = 2 ** 64 - 1

_latency = st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 20))

_records = st.builds(
    ProfileRecord,
    context=st.integers(min_value=0, max_value=7),
    # Full 64-bit range: shrinking deltas, wrap-sized deltas, regressions.
    pc=st.integers(min_value=0, max_value=_U64),
    op=st.one_of(st.none(), st.sampled_from(list(Opcode))),
    addr=st.one_of(st.none(), st.integers(min_value=0, max_value=_U64)),
    events=st.integers(min_value=0,
                       max_value=sum(int(e) for e in Event)).map(Event),
    abort_reason=st.sampled_from(list(AbortReason)),
    history=st.integers(min_value=0, max_value=_U64),
    fetch_to_map=_latency,
    map_to_data_ready=_latency,
    data_ready_to_issue=_latency,
    issue_to_retire_ready=_latency,
    retire_ready_to_retire=_latency,
    load_issue_to_completion=_latency,
    fetch_cycle=st.integers(min_value=0, max_value=_U64),
    done_cycle=st.integers(min_value=0, max_value=_U64),
)


@st.composite
def _groups(draw):
    records = draw(st.lists(st.one_of(st.none(), _records),
                            min_size=1, max_size=4))
    offsets = draw(st.lists(
        st.one_of(st.none(), st.integers(min_value=-1000, max_value=1000)),
        min_size=len(records), max_size=len(records)))
    distances = draw(st.lists(st.integers(min_value=0, max_value=500),
                              max_size=3))
    return GroupRecord(records=tuple(records), fetch_offsets=tuple(offsets),
                       distances=tuple(distances))


_samples = st.one_of(
    _records,
    st.builds(PairedRecord, first=_records,
              second=st.one_of(st.none(), _records),
              intra_pair_cycles=st.one_of(
                  st.none(), st.integers(min_value=0, max_value=10_000)),
              intra_pair_distance=st.one_of(
                  st.none(), st.integers(min_value=0, max_value=1000))),
    _groups(),
)

_batches = st.lists(_samples, max_size=12)


def _rec(**overrides):
    base = dict(context=0, pc=0x40, op=Opcode.LDA, addr=None,
                events=Event.RETIRED, abort_reason=AbortReason.NONE,
                history=0, fetch_to_map=1, map_to_data_ready=2,
                data_ready_to_issue=None, issue_to_retire_ready=None,
                retire_ready_to_retire=1, load_issue_to_completion=None,
                fetch_cycle=100, done_cycle=140)
    base.update(overrides)
    return ProfileRecord(**base)


# ----------------------------------------------------------------------
# Round-trip properties.


class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(_batches)
    def test_push_payload_round_trips_byte_exact(self, batch):
        payload = encode_push_payload(batch)
        decoded = decode_push_payload(payload)
        assert decoded == batch
        # Canonical: re-encoding what was decoded reproduces the bytes,
        # so delta state cannot drift between encoder and decoder.
        assert encode_push_payload(decoded) == payload

    @settings(max_examples=80, deadline=None)
    @given(_batches)
    def test_v1_and_v2_decode_to_equal_samples(self, batch):
        via_v1 = [record_from_wire(record_to_wire(s)) for s in batch]
        via_v2 = decode_push_payload(encode_push_payload(batch))
        assert via_v1 == via_v2 == batch

    @settings(max_examples=60, deadline=None)
    @given(st.dictionaries(
        st.text(min_size=1, max_size=40),
        st.one_of(st.none(), st.booleans(),
                  st.integers(min_value=-(2 ** 63), max_value=2 ** 63),
                  st.floats(allow_nan=False),
                  st.text(max_size=20)),
        max_size=8),
        st.integers(min_value=-1, max_value=2 ** 40))
    def test_probe_payload_round_trips(self, readings, tick):
        payload = encode_probe_payload(readings, tick)
        decoded, decoded_tick = decode_probe_payload(payload)
        assert decoded == readings
        assert decoded_tick == tick

    def test_empty_batch(self):
        payload = encode_push_payload([])
        assert decode_push_payload(payload) == []

    def test_pc_regression_and_wraparound_deltas(self):
        batch = [_rec(pc=_U64, fetch_cycle=10, done_cycle=11),
                 _rec(pc=0, fetch_cycle=5, done_cycle=6),  # regression
                 _rec(pc=_U64, fetch_cycle=_U64, done_cycle=0)]
        assert decode_push_payload(encode_push_payload(batch)) == batch

    def test_delta_chain_spans_pair_and_group_members(self):
        batch = [
            _rec(pc=0x1000),
            PairedRecord(first=_rec(pc=0x1004), second=_rec(pc=0x2000),
                         intra_pair_cycles=3, intra_pair_distance=1),
            GroupRecord(records=(_rec(pc=0x2004), None, _rec(pc=0x1000)),
                        fetch_offsets=(0, None, 7), distances=(4, 4)),
            _rec(pc=0x1004),
        ]
        payload = encode_push_payload(batch)
        assert decode_push_payload(payload) == batch
        assert _sample_count(batch) == 6

    def test_varint_zigzag_edges(self):
        for value in (0, -1, 1, -2, 2 ** 64, -(2 ** 64), 2 ** 70):
            out = bytearray()
            _sv_encode(out, value)
            decoded, offset = _sv_decode(bytes(out), 0)
            assert decoded == value and offset == len(out)
        out = bytearray()
        _uv_encode(out, 2 ** 64 - 1)
        assert _uv_decode(bytes(out), 0) == (2 ** 64 - 1, len(out))
        with pytest.raises(ProtocolError):
            _uv_encode(bytearray(), -1)

    def test_v2_is_much_smaller_than_v1(self):
        batch = [_rec(pc=0x40 + 4 * i, fetch_cycle=100 + 7 * i,
                      done_cycle=140 + 7 * i) for i in range(256)]
        v1 = len(json.dumps([record_to_wire(s) for s in batch]
                            ).encode("utf-8"))
        v2 = len(encode_push_payload(batch))
        assert v2 * 8 < v1  # the headline compaction claim, conservatively


# ----------------------------------------------------------------------
# Client-side frame splitting (the 16 MiB cap, enforced at encode now).


class TestFrameSplitting:
    def _batch(self, n):
        return [_rec(pc=0x40 + 4 * i, history=i) for i in range(n)]

    @pytest.mark.parametrize("version", [1, PROTOCOL_V2])
    def test_oversized_batch_splits_under_cap(self, version):
        cap = 4096
        batch = self._batch(600)
        plan = plan_push_frames(batch, version=version, max_bytes=cap)
        assert len(plan) > 1
        recovered = []
        for frame, top_level in plan:
            assert len(frame) - 4 <= cap  # length prefix excluded
            body = frame[4:]
            if version == PROTOCOL_V2:
                assert body[0] == V2_MAGIC
                frames, _ = split_frames(frame)
                chunk = decode_push_payload(frames[0]["payload"])
            else:
                decoded = json.loads(body.decode("utf-8"))
                chunk = [record_from_wire(item)
                         for item in decoded["records"]]
            assert len(chunk) == top_level
            recovered.extend(chunk)
        assert recovered == batch
        assert sum(count for _, count in plan) == len(batch)

    def test_single_giant_sample_raises(self):
        sample = _rec(history=2 ** 64 - 1)
        with pytest.raises(ProtocolError):
            plan_push_frames([sample], max_bytes=8)

    def test_fitting_batch_is_one_frame(self):
        plan = plan_push_frames(self._batch(10))
        assert len(plan) == 1 and plan[0][1] == 10

    def test_encode_frame_refuses_oversize_json(self):
        with pytest.raises(ProtocolError):
            encode_frame({"kind": "push", "blob": "x" * MAX_FRAME_BYTES})


# ----------------------------------------------------------------------
# Adversarial frames: every malformation is a typed error.


def _valid_frame():
    batch = [_rec(pc=0x40 + 4 * i) for i in range(5)]
    payload = encode_push_payload(batch)
    return encode_binary_frame(FRAME_PUSH, payload, _sample_count(batch))


class TestAdversarialFrames:
    def test_torn_frame_at_every_split_point(self):
        # A torn trailing frame is salvage, not an error (the spill-file
        # contract): every prefix yields zero frames and no exception,
        # in both modes, and a full frame in front still parses.
        frame = _valid_frame()
        for cut in range(len(frame)):
            for strict in (True, False):
                frames, clean = split_frames(frame[:cut], strict=strict)
                assert frames == [] and clean == 0
                frames, clean = split_frames(frame + frame[:cut],
                                             strict=strict)
                assert len(frames) == 1 and clean == len(frame)

    def test_truncated_payload_at_every_byte_is_typed(self):
        batch = [_rec(pc=0x40 + 4 * i, addr=0x1000 * i) for i in range(4)]
        payload = encode_push_payload(batch)
        for cut in range(len(payload)):
            with pytest.raises(ProtocolError):
                decode_push_payload(payload[:cut])

    def test_corrupted_byte_never_escapes_protocolerror(self):
        frame = _valid_frame()
        body = frame[4:]
        for index in range(len(body)):
            corrupt = bytearray(body)
            corrupt[index] ^= 0xFF
            corrupt = bytes(corrupt)
            if corrupt[0] != V2_MAGIC:
                continue  # now a (broken) JSON frame, covered elsewhere
            # CRC catches payload damage; header damage is caught by the
            # type/flag/count checks or the CRC of a shifted payload.
            try:
                decoded = decode_push_payload(
                    _reframe(corrupt))
            except ProtocolError:
                continue
            # Survivors must be flips the format genuinely cannot see
            # (the sync flag bit); anything decodable must still be a
            # list of samples.
            assert isinstance(decoded, list)

    def test_crc_mismatch_is_reported_as_such(self):
        frame = bytearray(_valid_frame())
        frame[-1] ^= 0x01  # last payload byte
        with pytest.raises(ProtocolError, match="CRC"):
            split_frames(bytes(frame))

    def test_unknown_binary_frame_type(self):
        frame = encode_binary_frame(FRAME_PROBE_PUSH,
                                    encode_probe_payload({}, 0), 0)
        body = bytearray(frame[4:])
        body[1] = 77  # neither push nor probe_push
        rewrapped = struct.pack(">I", len(body)) + bytes(body)
        with pytest.raises(ProtocolError, match="frame type"):
            split_frames(rewrapped)

    def test_unknown_sample_tag(self):
        out = bytearray()
        _uv_encode(out, 1)
        out.append(9)  # no such tag
        with pytest.raises(ProtocolError, match="tag"):
            decode_push_payload(bytes(out))

    def test_unknown_opcode_and_abort_ordinals(self):
        payload = bytearray(encode_push_payload([_rec(op=None)]))
        # Layout: count, tag, length, pc, fetch, done deltas (all one
        # byte here), then op byte.  Find it by decoding the prefix.
        _, offset = _uv_decode(bytes(payload), 0)
        offset += 1  # tag
        _, offset = _uv_decode(bytes(payload), offset)  # record length
        for _ in range(3):
            _, offset = _sv_decode(bytes(payload), offset)
        payload[offset] = 255  # opcode ordinal far past the table
        with pytest.raises(ProtocolError, match="opcode"):
            decode_push_payload(bytes(payload))
        payload[offset] = 0
        payload[offset + 1] = 255
        with pytest.raises(ProtocolError, match="abort"):
            decode_push_payload(bytes(payload))

    def test_oversized_length_prefix(self):
        data = struct.pack(">I", MAX_FRAME_BYTES + 1) + b"junk"
        with pytest.raises(ProtocolError, match="limit"):
            split_frames(data, strict=True)
        frames, clean = split_frames(data, strict=False)
        assert frames == [] and clean == 0

    def test_interleaved_v1_and_v2_frames_both_decode(self):
        v2 = _valid_frame()
        v1 = encode_frame({"kind": "sync"})
        frames, clean = split_frames(v2 + v1 + v2)
        assert [f["kind"] for f in frames] == ["push", "sync", "push"]
        assert clean == len(v2 + v1 + v2)

    def test_garbage_prefix_is_rejected_not_crashed(self):
        junk = struct.pack(">I", 8) + b"\x00\x01\x02\x03\x04\x05\x06\x07"
        with pytest.raises(ProtocolError):
            split_frames(junk, strict=True)

    def test_trailing_garbage_after_valid_frame_salvages_prefix(self):
        frame = _valid_frame()
        data = frame + b"\xb2\x01partial"
        frames, clean = split_frames(data, strict=False)
        assert len(frames) == 1 and clean == len(frame)


def _reframe(body):
    """Extract the v2 payload from a (possibly corrupted) frame body,
    re-verifying nothing — used to aim corruption past the CRC check."""
    from repro.service.protocol import _decode_binary_body

    return _decode_binary_body(body)["payload"]


# ----------------------------------------------------------------------
# Live-server fuzzing: garbage on the socket must never take it down.


class TestServerSurvivesGarbage:
    @pytest.fixture()
    def server(self):
        from repro.service.server import ServerThread

        with ServerThread(port=0, shards=1) as thread:
            yield thread.server

    def _raw_socket(self, server):
        sock = socket.create_connection((server.host, server.port),
                                        timeout=5.0)
        send_frame(sock, hello_frame(version=PROTOCOL_V2))
        reply = recv_frame(sock)
        assert reply.get("kind") == "ok"
        return sock

    def test_corrupt_crc_then_clean_connection(self, server):
        from repro.service.client import ProfileClient

        sock = self._raw_socket(server)
        frame = bytearray(_valid_frame())
        frame[-1] ^= 0xFF
        sock.sendall(bytes(frame))
        reply = recv_frame(sock)  # the server's typed error
        assert reply.get("kind") == "error"
        assert "CRC" in reply.get("message", "")
        sock.close()
        # The server keeps serving: a fresh connection works end to end.
        with ProfileClient("%s:%d" % (server.host, server.port)) as client:
            assert client.push([_rec()])
            info = client.drain()
        assert info["dropped_batches"] == 0
        assert server.stats.protocol_errors == 1

    def test_random_garbage_streams(self, server):
        import random

        rng = random.Random(0xC0FFEE)
        for _trial in range(20):
            sock = socket.create_connection((server.host, server.port),
                                            timeout=5.0)
            blob = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 200)))
            try:
                sock.sendall(blob)
                sock.shutdown(socket.SHUT_WR)
                sock.recv(1 << 16)
            except OSError:
                pass
            finally:
                sock.close()
        # Still alive and well-behaved afterwards.
        from repro.service.client import ProfileClient

        with ProfileClient("%s:%d" % (server.host, server.port)) as client:
            assert client.push([_rec()])
            client.drain()
            assert client.query("stats")["total_samples"] == 1

    def test_valid_crc_malformed_payload_is_accounted_fold_error(
            self, server):
        sock = self._raw_socket(server)
        # One claimed sample, tag says record, then garbage the CRC
        # blesses: decodes start, fold fails, server accounts it.
        bad = bytearray()
        _uv_encode(bad, 1)
        bad.append(0)  # record tag
        _uv_encode(bad, 3)
        bad.extend(b"\xff\xff\xff")
        frame = encode_binary_frame(FRAME_PUSH, bytes(bad), 7)
        sock.sendall(frame)
        from repro.service.client import ProfileClient

        with ProfileClient("%s:%d" % (server.host, server.port)) as client:
            client.drain()
            stats = client.query("stats")["stats"]
        assert stats["fold_errors"] == 1
        assert stats["records"] == 0
        sock.close()


# ----------------------------------------------------------------------
# Fused-fold differential: the perf path must be invisible in results.


class TestFoldDifferential:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(_batches, max_size=6), st.booleans())
    def test_fused_fold_matches_record_by_record(self, payload_batches,
                                                 interleave_flush):
        from repro.analysis.database import ProfileDatabase

        folder = ShardFolder()
        reference = ProfileDatabase()
        total = 0
        for batch in payload_batches:
            total += folder.fold_payload(encode_push_payload(batch))
            if interleave_flush:
                folder.flush()
            for sample in batch:
                reference.add(sample)
        assert total == sum(_sample_count(b) for b in payload_batches)
        fused = database_to_dict(folder.snapshot_database())
        assert canonical_json(fused) == canonical_json(
            database_to_dict(reference))

    def test_corrupt_payload_leaves_folder_untouched(self):
        folder = ShardFolder()
        good = [_rec(pc=0x40)]
        folder.fold_payload(encode_push_payload(good))
        before = canonical_json(
            database_to_dict(folder.snapshot_database()))
        bad = bytearray(encode_push_payload(
            [_rec(pc=0x44), _rec(pc=0x48, op=None)]))
        truncated = bytes(bad[:len(bad) - 2])
        with pytest.raises(ProtocolError):
            folder.fold_payload(truncated)
        after = canonical_json(
            database_to_dict(folder.snapshot_database()))
        assert after == before

    def test_keep_addresses_disables_fast_path_but_not_results(self):
        batch = [_rec(pc=0x40, addr=0x1000 + i) for i in range(5)]
        folder = ShardFolder(keep_addresses=3)
        folder.fold_payload(encode_push_payload(batch))
        database = folder.snapshot_database()
        assert database.total_samples == 5
        assert len(database.per_pc[0x40].addresses) == 3
