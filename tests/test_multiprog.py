"""Tests for multiprogrammed simulation with a shared L2."""

import pytest

from repro.cpu.ooo.core import OutOfOrderCore
from repro.errors import ConfigError
from repro.isa.interpreter import Interpreter
from repro.multiprog import MultiProgramSession
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import classic_kernel, suite_program

from tests.conftest import counting_loop


def two_programs():
    return [counting_loop(iterations=800, name="ctx0"),
            counting_loop(iterations=500, name="ctx1")]


class TestScheduling:
    def test_all_contexts_complete(self):
        session = MultiProgramSession(two_programs(), quantum=100)
        session.run()
        assert all(ctx.finished for ctx in session.contexts)

    def test_architectural_results_unaffected_by_sharing(self):
        programs = two_programs()
        session = MultiProgramSession(programs, quantum=50)
        session.run()
        for ctx in session.contexts:
            ref = Interpreter(ctx.program)
            ref.run_to_halt()
            assert (ctx.core.architectural_registers()
                    == ref.state.regs.snapshot())
            assert ctx.core.retired == ref.retired

    def test_resumed_core_matches_uninterrupted_run(self):
        """Quantum slicing must not change a context's own execution."""
        program = counting_loop(iterations=600)
        alone = OutOfOrderCore(program)
        alone.run()
        session = MultiProgramSession([program], quantum=37)
        session.run()
        sliced = session.contexts[0].core
        assert sliced.retired == alone.retired
        assert sliced.architectural_registers() == \
            alone.architectural_registers()

    def test_validation(self):
        with pytest.raises(ConfigError):
            MultiProgramSession([])
        with pytest.raises(ConfigError):
            MultiProgramSession(two_programs(), quantum=0)


class TestSharedCache:
    def test_l2_is_shared(self):
        session = MultiProgramSession(two_programs(), quantum=100)
        first = session.contexts[0].core.hierarchy
        second = session.contexts[1].core.hierarchy
        assert first.l2 is second.l2
        assert first.l1d is not second.l1d

    def test_interference_increases_misses(self):
        """Two cache-hungry contexts sharing a small L2 evict each other."""
        from repro.cpu.config import MachineConfig
        from repro.mem.cache import CacheConfig
        from repro.mem.hierarchy import HierarchyConfig

        def hungry(seed):
            program, _ = classic_kernel("pointer_chase", nodes=1024,
                                        hops=3000, seed=seed)
            return program

        memory = HierarchyConfig(
            l1d=CacheConfig(name="l1d", size_bytes=2048, line_bytes=64,
                            associativity=2),
            l2=CacheConfig(name="l2", size_bytes=8192, line_bytes=64,
                           associativity=4))
        config = MachineConfig.alpha21264_like(memory=memory)

        alone = MultiProgramSession([hungry(1)], quantum=100, config=config)
        alone.run()
        alone_l2_misses = alone.shared_l2.misses

        shared = MultiProgramSession([hungry(1), hungry(2)], quantum=100,
                                     config=config)
        shared.run()
        # Normalize: two programs do twice the work; interference shows
        # as more than 2x the solo L2 misses.
        assert shared.shared_l2.misses > 2.2 * alone_l2_misses


class TestContextAttribution:
    @pytest.fixture(scope="class")
    def profiled_session(self):
        programs = [suite_program("compress", scale=1),
                    suite_program("li", scale=1)]
        session = MultiProgramSession(
            programs, quantum=150,
            profile=ProfileMeConfig(mean_interval=60, seed=5))
        session.run()
        return session

    def test_every_record_stamped_with_its_context(self, profiled_session):
        grouped = profiled_session.records_by_context()
        assert set(grouped) == {0, 1}
        for ctx in profiled_session.contexts:
            for record in ctx.driver.all_single_records():
                assert record.context == ctx.context

    def test_sample_counts_track_work(self, profiled_session):
        counts = profiled_session.context_sample_counts()
        assert counts[0] > 50
        assert counts[1] > 50

    def test_merged_database_keeps_contexts_apart(self, profiled_session):
        merged = profiled_session.merged_database()
        per_ctx = profiled_session.context_sample_counts()
        assert merged.total_samples == sum(per_ctx.values())
        contexts_seen = {key >> 32 for key in merged.per_pc}
        assert contexts_seen == {0, 1}

    def test_merged_requires_profiling(self):
        session = MultiProgramSession(two_programs(), quantum=100)
        session.run()
        with pytest.raises(ConfigError):
            session.merged_database()
