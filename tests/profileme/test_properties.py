"""Property-based tests over the ProfileMe configuration space.

Hypothesis drives the sampling hardware through random configurations on
a fixed workload and asserts the accounting invariants that must hold for
*any* configuration — the kind of bugs (lost groups, double delivery,
leaked tags) that slip through example-based tests.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness import run_profiled
from repro.profileme.fetch_counter import CountMode
from repro.profileme.registers import GroupRecord, PairedRecord
from repro.profileme.unit import ProfileMeConfig

from tests.conftest import counting_loop

# One shared, moderately speculative workload for every example.
_PROGRAM = counting_loop(iterations=400)

configs = st.builds(
    ProfileMeConfig,
    mean_interval=st.integers(min_value=5, max_value=200),
    jitter=st.sampled_from([0.0, 0.3, 0.5, 0.9]),
    distribution=st.sampled_from(["uniform", "geometric"]),
    mode=st.sampled_from(list(CountMode)),
    group_size=st.integers(min_value=0, max_value=4),
    pair_window=st.integers(min_value=1, max_value=64),
    register_sets=st.integers(min_value=1, max_value=4),
    path_bits=st.integers(min_value=1, max_value=30),
    buffer_depth=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=configs)
def test_accounting_invariants(config):
    run = run_profiled(_PROGRAM, profile=config)
    stats = run.unit.stats
    size = config.effective_group_size

    # Selection accounting: every group member chosen is tagged,
    # off-path, or empty; every major expiration either started a group
    # or was dropped.
    assert (stats.tagged + stats.offpath_selections
            + stats.empty_selections) == stats.member_selections
    groups_started = stats.selections - stats.dropped_busy
    assert groups_started <= stats.member_selections
    assert stats.member_selections <= groups_started * size

    # Delivery accounting: the driver saw exactly what the unit says it
    # delivered, and nothing is still buffered after finalize().
    assert run.driver.delivered == stats.records_delivered
    assert run.unit.buffer == []

    # No leaked tags or pending captures.
    assert run.unit._pending == {}
    assert run.unit._awaiting_fill == []

    # Concurrency never exceeds the register-set budget.
    assert stats.max_concurrent_groups <= config.register_sets

    # Record shapes match the configured group size.
    for record in run.driver.records:
        assert size == 1 or isinstance(record, (PairedRecord, GroupRecord))
    for pair in run.driver.pairs:
        assert size == 2
        if pair.intra_pair_distance is not None:
            assert 1 <= pair.intra_pair_distance <= config.pair_window
    for group in run.driver.groups:
        assert size >= 3
        assert len(group.records) == size


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=configs)
def test_records_are_well_formed(config):
    run = run_profiled(_PROGRAM, profile=config)
    for record in run.driver.all_single_records():
        if record.op is not None:  # off-path selections have no opcode
            assert _PROGRAM.contains_pc(record.pc)
        assert record.done_cycle >= record.fetch_cycle
        assert record.history < (1 << config.path_bits)
        assert record.retired != bool(record.abort_reason.value != "none")
        for name in ("fetch_to_map", "map_to_data_ready",
                     "data_ready_to_issue", "issue_to_retire_ready",
                     "retire_ready_to_retire"):
            value = getattr(record, name)
            assert value is None or value >= 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=1000),
       interval=st.integers(min_value=5, max_value=50))
def test_sampling_is_repeatable(seed, interval):
    """Identical config + workload => identical sample stream."""
    config = ProfileMeConfig(mean_interval=interval, seed=seed)
    first = run_profiled(_PROGRAM, profile=config)
    second = run_profiled(_PROGRAM, profile=config)
    assert [r.pc for r in first.records] == [r.pc for r in second.records]
    assert first.cycles == second.cycles
