"""Tests for N-way sampling and replicated register sets."""

import pytest

from repro.errors import ConfigError
from repro.harness import run_profiled
from repro.profileme.registers import GroupRecord, PairedRecord
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program

from tests.conftest import counting_loop


class TestConfig:
    def test_effective_group_size(self):
        assert ProfileMeConfig().effective_group_size == 1
        assert ProfileMeConfig(paired=True).effective_group_size == 2
        assert ProfileMeConfig(group_size=4).effective_group_size == 4

    def test_paired_conflicts_with_other_sizes(self):
        with pytest.raises(ConfigError):
            ProfileMeConfig(paired=True, group_size=3)
        # group_size=2 is just an explicit spelling of paired.
        assert ProfileMeConfig(paired=True,
                               group_size=2).effective_group_size == 2

    def test_tag_bits(self):
        # Section 4.1.2: ceil(log(N+1)) bits.
        assert ProfileMeConfig().tag_bits == 1
        assert ProfileMeConfig(paired=True).tag_bits == 2
        assert ProfileMeConfig(group_size=4).tag_bits == 3
        assert ProfileMeConfig(register_sets=4).tag_bits == 3

    def test_validation(self):
        with pytest.raises(ConfigError):
            ProfileMeConfig(group_size=9)
        with pytest.raises(ConfigError):
            ProfileMeConfig(register_sets=0)


class TestNWaySampling:
    @pytest.fixture(scope="class")
    def nway_run(self):
        program = suite_program("compress", scale=1)
        return run_profiled(program, profile=ProfileMeConfig(
            mean_interval=80, group_size=4, pair_window=24, seed=5))

    def test_groups_delivered(self, nway_run):
        assert nway_run.driver.groups
        assert not nway_run.driver.pairs  # size-4 groups, not pairs
        for group in nway_run.driver.groups:
            assert len(group.records) == 4
            assert len(group.fetch_offsets) == 4

    def test_offsets_monotonic(self, nway_run):
        for group in nway_run.driver.groups:
            offsets = [o for o in group.fetch_offsets if o is not None]
            assert offsets == sorted(offsets)
            assert offsets and offsets[0] == 0

    def test_distances_within_window(self, nway_run):
        for group in nway_run.driver.groups:
            assert len(group.distances) <= 3
            assert all(1 <= d <= 24 for d in group.distances)

    def test_member_pairs_decomposition(self, nway_run):
        complete = [g for g in nway_run.driver.groups if g.complete]
        assert complete
        for group in complete:
            pairs = group.member_pairs()
            assert len(pairs) == 6  # C(4, 2)
            for earlier, later, offset in pairs:
                assert offset >= 0

    def test_pair_analyzer_fed_from_groups(self, nway_run):
        analyzer = nway_run.pair_analyzer
        assert analyzer is not None
        assert analyzer.pairs_usable > 0
        # Each complete 4-way group contributes 6 pairs.
        complete = sum(1 for g in nway_run.driver.groups if g.complete)
        assert analyzer.pairs_usable >= 6 * complete * 0.5

    def test_database_counts_all_members(self, nway_run):
        members = sum(
            sum(1 for r in g.records if r is not None)
            for g in nway_run.driver.groups)
        assert nway_run.database.total_samples == members


class TestRegisterSets:
    def test_replication_reduces_drops(self):
        program = counting_loop(iterations=4000)
        drops = {}
        for sets in (1, 4):
            run = run_profiled(program, profile=ProfileMeConfig(
                mean_interval=10, register_sets=sets, seed=9))
            drops[sets] = run.unit.stats.dropped_busy
            if sets == 4:
                assert run.unit.stats.max_concurrent_groups > 1
        assert drops[1] > 0
        assert drops[4] < drops[1] * 0.25

    def test_replication_raises_delivered_rate(self):
        program = counting_loop(iterations=4000)
        delivered = {}
        for sets in (1, 4):
            run = run_profiled(program, profile=ProfileMeConfig(
                mean_interval=10, register_sets=sets, seed=9))
            delivered[sets] = run.driver.delivered
        assert delivered[4] > delivered[1]

    def test_samples_remain_valid_with_replication(self):
        program = suite_program("go", scale=1)
        run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=15, register_sets=8, seed=3))
        assert run.driver.delivered > 300
        for record in run.records:
            assert program.contains_pc(record.pc)
            assert record.done_cycle >= record.fetch_cycle

    def test_paired_with_replication(self):
        program = suite_program("compress", scale=1)
        run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=40, paired=True, pair_window=16,
            register_sets=4, seed=7))
        complete = [p for p in run.pairs if p.complete]
        assert complete
        for pair in complete:
            assert pair.intra_pair_cycles >= 0
