"""Tests for Profile Register capture."""

from repro.cpu.dynops import DynInst
from repro.events import AbortReason, Event
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.profileme.registers import LATENCY_FIELDS, capture_record


def _executed_load():
    inst = Instruction(op=Opcode.LD, dest=1, src1=2, imm=0)
    d = DynInst(seq=3, pc=0x40, inst=inst, fetch_cycle=100)
    d.map_cycle = 102
    d.data_ready_cycle = 104
    d.issue_cycle = 105
    d.exec_complete_cycle = 106
    d.retire_cycle = 110
    d.load_complete_cycle = 120
    d.eff_addr = 0x2000
    d.events = Event.RETIRED | Event.DCACHE_MISS
    d.history_at_fetch = 0b101101
    return d


def test_capture_copies_observable_fields():
    record = capture_record(_executed_load(), path_bits=16, done_cycle=110)
    assert record.pc == 0x40
    assert record.op is Opcode.LD
    assert record.addr == 0x2000
    assert record.retired
    assert record.events & Event.DCACHE_MISS
    assert record.fetch_to_map == 2
    assert record.map_to_data_ready == 2
    assert record.data_ready_to_issue == 1
    assert record.issue_to_retire_ready == 1
    assert record.retire_ready_to_retire == 4
    assert record.load_issue_to_completion == 15
    assert record.fetch_cycle == 100
    assert record.done_cycle == 110


def test_path_register_masked_to_width():
    record = capture_record(_executed_load(), path_bits=4, done_cycle=0)
    assert record.history == 0b1101


def test_derived_latencies():
    record = capture_record(_executed_load(), path_bits=8, done_cycle=0)
    assert record.fetch_to_issue == 5
    assert record.fetch_to_retire_ready == 6


def test_aborted_instruction_has_partial_latencies():
    inst = Instruction(op=Opcode.ADD, dest=1, src1=2, src2=3)
    d = DynInst(seq=1, pc=8, inst=inst, fetch_cycle=50)
    d.map_cycle = 52
    d.events = Event.ABORTED | Event.BAD_PATH
    d.abort_reason = AbortReason.MISPREDICT_SQUASH
    record = capture_record(d, path_bits=8, done_cycle=55)
    assert not record.retired
    assert record.abort_reason is AbortReason.MISPREDICT_SQUASH
    assert record.fetch_to_map == 2
    assert record.issue_to_retire_ready is None
    assert record.fetch_to_issue is None
    assert record.fetch_to_retire_ready is None


def test_jump_target_in_address_register():
    inst = Instruction(op=Opcode.RET, src1=26)
    d = DynInst(seq=1, pc=8, inst=inst, fetch_cycle=0)
    d.actual_target = 0x88
    record = capture_record(d, path_bits=8, done_cycle=1)
    assert record.addr == 0x88


def test_latency_fields_complete():
    record = capture_record(_executed_load(), path_bits=8, done_cycle=0)
    for name in LATENCY_FIELDS:
        assert hasattr(record, name)
