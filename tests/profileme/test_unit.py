"""Tests for the ProfileMe unit: selection, capture, delivery."""

import pytest

from repro.errors import ConfigError
from repro.events import AbortReason, Event
from repro.harness import run_profiled
from repro.profileme.fetch_counter import CountMode
from repro.profileme.registers import PairedRecord, ProfileRecord
from repro.profileme.unit import ProfileMeConfig, ProfileMeUnit
from repro.workloads import suite_program

from tests.conftest import counting_loop


@pytest.fixture(scope="module")
def gcc_run():
    """One moderately branchy profiled run shared by read-only tests."""
    program = suite_program("gcc", scale=1)
    return run_profiled(program,
                        profile=ProfileMeConfig(mean_interval=40, seed=11))


class TestSingleSampling:
    def test_samples_delivered(self, gcc_run):
        assert gcc_run.driver.delivered > 100
        assert gcc_run.database.total_samples == gcc_run.driver.delivered

    def test_sample_rate_tracks_configured_interval(self, gcc_run):
        # The counter only runs between samples (it is re-armed when the
        # previous sample completes), so the effective interval is S plus
        # the instructions fetched while the sample was in flight; the
        # delivered rate must be below fetched/S but the same order.
        fetched = gcc_run.core.fetched
        ceiling = fetched / 40
        delivered = gcc_run.driver.delivered
        assert delivered <= 1.1 * ceiling
        assert delivered >= 0.25 * ceiling

    def test_records_are_valid(self, gcc_run):
        program = gcc_run.program
        for record in gcc_run.records:
            assert program.contains_pc(record.pc)
            assert record.retired != bool(record.events & Event.ABORTED)
            assert record.done_cycle >= record.fetch_cycle

    def test_samples_include_aborted_instructions(self, gcc_run):
        aborted = [r for r in gcc_run.records if not r.retired]
        assert aborted, "speculative workload must yield aborted samples"
        reasons = {r.abort_reason for r in aborted}
        assert AbortReason.MISPREDICT_SQUASH in reasons

    def test_retired_samples_have_full_latency_chain(self, gcc_run):
        retired = [r for r in gcc_run.records if r.retired]
        assert retired
        for record in retired:
            assert record.fetch_to_map is not None
            assert record.issue_to_retire_ready is not None
            assert record.retire_ready_to_retire is not None

    def test_load_samples_have_address_and_completion(self, gcc_run):
        loads = [r for r in gcc_run.records
                 if r.retired and r.op is not None and r.op.value == "ld"]
        assert loads
        for record in loads:
            assert record.addr is not None
            assert record.load_issue_to_completion is not None


class TestSamplingIsUnbiased:
    def test_pc_coverage_matches_execution_profile(self):
        """Sampled PC frequencies track true fetch frequencies."""
        program = counting_loop(iterations=3000)
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=11, seed=5),
                           collect_truth=True)
        truth = run.truth
        db = run.database
        for pc, profile in db.per_pc.items():
            true_fetches = truth.per_pc[pc].fetched
            estimate = profile.samples * 11
            if profile.samples >= 30:
                assert abs(estimate / true_fetches - 1.0) < 0.5


class TestPairedSampling:
    def test_pairs_have_intra_latency(self):
        program = suite_program("compress", scale=1)
        run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=60, paired=True, pair_window=32, seed=2))
        complete = [p for p in run.pairs if p.complete]
        assert complete
        for pair in complete:
            assert pair.intra_pair_cycles is not None
            assert pair.intra_pair_cycles >= 0
            assert 1 <= pair.intra_pair_distance <= 32
            assert pair.second.fetch_cycle >= pair.first.fetch_cycle

    def test_minor_interval_spans_window(self):
        program = suite_program("compress", scale=1)
        run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=50, paired=True, pair_window=8, seed=4))
        distances = {p.intra_pair_distance for p in run.pairs
                     if p.intra_pair_distance is not None}
        assert len(distances) >= 6  # draws cover most of [1, 8]


class TestBuffering:
    def test_buffer_depth_reduces_interrupts(self):
        program = counting_loop(iterations=2000)
        runs = {}
        for depth in (1, 8):
            run = run_profiled(program, profile=ProfileMeConfig(
                mean_interval=20, buffer_depth=depth, seed=3))
            runs[depth] = run.unit.stats
        assert runs[1].interrupts > runs[8].interrupts * 4
        assert runs[1].records_delivered == pytest.approx(
            runs[8].records_delivered, rel=0.2)

    def test_interrupt_cost_slows_machine(self):
        program = counting_loop(iterations=2000)
        cheap = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=20, interrupt_cost_cycles=0, seed=3))
        costly = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=20, interrupt_cost_cycles=100, seed=3))
        assert costly.cycles > cheap.cycles
        assert costly.unit.stats.overhead_cycles > 0

    def test_finalize_flushes_partial_buffer(self):
        program = counting_loop(iterations=500)
        run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=30, buffer_depth=64, seed=3))
        # Far fewer samples than the buffer: without finalize they'd be lost.
        assert run.driver.delivered > 0
        assert run.unit.stats.records_delivered == run.driver.delivered


class TestFetchModes:
    def test_opportunity_mode_wastes_selections(self):
        program = suite_program("gcc", scale=1)
        inst_run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=50, mode=CountMode.INSTRUCTIONS, seed=8))
        opp_run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=50, mode=CountMode.FETCH_OPPORTUNITIES, seed=8))
        assert inst_run.unit.stats.useful_fraction == 1.0
        assert opp_run.unit.stats.useful_fraction < 1.0
        wasted = (opp_run.unit.stats.empty_selections
                  + opp_run.unit.stats.offpath_selections)
        assert wasted > 0

    def test_offpath_selections_produce_discard_records(self):
        program = suite_program("go", scale=1)
        run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=50, mode=CountMode.FETCH_OPPORTUNITIES, seed=8))
        discards = [r for r in run.records
                    if r.abort_reason is AbortReason.FETCH_DISCARD]
        if run.unit.stats.offpath_selections:
            assert discards
            for record in discards:
                assert record.op is None
                assert not record.retired


class TestConfigValidation:
    def test_bad_interval(self):
        with pytest.raises(ConfigError):
            ProfileMeConfig(mean_interval=0)

    def test_bad_window(self):
        with pytest.raises(ConfigError):
            ProfileMeConfig(pair_window=0)

    def test_bad_path_bits(self):
        with pytest.raises(ConfigError):
            ProfileMeConfig(path_bits=40)

    def test_bad_buffer(self):
        with pytest.raises(ConfigError):
            ProfileMeConfig(buffer_depth=0)
