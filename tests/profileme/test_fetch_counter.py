"""Tests for the Fetched Instruction Counter."""

import pytest

from repro.cpu.probes import empty_slot, inst_slot, offpath_slot
from repro.errors import ConfigError
from repro.profileme.fetch_counter import (CountMode,
                                           FetchedInstructionCounter)


class _FakeDyn:
    def __init__(self, pc):
        self.pc = pc


def _slots(pattern):
    """Build slots from a pattern string: i=inst, o=offpath, e=empty."""
    slots = []
    for index, ch in enumerate(pattern):
        if ch == "i":
            slots.append(inst_slot(_FakeDyn(index * 4)))
        elif ch == "o":
            slots.append(offpath_slot(index * 4))
        else:
            slots.append(empty_slot())
    return slots


class TestInstructionMode:
    def test_counts_only_instructions(self):
        counter = FetchedInstructionCounter(CountMode.INSTRUCTIONS)
        counter.write(3)
        assert counter.consume(_slots("ioe")) is None  # 1 counted
        assert counter.consume(_slots("eoi")) is None  # 1 counted
        assert counter.consume(_slots("iiii")) == 0  # 3rd instruction

    def test_never_selects_offpath_or_empty(self):
        counter = FetchedInstructionCounter(CountMode.INSTRUCTIONS)
        counter.write(1)
        assert counter.consume(_slots("ooee")) is None
        index = counter.consume(_slots("oi"))
        assert index == 1

    def test_disarmed_after_fire(self):
        counter = FetchedInstructionCounter(CountMode.INSTRUCTIONS)
        counter.write(1)
        assert counter.consume(_slots("i")) == 0
        assert not counter.armed
        assert counter.consume(_slots("iiii")) is None


class TestOpportunityMode:
    def test_counts_every_slot(self):
        counter = FetchedInstructionCounter(CountMode.FETCH_OPPORTUNITIES)
        counter.write(6)
        assert counter.consume(_slots("iiii")) is None  # 4 counted
        assert counter.consume(_slots("eoii")) == 1  # lands on offpath

    def test_can_select_empty_slot(self):
        counter = FetchedInstructionCounter(CountMode.FETCH_OPPORTUNITIES)
        counter.write(2)
        assert counter.consume(_slots("ie")) == 1


class TestValidation:
    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigError):
            FetchedInstructionCounter("instructions")

    def test_rejects_nonpositive_value(self):
        counter = FetchedInstructionCounter()
        with pytest.raises(ConfigError):
            counter.write(0)

    def test_disarm(self):
        counter = FetchedInstructionCounter()
        counter.write(5)
        counter.disarm()
        assert counter.consume(_slots("iiii")) is None
