"""Tests for the profiling-software driver."""

from repro.profileme.driver import ProfileMeDriver
from repro.profileme.registers import GroupRecord, PairedRecord

from tests.analysis.test_database import make_record


class _CountingSink:
    def __init__(self):
        self.seen = []

    def add(self, sample):
        self.seen.append(sample)


def test_batches_and_records_accounted():
    driver = ProfileMeDriver()
    driver.handle_interrupt([make_record(), make_record(pc=0x20)])
    driver.handle_interrupt([make_record(pc=0x30)])
    assert driver.batches == 2
    assert driver.delivered == 3
    assert len(driver.records) == 3


def test_sinks_receive_every_sample():
    driver = ProfileMeDriver()
    sink = driver.add_sink(_CountingSink())
    pair = PairedRecord(first=make_record(), second=make_record(pc=0x20),
                        intra_pair_cycles=2, intra_pair_distance=3)
    driver.handle_interrupt([make_record(pc=0x40), pair])
    assert len(sink.seen) == 2
    assert sink.seen[1] is pair


def test_keep_records_off_still_feeds_sinks():
    driver = ProfileMeDriver(keep_records=False)
    sink = driver.add_sink(_CountingSink())
    driver.handle_interrupt([make_record()])
    assert driver.records == []
    assert len(sink.seen) == 1
    assert driver.delivered == 1


def test_all_single_records_unpacks_everything():
    driver = ProfileMeDriver()
    pair = PairedRecord(first=make_record(pc=0x10),
                        second=make_record(pc=0x20),
                        intra_pair_cycles=1, intra_pair_distance=1)
    partial = PairedRecord(first=make_record(pc=0x30), second=None,
                           intra_pair_cycles=None, intra_pair_distance=None)
    group = GroupRecord(
        records=(make_record(pc=0x40), None, make_record(pc=0x50)),
        fetch_offsets=(0, None, 5), distances=(2, 3))
    driver.handle_interrupt([make_record(pc=0x60), pair, partial, group])
    pcs = sorted(r.pc for r in driver.all_single_records())
    assert pcs == [0x10, 0x20, 0x30, 0x40, 0x50, 0x60]


def test_group_record_routing():
    driver = ProfileMeDriver()
    group = GroupRecord(records=(make_record(),), fetch_offsets=(0,),
                        distances=())
    driver.handle_interrupt([group])
    assert driver.groups == [group]
    assert driver.pairs == []
    assert driver.records == []


def test_max_records_caps_retention_not_delivery():
    driver = ProfileMeDriver(max_records=2)
    sink = driver.add_sink(_CountingSink())
    driver.handle_interrupt([make_record(pc=0x10 + 4 * i) for i in range(5)])
    assert len(driver.records) == 2  # retention stops at the cap
    assert driver.dropped == 3  # the overflow is accounted
    assert driver.delivered == 5  # delivery accounting is unaffected
    assert len(sink.seen) == 5  # sinks still see every sample


def test_max_records_counts_across_all_retention_lists():
    driver = ProfileMeDriver(max_records=2)
    pair = PairedRecord(first=make_record(), second=make_record(pc=0x20),
                        intra_pair_cycles=1, intra_pair_distance=1)
    group = GroupRecord(records=(make_record(pc=0x30),), fetch_offsets=(0,),
                        distances=())
    driver.handle_interrupt([make_record(), pair, group, make_record(pc=0x40)])
    assert driver.retained == 2
    assert len(driver.records) == 1 and len(driver.pairs) == 1
    assert driver.groups == []
    assert driver.dropped == 2


def test_unbounded_by_default():
    driver = ProfileMeDriver()
    driver.handle_interrupt([make_record() for _ in range(100)])
    assert len(driver.records) == 100
    assert driver.dropped == 0
