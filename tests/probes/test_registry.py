"""Tests for the hierarchical probe registry and typed probe properties.

Covers the registry core (naming, lifecycle, enumeration, caching,
subscriptions) plus the one shared empty-denominator convention:
``repro.probes.props.ratio`` returns 0.0 on a zero denominator, and
every migrated stat surface (cache/TLB miss rates, predictor accuracy,
ProfileMe useful fraction) defines its zero-access behavior through it.
"""

import pytest

from repro.branch.predictors import (BranchPredictor,
                                     GshareDirectionPredictor,
                                     PredictorConfig,
                                     StaticDirectionPredictor)
from repro.errors import ConfigError
from repro.mem.hierarchy import MemoryHierarchy
from repro.probes import (KIND_COUNTER, KIND_FRACTION, KIND_GAUGE,
                          ProbeProperty, ProbeRegistry, ratio,
                          validate_name)
from repro.profileme.unit import ProfileMeStats
from repro.workloads import stall_kernel


# ----------------------------------------------------------------------
# The shared division-by-zero convention (satellite: defined once,
# tested once, used by every fraction-valued stat surface).


class TestRatioConvention:
    def test_zero_denominator_is_zero(self):
        assert ratio(0, 0) == 0.0
        assert ratio(7, 0) == 0.0

    def test_plain_division_otherwise(self):
        assert ratio(1, 4) == 0.25
        assert ratio(3, 3) == 1.0

    def test_fresh_caches_and_tlbs_read_zero(self):
        hierarchy = MemoryHierarchy()
        for unit in (hierarchy.l1i, hierarchy.l1d, hierarchy.l2,
                     hierarchy.itlb, hierarchy.dtlb):
            assert unit.miss_rate == 0.0

    def test_fresh_predictors_read_zero(self):
        gshare = GshareDirectionPredictor(PredictorConfig())
        assert gshare.accuracy == 0.0
        static = StaticDirectionPredictor(stall_kernel("dcache_miss"))
        assert static.accuracy == 0.0
        assert BranchPredictor().mispredict_rate == 0.0

    def test_fresh_profileme_stats_read_zero(self):
        assert ProfileMeStats().useful_fraction == 0.0


# ----------------------------------------------------------------------
# Typed probe properties.


class TestProbeProperty:
    def test_metadata_dict(self):
        prop = ProbeProperty("cpu0.core.cycles", lambda: 7,
                             kind=KIND_COUNTER, unit="cycles",
                             description="elapsed cycles")
        assert prop.properties() == {
            "name": "cpu0.core.cycles", "kind": "counter",
            "unit": "cycles", "description": "elapsed cycles"}
        assert prop.read() == 7

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            ProbeProperty("x", lambda: 0, kind="histogram")

    def test_non_callable_read_rejected(self):
        with pytest.raises(ConfigError):
            ProbeProperty("x", 42)


class TestNames:
    def test_valid_dotted_names(self):
        for name in ("a", "cpu0.core.cycles", "mem.l2.miss_rate",
                     "service.shard0.lag", "_x._y"):
            validate_name(name)

    def test_malformed_names_rejected(self):
        for name in ("", ".", "a.", ".a", "a..b", "0cpu.x", "a.b-c",
                     "a b", "a.*"):
            with pytest.raises(ConfigError):
                validate_name(name)


# ----------------------------------------------------------------------
# Registry lifecycle, enumeration, caching, subscriptions.


def build_registry():
    registry = ProbeRegistry()
    state = {"cycles": 0, "misses": 0}
    registry.register("cpu0.core.cycles", lambda: state["cycles"],
                      kind=KIND_COUNTER, unit="cycles")
    registry.register("cpu0.core.ipc", lambda: 1.5, kind=KIND_GAUGE)
    registry.register("mem.l2.misses", lambda: state["misses"],
                      kind=KIND_COUNTER)
    registry.register("mem.l2.miss_rate",
                      lambda: ratio(state["misses"], 100),
                      kind=KIND_FRACTION)
    return registry, state


class TestRegistry:
    def test_register_and_read(self):
        registry, state = build_registry()
        state["cycles"] = 42
        assert registry.read("cpu0.core.cycles") == 42

    def test_duplicate_name_rejected(self):
        registry, _ = build_registry()
        with pytest.raises(ConfigError):
            registry.register("cpu0.core.cycles", lambda: 0)

    def test_malformed_name_rejected(self):
        registry, _ = build_registry()
        with pytest.raises(ConfigError):
            registry.register("cpu0..cycles", lambda: 0)

    def test_unregister(self):
        registry, _ = build_registry()
        registry.unregister("cpu0.core.ipc")
        assert "cpu0.core.ipc" not in registry.names()
        with pytest.raises(ConfigError):
            registry.unregister("cpu0.core.ipc")

    def test_unregister_subtree(self):
        registry, _ = build_registry()
        removed = registry.unregister_subtree("cpu0")
        assert removed == 2
        assert registry.names() == ["mem.l2.miss_rate", "mem.l2.misses"]

    def test_wildcard_enumeration(self):
        registry, _ = build_registry()
        assert registry.names("mem.*") == ["mem.l2.miss_rate",
                                           "mem.l2.misses"]
        assert registry.names("*.miss_rate") == ["mem.l2.miss_rate"]
        assert len(registry.names()) == 4

    def test_subtree(self):
        registry, _ = build_registry()
        assert registry.subtree("cpu0.core") == ["cpu0.core.cycles",
                                                 "cpu0.core.ipc"]
        assert registry.subtree("cpu0.cor") == []

    def test_reads_are_cached_until_invalidated(self):
        registry, state = build_registry()
        assert registry.read("cpu0.core.cycles") == 0
        state["cycles"] = 99
        # Cached: the provider is not re-consulted.
        assert registry.read("cpu0.core.cycles") == 0
        assert registry.read("cpu0.core.cycles", refresh=True) == 99
        state["cycles"] = 123
        registry.invalidate("cpu0.*")
        assert registry.read("cpu0.core.cycles") == 123

    def test_snapshot_shape(self):
        registry, state = build_registry()
        state["misses"] = 25
        snap = registry.snapshot("mem.*")
        assert snap["mem.l2.misses"]["value"] == 25
        assert snap["mem.l2.misses"]["kind"] == "counter"
        assert snap["mem.l2.miss_rate"]["value"] == 0.25
        assert set(snap["mem.l2.miss_rate"]) == {"value", "kind", "unit",
                                                 "description"}


class TestSubscription:
    def test_counter_deltas_vs_baseline(self):
        registry, state = build_registry()
        state["cycles"] = 10
        sub = registry.subscribe("cpu0.*")
        state["cycles"] = 35
        registry.invalidate()
        deltas = sub.deltas()
        # Counters report progress since subscription...
        assert deltas["cpu0.core.cycles"] == 25
        # ...gauges report current values.
        assert deltas["cpu0.core.ipc"] == 1.5

    def test_cancel(self):
        registry, _ = build_registry()
        sub = registry.subscribe("*")
        assert registry.subscriber_count == 1
        sub.cancel()
        assert registry.subscriber_count == 0
