"""Cross-core probe-namespace parity and observation-neutrality guards.

Two structural invariants of the probe registry:

* **Parity** — every core model (ooo, inorder, smt) exposes the *same*
  ``cpu<ctx>.core.*`` subtree shape, so tooling written against one
  model's namespace works against all of them; model-specific detail
  lives strictly under the model's own subtree (``cpu0.ooo.*``,
  ``cpu0.inorder.*``).

* **Side-effect freedom** — registry reads observe, never perturb.  A
  golden-corpus case simulated with an attached ``ProbeStreamer``
  (sampling every probe repeatedly mid-run) must produce byte-identical
  outputs — cycles, counts, architectural registers, profile-database
  hash — to the same case simulated unobserved.  This is what makes
  ``repro probes watch`` safe on a live experiment.
"""

from repro.cpu.inorder.core import InOrderCore
from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.smt import SmtCore

from tests.conftest import counting_loop
from tests.cpu.test_golden_differential import (CASES, capture_case,
                                                load_golden)

EXPECTED_CORE_LEAVES = {"cycles", "retired", "fetched", "aborted",
                        "mispredicts", "ipc", "halted"}


def core_subtree_leaves(registry, context=0):
    prefix = "cpu%d.core." % context
    return {name[len(prefix):] for name in registry.subtree(
        "cpu%d.core" % context)}


class TestNamespaceParity:
    def test_every_model_exposes_the_same_core_subtree(self):
        cores = {
            "ooo": OutOfOrderCore(counting_loop(iterations=5)),
            "inorder": InOrderCore(counting_loop(iterations=5)),
            "smt": SmtCore([counting_loop(iterations=5),
                            counting_loop(iterations=5)]),
        }
        shapes = {kind: core_subtree_leaves(core.probe_registry())
                  for kind, core in cores.items()}
        assert shapes["ooo"] == EXPECTED_CORE_LEAVES
        assert shapes["ooo"] == shapes["inorder"] == shapes["smt"]

    def test_smt_exposes_one_core_subtree_per_thread(self):
        core = SmtCore([counting_loop(iterations=5),
                        counting_loop(iterations=5)])
        registry = core.probe_registry()
        assert core_subtree_leaves(registry, 0) == EXPECTED_CORE_LEAVES
        assert core_subtree_leaves(registry, 1) == EXPECTED_CORE_LEAVES
        assert registry.subtree("smt")  # plus the aggregate subtree

    def test_model_detail_lives_under_model_subtrees(self):
        ooo = OutOfOrderCore(counting_loop(iterations=5)).probe_registry()
        inorder = InOrderCore(counting_loop(iterations=5)).probe_registry()
        assert ooo.subtree("cpu0.ooo")
        assert not ooo.subtree("cpu0.inorder")
        assert inorder.subtree("cpu0.inorder")
        assert not inorder.subtree("cpu0.ooo")

    def test_shared_surfaces_present_everywhere(self):
        for core in (OutOfOrderCore(counting_loop(iterations=5)),
                     InOrderCore(counting_loop(iterations=5)),
                     SmtCore([counting_loop(iterations=5),
                              counting_loop(iterations=5)])):
            registry = core.probe_registry()
            assert "mem.l2.miss_rate" in registry
            assert "branch.mispredict_rate" in registry


class TestObservationNeutrality:
    """Streaming the registry must not change what the machine computes."""

    # One profiled single-core case per model from the golden matrix;
    # the fixture itself pins the unobserved outputs, so comparing an
    # *observed* capture against it proves reads are side-effect-free.
    def golden_case(self, core_kind):
        for label, names, kind, mode in CASES:
            if kind == core_kind and mode is not None:
                return label, names, kind, mode
        raise AssertionError("no golden case for %r" % core_kind)

    def capture_observed(self, monkeypatch, names, core_kind, mode):
        """capture_case, but with a ProbeStreamer attached mid-run."""
        import dataclasses

        import tests.cpu.test_golden_differential as golden_module
        from repro.engine.session import run_session

        def observed_run_session(spec):
            # Same spec, plus aggressive probe streaming: every probe,
            # read every 64 cycles (plus the final flush).
            return run_session(dataclasses.replace(spec, probe_stream=64))

        monkeypatch.setattr(golden_module, "run_session",
                            observed_run_session)
        return capture_case(names, core_kind, mode)

    def test_streamed_run_matches_golden(self, monkeypatch):
        golden = load_golden()
        for core_kind in ("ooo", "inorder", "smt"):
            label, names, kind, mode = self.golden_case(core_kind)
            observed = self.capture_observed(monkeypatch, names, kind, mode)
            assert observed == golden[label], (
                "probe streaming changed the %s machine's outputs"
                % core_kind)
