"""Shared test fixtures and program-building helpers."""

import pytest

from repro.isa.builder import ProgramBuilder


def counting_loop(iterations=10, body=None, name="loop-prog"):
    """A simple counted loop; *body* is a callable emitting the loop body.

    Registers: r1 = countdown, r3 = accumulator.  Returns the program.
    """
    b = ProgramBuilder(name=name)
    b.begin_function("main")
    b.ldi(1, iterations)
    b.ldi(3, 0)
    b.label("loop")
    if body is not None:
        body(b)
    b.lda(3, 3, 1)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main")


@pytest.fixture
def tiny_program():
    """10-iteration empty loop."""
    return counting_loop(iterations=10)


@pytest.fixture
def memory_program():
    """Loop summing an array through loads/stores."""
    b = ProgramBuilder(name="memsum")
    b.alloc("arr", 32, init=list(range(1, 33)))
    b.alloc("out", 1)
    b.begin_function("main")
    b.ldi(1, 32)
    b.li_addr(2, "arr")
    b.ldi(3, 0)
    b.label("loop")
    b.ld(4, 2, 0)
    b.add(3, 3, 4)
    b.lda(2, 2, 8)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.li_addr(5, "out")
    b.st(3, 5, 0)
    b.halt()
    b.end_function()
    return b.build(entry="main")


@pytest.fixture
def call_program():
    """main calls a leaf function in a loop (exercises JSR/RET)."""
    b = ProgramBuilder(name="calls")
    b.begin_function("main")
    b.ldi(1, 8)
    b.ldi(3, 0)
    b.label("loop")
    b.jsr("double", ra=26)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    b.begin_function("double")
    b.lda(3, 3, 1)
    b.add(3, 3, 3)
    b.ret(26)
    b.end_function()
    return b.build(entry="main")
