"""Tests for the DynInst latency accessors (Table 1 semantics)."""

from repro.cpu.dynops import DynInst
from repro.events import Event
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


def _dyn():
    inst = Instruction(op=Opcode.LD, dest=1, src1=2, imm=0)
    return DynInst(seq=0, pc=0, inst=inst, fetch_cycle=10)


def test_latencies_none_until_stages_reached():
    d = _dyn()
    assert d.fetch_to_map is None
    assert d.issue_to_retire_ready is None
    assert d.load_issue_to_completion is None


def test_latency_chain():
    d = _dyn()
    d.map_cycle = 12
    d.data_ready_cycle = 15
    d.issue_cycle = 16
    d.exec_complete_cycle = 17
    d.retire_cycle = 20
    d.load_complete_cycle = 30
    assert d.fetch_to_map == 2
    assert d.map_to_data_ready == 3
    assert d.data_ready_to_issue == 1
    assert d.issue_to_retire_ready == 1
    assert d.retire_ready_to_retire == 3
    assert d.load_issue_to_completion == 14
    assert d.fetch_to_retire_ready == 7


def test_outcome_flags():
    d = _dyn()
    assert not d.retired and not d.aborted
    d.events |= Event.RETIRED
    assert d.retired
    d2 = _dyn()
    d2.events |= Event.ABORTED
    assert d2.aborted


def test_repr_mentions_pc_and_op():
    text = repr(_dyn())
    assert "ld" in text
    assert "pc=0x0" in text
