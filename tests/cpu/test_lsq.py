"""Tests for the load/store queue."""

from repro.cpu.dynops import DynInst
from repro.cpu.ooo.lsq import BLOCK, CLEAR, FORWARD, LoadStoreQueue
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


def _mem(op, seq, addr=None):
    inst = Instruction(op=op, dest=1 if op is Opcode.LD else None,
                       src1=2, src2=3 if op is Opcode.ST else None)
    d = DynInst(seq=seq, pc=seq * 4, inst=inst, fetch_cycle=0)
    d.eff_addr = addr
    return d


def test_load_with_no_stores_is_clear():
    lsq = LoadStoreQueue(8)
    load = _mem(Opcode.LD, seq=5, addr=0x100)
    lsq.insert(load)
    assert lsq.load_status(load) == (CLEAR, None)


def test_unresolved_older_store_blocks():
    lsq = LoadStoreQueue(8)
    store = _mem(Opcode.ST, seq=1, addr=None)
    load = _mem(Opcode.LD, seq=2, addr=0x100)
    lsq.insert(store)
    lsq.insert(load)
    status, _ = lsq.load_status(load)
    assert status == BLOCK
    assert lsq.has_unresolved_older_store(load)


def test_matching_store_forwards():
    lsq = LoadStoreQueue(8)
    store = _mem(Opcode.ST, seq=1, addr=0x100)
    store.result = 42
    load = _mem(Opcode.LD, seq=2, addr=0x100)
    lsq.insert(store)
    lsq.insert(load)
    status, match = lsq.load_status(load)
    assert status == FORWARD
    assert match is store


def test_youngest_matching_store_wins():
    lsq = LoadStoreQueue(8)
    old = _mem(Opcode.ST, seq=1, addr=0x100)
    new = _mem(Opcode.ST, seq=2, addr=0x100)
    load = _mem(Opcode.LD, seq=3, addr=0x100)
    for d in (old, new, load):
        lsq.insert(d)
    _, match = lsq.load_status(load)
    assert match is new


def test_non_matching_store_is_clear():
    lsq = LoadStoreQueue(8)
    store = _mem(Opcode.ST, seq=1, addr=0x200)
    load = _mem(Opcode.LD, seq=2, addr=0x100)
    lsq.insert(store)
    lsq.insert(load)
    assert lsq.load_status(load) == (CLEAR, None)


def test_younger_stores_ignored():
    lsq = LoadStoreQueue(8)
    load = _mem(Opcode.LD, seq=1, addr=0x100)
    store = _mem(Opcode.ST, seq=2, addr=None)
    lsq.insert(load)
    lsq.insert(store)
    assert lsq.load_status(load) == (CLEAR, None)


def test_squash_younger():
    lsq = LoadStoreQueue(8)
    for seq in range(5):
        lsq.insert(_mem(Opcode.ST, seq=seq, addr=seq * 8))
    lsq.squash_younger(2)
    assert [d.seq for d in lsq.entries] == [0, 1, 2]


def test_remove_tolerates_missing():
    lsq = LoadStoreQueue(8)
    ghost = _mem(Opcode.LD, seq=9, addr=0)
    lsq.remove(ghost)  # no raise
    assert len(lsq) == 0


def test_full():
    lsq = LoadStoreQueue(2)
    lsq.insert(_mem(Opcode.LD, seq=0))
    assert not lsq.full
    lsq.insert(_mem(Opcode.LD, seq=1))
    assert lsq.full
