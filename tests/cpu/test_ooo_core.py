"""Behavioural tests for the out-of-order core."""

import pytest

from repro.cpu.config import MachineConfig
from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.probes import Probe, SLOT_EMPTY, SLOT_INST, SLOT_OFFPATH
from repro.errors import SimulationError
from repro.events import AbortReason, Event
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import Interpreter
from repro.isa.opcodes import Opcode

from tests.conftest import counting_loop


class RecordingProbe(Probe):
    """Captures every probe callback for inspection."""

    def __init__(self):
        self.retired = []
        self.aborted = []
        self.issued = []
        self.slots = []

    def on_fetch_slots(self, cycle, slots):
        self.slots.append((cycle, slots))

    def on_issue(self, dyninst, cycle):
        self.issued.append(dyninst)

    def on_retire(self, dyninst, cycle):
        self.retired.append(dyninst)

    def on_abort(self, dyninst, cycle):
        self.aborted.append(dyninst)


def run_core(program, **kwargs):
    core = OutOfOrderCore(program, **kwargs)
    probe = core.add_probe(RecordingProbe())
    core.run(max_cycles=200_000)
    return core, probe


class TestBasicExecution:
    def test_retires_in_program_order(self, tiny_program):
        core, probe = run_core(tiny_program)
        seqs = [d.seq for d in probe.retired]
        assert seqs == sorted(seqs)
        assert core.halted

    def test_matches_interpreter_register_state(self, memory_program):
        core, _ = run_core(memory_program)
        ref = Interpreter(memory_program)
        ref.run_to_halt()
        assert core.architectural_registers() == ref.state.regs.snapshot()

    def test_matches_interpreter_memory_state(self, memory_program):
        core, _ = run_core(memory_program)
        ref = Interpreter(memory_program)
        ref.run_to_halt()
        for addr, value in ref.state.memory.snapshot().items():
            assert core.memory.read(addr) == value

    def test_retired_count_matches_interpreter(self, call_program):
        core, _ = run_core(call_program)
        assert core.retired == Interpreter(call_program).run_to_halt()

    def test_ipc_above_one_on_independent_ops(self):
        def body(b):
            for reg in range(4, 12):
                b.lda(reg, reg, 1)

        program = counting_loop(iterations=200, body=body)
        core, _ = run_core(program)
        assert core.ipc > 1.5


class TestTimestamps:
    def test_stage_order_monotonic(self, memory_program):
        _, probe = run_core(memory_program)
        for d in probe.retired:
            assert d.fetch_cycle <= d.map_cycle
            if d.data_ready_cycle is not None:
                assert d.map_cycle <= d.data_ready_cycle
                assert d.data_ready_cycle <= d.issue_cycle
                assert d.issue_cycle < d.exec_complete_cycle or (
                    d.inst.op in (Opcode.NOP, Opcode.HALT))
            assert d.exec_complete_cycle <= d.retire_cycle

    def test_load_completion_recorded(self, memory_program):
        _, probe = run_core(memory_program)
        loads = [d for d in probe.retired if d.inst.is_load]
        assert loads
        for d in loads:
            assert d.load_complete_cycle is not None
            assert d.load_complete_cycle >= d.issue_cycle

    def test_frontend_delay_respected(self, tiny_program):
        core, probe = run_core(tiny_program)
        delay = core.config.frontend_delay
        for d in probe.retired:
            assert d.map_cycle - d.fetch_cycle >= delay


class TestSpeculation:
    def test_mispredicts_produce_aborts(self):
        # A loop whose exit is unpredictable at first: aborts must appear.
        program = counting_loop(iterations=50)
        core, probe = run_core(program)
        assert core.mispredicts >= 1
        assert core.aborted > 0
        assert all(d.abort_reason in (AbortReason.MISPREDICT_SQUASH,
                                      AbortReason.DRAINED)
                   for d in probe.aborted)

    def test_aborted_instructions_carry_bad_path_flag(self, tiny_program):
        _, probe = run_core(tiny_program)
        for d in probe.aborted:
            assert d.events & Event.ABORTED
            assert d.events & Event.BAD_PATH
            assert not d.events & Event.RETIRED

    def test_retired_and_aborted_partition_fetched(self, call_program):
        core, probe = run_core(call_program)
        assert core.fetched == len(probe.retired) + len(probe.aborted)

    def test_wrong_path_instructions_do_not_commit_memory(self):
        # A store sits on the wrong path of a predictable-at-end branch.
        b = ProgramBuilder(name="wrongpath-store")
        b.alloc("flag", 1, init=[0])
        b.begin_function("main")
        b.ldi(1, 50)
        b.li_addr(2, "flag")
        b.ldi(4, 7)
        b.label("loop")
        b.lda(1, 1, -1)
        b.bne(1, "loop")
        # Falls out after 50 iterations; the loop-back prediction will
        # overshoot and speculatively fetch this store... which must not
        # commit until the branch resolves not-taken for real.
        b.st(4, 2, 0)
        b.halt()
        b.end_function()
        program = b.build(entry="main")
        core, _ = run_core(program)
        assert core.memory.read(program.initial_memory and
                                list(program.initial_memory)[0]) == 7

    def test_ghr_repaired_after_mispredict(self, tiny_program):
        core, probe = run_core(tiny_program)
        # After the run, GHR.shifted must equal retired conditionals.
        retired_conditionals = sum(1 for d in probe.retired
                                   if d.inst.is_conditional)
        assert core.ghr.shifted == retired_conditionals


class TestFetchSlots:
    def test_slots_width_constant(self, tiny_program):
        core, probe = run_core(tiny_program)
        width = core.config.fetch_width
        assert all(len(slots) == width for _, slots in probe.slots)

    def test_offpath_slots_after_taken_branch(self, tiny_program):
        _, probe = run_core(tiny_program)
        kinds = {slot.kind for _, slots in probe.slots for slot in slots}
        assert SLOT_INST in kinds
        assert SLOT_EMPTY in kinds  # stall cycles exist (at least at start)

    def test_inst_slots_match_fetched_count(self, tiny_program):
        core, probe = run_core(tiny_program)
        inst_slots = sum(1 for _, slots in probe.slots
                         for slot in slots if slot.kind == SLOT_INST)
        assert inst_slots == core.fetched


class TestResourceStalls:
    def test_map_stall_regs_event(self):
        config = MachineConfig.alpha21264_like(phys_regs=40)

        def body(b):
            for reg in range(4, 20):
                b.lda(reg, 4, 1)

        program = counting_loop(iterations=30, body=body)
        core, probe = run_core(program, config=config)
        stalled = [d for d in probe.retired
                   if d.events & Event.MAP_STALL_REGS]
        assert stalled

    def test_fu_conflict_event(self):
        def body(b):
            for reg in range(4, 10):
                b.mul(reg, reg, reg)

        program = counting_loop(iterations=30, body=body)
        _, probe = run_core(program)
        conflicted = [d for d in probe.retired
                      if d.events & Event.FU_CONFLICT]
        assert conflicted

    def test_store_forwarding(self):
        b = ProgramBuilder(name="fwd")
        b.alloc("x", 1)
        b.begin_function("main")
        b.ldi(1, 20)
        b.li_addr(2, "x")
        b.label("loop")
        b.st(1, 2, 0)
        b.ld(3, 2, 0)  # must forward from the store
        b.lda(1, 1, -1)
        b.bne(1, "loop")
        b.halt()
        b.end_function()
        program = b.build(entry="main")
        _, probe = run_core(program)
        forwarded = [d for d in probe.retired
                     if d.events & Event.STORE_FORWARD]
        assert forwarded
        # Forwarded loads got the correct (pre-commit) store value.
        ref = Interpreter(program)
        ref.run_to_halt()
        core2 = OutOfOrderCore(program)
        core2.run()
        assert core2.architectural_registers() == ref.state.regs.snapshot()


class TestLimitsAndDrain:
    def test_max_retired_stops_early(self, tiny_program):
        core = OutOfOrderCore(tiny_program)
        core.run(max_retired=5)
        assert 5 <= core.retired <= 5 + core.config.retire_width

    def test_drain_aborts_inflight(self, tiny_program):
        core = OutOfOrderCore(tiny_program)
        probe = core.add_probe(RecordingProbe())
        core.run(max_retired=5)
        drained = [d for d in probe.aborted
                   if d.abort_reason == AbortReason.DRAINED]
        assert drained
        assert not core.rob and not core.iq

    def test_deadlock_detection(self):
        b = ProgramBuilder(name="spin")
        b.label("spin")
        b.br("spin")
        program = b.build()
        core = OutOfOrderCore(program)
        # An infinite loop retires constantly, so no deadlock: use
        # max_cycles instead; the deadlock detector needs a truly stuck
        # machine, which a correct core cannot produce from a valid
        # program. Here we just check the loop runs within limits.
        core.run(max_cycles=1000)
        assert core.retired > 0
