"""Tests for the probe interface and fetch-slot helpers."""

from repro.cpu.dynops import DynInst
from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.probes import (SLOT_EMPTY, SLOT_INST, SLOT_OFFPATH, Probe,
                              empty_slot, inst_slot, offpath_slot)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

from tests.conftest import counting_loop


def test_slot_constructors():
    inst = Instruction(op=Opcode.NOP)
    d = DynInst(seq=0, pc=0x20, inst=inst, fetch_cycle=0)
    slot = inst_slot(d)
    assert slot.kind == SLOT_INST
    assert slot.pc == 0x20
    assert slot.dyninst is d

    off = offpath_slot(0x44)
    assert off.kind == SLOT_OFFPATH
    assert off.pc == 0x44
    assert off.dyninst is None

    empty = empty_slot()
    assert empty.kind == SLOT_EMPTY
    assert empty.pc is None


def test_empty_slot_is_shared_singleton():
    assert empty_slot() is empty_slot()


def test_base_probe_is_all_noops():
    probe = Probe()
    probe.attach(object())
    probe.on_fetch_slots(0, [])
    probe.on_issue(None, 0)
    probe.on_retire(None, 0)
    probe.on_abort(None, 0)
    probe.on_cycle_end(0)


def test_multiple_probes_see_identical_streams():
    class Recorder(Probe):
        def __init__(self):
            self.retires = []
            self.cycles = 0

        def on_retire(self, dyninst, cycle):
            self.retires.append(dyninst.seq)

        def on_cycle_end(self, cycle):
            self.cycles += 1

    program = counting_loop(iterations=50)
    core = OutOfOrderCore(program)
    first = core.add_probe(Recorder())
    second = core.add_probe(Recorder())
    core.run()
    assert first.retires == second.retires
    assert first.cycles == second.cycles


def test_probe_attach_called_with_core():
    class Attacher(Probe):
        def __init__(self):
            self.core = None

        def attach(self, core):
            self.core = core

    program = counting_loop(iterations=5)
    core = OutOfOrderCore(program)
    probe = core.add_probe(Attacher())
    assert probe.core is core
