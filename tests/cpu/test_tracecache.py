"""Decoded-block trace cache: exact equivalence with the plain interpreter.

The trace cache (repro.cpu.tracecache) compiles basic blocks into fused
step functions.  Its correctness contract is byte-exactness: a cached
run must produce the identical architectural state, warm-state
signature, sample records, and mispredict count as the per-instruction
path — including across in-place Program mutations, which must
invalidate the cache via the ``Program.version`` counter.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.functional import FunctionalProfiler
from repro.cpu.tracecache import MAX_BLOCK, BlockCache
from repro.cpu.warm import WarmState, fast_forward
from repro.isa.instruction import Instruction
from repro.isa.interpreter import Interpreter
from repro.isa.opcodes import Opcode
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program

from tests.conftest import counting_loop


def run_pair(program_factory, count, chunks=None, mutate=None):
    """Run cached and plain fast-forwards in lockstep; return both sides.

    *chunks* splits the run into segments; *mutate* is an optional
    ``(program, segment_index) -> None`` callback applied between
    segments to BOTH programs, exercising cache invalidation.
    """
    sides = []
    for use_cache in (True, False):
        program = program_factory()
        interp = Interpreter(program)
        warm = WarmState()
        cache = BlockCache(program) if use_cache else None
        done = 0
        for index, chunk in enumerate(chunks or [count]):
            done += fast_forward(interp, warm, chunk, cache=cache)
            if mutate is not None:
                mutate(program, index)
        sides.append((interp, warm, done))
    return sides


def assert_sides_equal(cached, plain):
    interp_c, warm_c, done_c = cached
    interp_p, warm_p, done_p = plain
    assert done_c == done_p
    assert interp_c.state.pc == interp_p.state.pc
    assert interp_c.state.halted == interp_p.state.halted
    assert interp_c.state.regs._values == interp_p.state.regs._values
    assert interp_c.state.memory._words == interp_p.state.memory._words
    assert warm_c.signature() == warm_p.signature()


WORKLOADS = ("compress", "gcc", "go", "ijpeg", "li", "perl", "povray",
             "vortex")


class TestSuiteEquivalence:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_fast_forward_matches_plain(self, name):
        cached, plain = run_pair(lambda: suite_program(name, scale=1),
                                 50_000)
        assert_sides_equal(cached, plain)

    def test_chunked_fast_forward_matches(self):
        # Chunk boundaries force mid-block spills on the cached side.
        chunks = [1, 2, 3, 7, 50, 1, 499, 1000, 13, 40_000]
        cached, plain = run_pair(
            lambda: suite_program("compress", scale=1), sum(chunks),
            chunks=chunks)
        assert_sides_equal(cached, plain)


class TestProfilerEquivalence:
    @pytest.mark.parametrize("name", ("compress", "li", "go"))
    def test_fused_records_match_observed(self, name):
        runs = []
        for collect_truth in (False, True):
            profiler = FunctionalProfiler(
                suite_program(name, scale=1),
                profile=ProfileMeConfig(mean_interval=23, seed=9),
                collect_truth=collect_truth, keep_records=True)
            runs.append(profiler.run())
        fused, observed = runs
        assert fused.retired == observed.retired
        assert fused.mispredicts == observed.mispredicts
        assert fused.hierarchy.stats() == observed.hierarchy.stats()
        key = [(r.pc, int(r.events), r.history, r.fetch_cycle)
               for r in fused.records]
        assert key == [(r.pc, int(r.events), r.history, r.fetch_cycle)
                       for r in observed.records]

    def test_fused_respects_instruction_limit(self):
        profiler = FunctionalProfiler(
            suite_program("compress", scale=1),
            profile=ProfileMeConfig(mean_interval=1000, seed=2),
            collect_truth=False)
        run = profiler.run(max_instructions=12_345)
        assert run.retired == 12_345


class TestInvalidation:
    def test_version_bump_drops_blocks(self, tiny_program):
        cache = BlockCache(tiny_program)
        block = cache.lookup(tiny_program.entry)
        assert cache.lookup(tiny_program.entry) is block
        tiny_program.note_mutation()
        assert cache.lookup(tiny_program.entry) is not block

    def test_patch_mid_session_changes_execution(self):
        # Patch the loop-body accumulator step from +1 to +5 after three
        # iterations; cached and plain runs must agree on the final sum.
        def factory():
            return counting_loop(iterations=10)

        def mutate(program, index):
            if index == 0:
                # entry+8 is `lda r3, r3, 1` (see counting_loop).
                pc = program.entry + 8
                old = program.fetch(pc)
                assert old.op is Opcode.LDA and old.dest == 3
                program.patch(pc, Instruction(
                    op=Opcode.LDA, dest=3, src1=3, src2=None, imm=5))

        # 3 iterations * 3 loop insts + 2 setup = 11 instructions.
        cached, plain = run_pair(factory, 200, chunks=[11, 189],
                                 mutate=mutate)
        assert_sides_equal(cached, plain)
        regs = cached[0].state.regs._values
        # 3 iterations at +1, 7 at +5.
        assert regs[3] == 3 + 7 * 5

    def test_replace_instructions_invalidates(self, tiny_program):
        cache = BlockCache(tiny_program)
        cache.lookup(tiny_program.entry)
        tiny_program.replace_instructions(list(tiny_program.instructions))
        assert tiny_program.version == 1
        # A stale fused block would execute the old code; lookup must
        # recompile against the (identical) new list without error.
        assert cache.lookup(tiny_program.entry).entry == tiny_program.entry


class TestBlockLimits:
    def test_blocks_are_bounded(self):
        program = suite_program("gcc", scale=1)
        cache = BlockCache(program)
        interp = Interpreter(program)
        warm = WarmState()
        fast_forward(interp, warm, 20_000, cache=cache)
        assert cache._blocks
        assert all(b.length <= MAX_BLOCK for b in cache._blocks.values())


@settings(max_examples=15, deadline=None)
@given(chunks=st.lists(st.integers(min_value=1, max_value=700),
                       min_size=1, max_size=12),
       patch_at=st.integers(min_value=0, max_value=11),
       increment=st.integers(min_value=0, max_value=9))
def test_property_cached_equals_plain_with_mutation(chunks, patch_at,
                                                    increment):
    """Cached == plain for arbitrary chunking and a mid-run body patch."""
    def factory():
        return counting_loop(iterations=300)

    def mutate(program, index):
        if index == patch_at:
            program.patch(program.entry + 8, Instruction(
                op=Opcode.LDA, dest=3, src1=3, src2=None, imm=increment))

    cached, plain = run_pair(factory, sum(chunks), chunks=chunks,
                             mutate=mutate)
    assert_sides_equal(cached, plain)


class TestTransformCorpus:
    """The PGO transforms are the mutation source the cache must survive:
    passes build relocated images with ``insert_instructions`` and
    install them into live Program objects via ``replace_instructions``."""

    def test_relocated_program_matches_plain(self):
        # Cached == plain on a program that *is* an insert_instructions
        # output (prefetch-style NOP padding after every 5th PC).
        from repro.analysis.optimize import insert_instructions
        from repro.isa.instruction import INSTRUCTION_BYTES

        def factory():
            base = counting_loop(iterations=500)
            insertions = {
                pc: [Instruction(op=Opcode.NOP, dest=None, src1=None,
                                 src2=None, imm=0)]
                for pc in range(0, base.pc_limit, 5 * INSTRUCTION_BYTES)}
            return insert_instructions(base, insertions)

        cached, plain = run_pair(factory, 3_000,
                                 chunks=[1, 7, 100, 2_892])
        assert_sides_equal(cached, plain)

    def test_insert_instructions_installed_mid_session(self):
        # A PGO pass relocates mid-run and installs the new image into
        # the live program with replace_instructions; the cached run
        # must drop its decoded blocks and track the plain interpreter.
        from repro.analysis.optimize import insert_instructions_with_map

        def factory():
            return counting_loop(iterations=50)

        def mutate(program, index):
            if index != 1:
                return
            # Append after the final instruction: existing PCs (and the
            # running interpreter's pc) are unaffected, but the program
            # image — and therefore every decoded block — changed.
            last_pc = program.pc_limit - 8
            relocated, remap = insert_instructions_with_map(
                program, {last_pc: [Instruction(
                    op=Opcode.NOP, dest=None, src1=None, src2=None,
                    imm=0)]})
            assert remap[program.entry] == program.entry
            version_before = program.version
            program.replace_instructions(list(relocated.instructions))
            assert program.version == version_before + 1

        cached, plain = run_pair(factory, 152, chunks=[9, 13, 130],
                                 mutate=mutate)
        assert_sides_equal(cached, plain)
