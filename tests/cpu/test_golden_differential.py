"""Golden cycle-exactness differential for the hot-loop optimizations.

The performance pass over the cycle loops (ready/wakeup issue list,
LSQ store index, completion event wheel, probe fast paths) is required
to be *behavior preserving*: cycles, retired counts, architectural
registers, and the canonical-JSON profile database must all be
byte-identical to the unoptimized simulator.  This fixture pins those
outputs for a spread of workloads across all three cores and both
count modes; any divergence introduced by a "pure" performance change
fails here with the exact field that moved.

The committed fixture (``golden_cycle_exactness.json``) was captured
from the tree *before* the optimization pass.  It should only ever be
regenerated for an intentional behavior change (new ISA semantics, a
machine-config change, ...) — never to paper over a drifting
optimization.  Regenerate with::

    PYTHONPATH=src python tests/cpu/test_golden_differential.py --regen
"""

import hashlib
import json
import pathlib

import pytest

from repro.analysis.persistence import canonical_json
from repro.engine.session import SessionSpec, run_session
from repro.profileme.fetch_counter import CountMode
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import classic_kernel, stall_kernel
from repro.workloads.suite import suite_program

GOLDEN_PATH = pathlib.Path(__file__).with_name("golden_cycle_exactness.json")

# Workloads chosen to cover the machinery the optimizations touch:
# biased-branch tight loops (compress), pointer chasing + recursion
# with helper calls (li), a serial dependence chain that exercises the
# wakeup path (dep_chain), and FP + memory streaming with store->load
# forwarding (daxpy).
WORKLOADS = ("suite:compress", "suite:li", "kernel:dep_chain",
             "classic:daxpy")
SMT_PAIRS = (("suite:compress", "kernel:dep_chain"),
             ("suite:li", "classic:daxpy"))
MODES = (CountMode.INSTRUCTIONS, CountMode.FETCH_OPPORTUNITIES)


def build_workload(name):
    kind, _, arg = name.partition(":")
    if kind == "suite":
        return suite_program(arg, scale=1)
    if kind == "kernel":
        return stall_kernel(arg, iterations=300)
    if kind == "classic":
        return classic_kernel(arg, n=96)[0]
    raise ValueError("unknown workload %r" % (name,))


def iter_cases():
    for mode in MODES:
        for name in WORKLOADS:
            for core_kind in ("ooo", "inorder"):
                yield "%s/%s/%s" % (name, core_kind, mode.value), \
                    (name,), core_kind, mode
        for pair in SMT_PAIRS:
            yield "%s+%s/smt/%s" % (pair[0], pair[1], mode.value), \
                pair, "smt", mode
    # No-probe runs (mode None -> no ProfileMe unit attached) pin the
    # probe-free fast paths: guarded Event-OR and publish skips must not
    # change timing on either single-context core.
    for name in WORKLOADS:
        for core_kind in ("ooo", "inorder"):
            yield "%s/%s/no-probe" % (name, core_kind), \
                (name,), core_kind, None


CASES = list(iter_cases())


def capture_case(names, core_kind, mode):
    profile = (ProfileMeConfig(mean_interval=40, seed=5, mode=mode)
               if mode is not None else None)
    programs = tuple(build_workload(name) for name in names)
    if core_kind == "smt":
        spec = SessionSpec(programs=programs, core_kind="smt",
                           profile=profile, keep_records=False)
    else:
        spec = SessionSpec(program=programs[0], core_kind=core_kind,
                           profile=profile, keep_records=False)
    result = run_session(spec)
    core = result.core
    if core_kind == "smt":
        registers = [list(thread.architectural_registers())
                     for thread in core.threads]
    else:
        registers = list(core.architectural_registers())
    captured = {
        "cycles": result.cycles,
        "retired": result.stats.retired,
        "fetched": result.stats.fetched,
        "aborted": result.stats.aborted,
        "mispredicts": result.stats.mispredicts,
        "registers": registers,
    }
    if profile is not None:
        database = canonical_json(result.database.to_dict())
        captured["db_total_samples"] = result.database.total_samples
        captured["db_sha256"] = hashlib.sha256(database.encode()).hexdigest()
    return captured


def load_golden():
    with GOLDEN_PATH.open() as stream:
        return json.load(stream)


@pytest.fixture(scope="module")
def golden():
    return load_golden()


@pytest.mark.parametrize("label,names,core_kind,mode",
                         CASES, ids=[case[0] for case in CASES])
def test_matches_golden(golden, label, names, core_kind, mode):
    assert label in golden, (
        "no golden entry for %s — regenerate the fixture for intentional "
        "matrix changes" % label)
    assert capture_case(names, core_kind, mode) == golden[label]


def test_golden_covers_every_case():
    golden = load_golden()
    assert sorted(golden) == sorted(case[0] for case in CASES)


def regenerate():
    golden = {}
    for label, names, core_kind, mode in CASES:
        golden[label] = capture_case(names, core_kind, mode)
        print("captured", label)
    with GOLDEN_PATH.open("w") as stream:
        json.dump(golden, stream, indent=1, sort_keys=True)
        stream.write("\n")
    print("wrote", GOLDEN_PATH)


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("refusing to run without --regen (this rewrites the "
                 "golden fixture)")
    regenerate()
