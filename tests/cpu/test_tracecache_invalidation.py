"""Gating test: every mutating Program API invalidates the trace cache.

The decoded-block trace cache trusts ``Program.version``: it only
recompiles when the counter moves.  That trust is sound only if every
method that writes Program state is decorated with ``@_mutator`` (which
registers the name in ``MUTATING_APIS`` and bumps ``version``).  This
test enforces the contract two ways:

* statically — AST introspection over ``repro/isa/program.py`` finds
  every method of ``Program`` that assigns to or mutates ``self`` state
  and requires it to be registered;
* dynamically — calling each registered mutator on a live Program must
  bump ``version`` exactly once, and a BlockCache must drop its decoded
  blocks afterwards.
"""

import ast
import inspect

from repro.cpu.tracecache import BlockCache
from repro.isa import program as program_module
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

from tests.conftest import counting_loop

# Methods allowed to write self state without being mutators: dataclass
# construction (runs before any cache can hold a reference).
_CONSTRUCTION = {"__post_init__", "__init__"}

# self attributes whose mutation cannot change decoded instructions.
_CACHE_IRRELEVANT = {"version"}


def _self_writes(func_node):
    """Names of ``self`` attributes a method assigns to or mutates."""
    writes = set()

    class Visitor(ast.NodeVisitor):
        def _note(self, target):
            # self.attr = ..., self.attr[i] = ..., self.attr[:] = ...
            node = target
            while isinstance(node, ast.Subscript):
                node = node.value
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                writes.add(node.attr)

        def visit_Assign(self, node):
            for target in node.targets:
                self._note(target)
            self.generic_visit(node)

        def visit_AugAssign(self, node):
            self._note(node.target)
            self.generic_visit(node)

        def visit_Call(self, node):
            # self.attr.mutating_method(...) — any method call on a self
            # attribute is conservatively treated as a write (append,
            # update, clear, setdefault, ...), except read-only names.
            func = node.func
            read_only = {"get", "items", "keys", "values", "index",
                         "count", "copy"}
            if (isinstance(func, ast.Attribute)
                    and func.attr not in read_only
                    and isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "self"):
                writes.add(func.value.attr)
            self.generic_visit(node)

    Visitor().visit(func_node)
    return writes


def _program_methods():
    tree = ast.parse(inspect.getsource(program_module))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "Program":
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    yield item
            return
    raise AssertionError("class Program not found")


class TestStaticContract:
    def test_every_self_writing_method_is_registered(self):
        registered = set(Program.MUTATING_APIS)
        offenders = {}
        for method in _program_methods():
            if method.name in _CONSTRUCTION:
                continue
            writes = _self_writes(method) - _CACHE_IRRELEVANT
            if writes and method.name not in registered:
                offenders[method.name] = sorted(writes)
        assert not offenders, (
            "Program methods mutate self state without @_mutator "
            "registration (the trace cache would go stale): %r"
            % offenders)

    def test_registered_mutators_exist_and_are_wrapped(self):
        for name in Program.MUTATING_APIS:
            method = getattr(Program, name)
            # functools.wraps preserves the name; the closure holds the
            # original function — enough to prove the decorator is on.
            assert method.__name__ == name
            assert method.__wrapped__ is not None


class TestDynamicContract:
    def _call_with_benign_args(self, program, name):
        nop = Instruction(op=Opcode.NOP, dest=None, src1=None, src2=None,
                          imm=0)
        calls = {
            "note_mutation": lambda: program.note_mutation(),
            "patch": lambda: program.patch(program.entry, nop),
            "replace_instructions": lambda: program.replace_instructions(
                list(program.instructions)),
            "add_label": lambda: program.add_label("gate-test",
                                                   program.entry),
        }
        assert name in calls, (
            "new mutator %r: teach this test how to invoke it" % name)
        calls[name]()

    def test_every_mutator_bumps_version_and_drops_cache(self):
        for name in Program.MUTATING_APIS:
            program = counting_loop(iterations=3)
            cache = BlockCache(program)
            block = cache.lookup(program.entry)
            before = program.version
            self._call_with_benign_args(program, name)
            assert program.version == before + 1, name
            assert cache.lookup(program.entry) is not block, name

    def test_mutator_raising_still_invalidates(self, tiny_program):
        cache = BlockCache(tiny_program)
        block = cache.lookup(tiny_program.entry)
        try:
            tiny_program.patch(-4, None)
        except Exception:
            pass
        assert cache.lookup(tiny_program.entry) is not block
