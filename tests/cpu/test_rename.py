"""Tests for the register renamer."""

import pytest

from repro.cpu.dynops import DynInst
from repro.cpu.ooo.rename import RegisterRenamer
from repro.errors import ConfigError, SimulationError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


def _dyn(op=Opcode.ADD, dest=1, src1=2, src2=3, seq=0):
    inst = Instruction(op=op, dest=dest, src1=src1, src2=src2)
    return DynInst(seq=seq, pc=seq * 4, inst=inst, fetch_cycle=0)


def test_initial_identity_mapping():
    renamer = RegisterRenamer(40)
    assert renamer.lookup(5) == 5
    assert renamer.free_count() == 8


def test_rename_allocates_new_destination():
    renamer = RegisterRenamer(40)
    d = _dyn()
    assert renamer.rename(d)
    assert d.dest_phys not in range(32) or d.dest_phys >= 32
    assert d.prev_dest_phys == 1
    assert renamer.lookup(1) == d.dest_phys
    assert not renamer.ready[d.dest_phys]


def test_sources_see_latest_mapping():
    renamer = RegisterRenamer(40)
    first = _dyn(dest=1, src1=2, src2=3, seq=0)
    renamer.rename(first)
    second = _dyn(dest=4, src1=1, src2=1, seq=1)
    renamer.rename(second)
    assert all(phys == first.dest_phys for phys in second.src_phys)


def test_rename_fails_when_exhausted():
    renamer = RegisterRenamer(34)  # only 2 rename regs
    a, b, c = (_dyn(seq=i) for i in range(3))
    assert renamer.rename(a)
    assert renamer.rename(b)
    assert not renamer.rename(c)
    assert c.dest_phys is None  # no side effects on failure


def test_complete_and_wakeup_cycle():
    renamer = RegisterRenamer(40)
    d = _dyn()
    renamer.rename(d)
    assert not renamer.is_ready(d.dest_phys, cycle=5)
    renamer.complete(d, 123, cycle=7)
    assert not renamer.is_ready(d.dest_phys, cycle=6)
    assert renamer.is_ready(d.dest_phys, cycle=7)
    assert renamer.read_value(d.dest_phys) == 123


def test_commit_frees_previous_mapping():
    renamer = RegisterRenamer(40)
    d = _dyn()
    renamer.rename(d)
    before = renamer.free_count()
    renamer.commit(d)
    assert renamer.free_count() == before + 1
    assert 1 in renamer.free_list  # old phys reg for arch r1


def test_rollback_restores_mapping():
    renamer = RegisterRenamer(40)
    a = _dyn(dest=1, seq=0)
    b = _dyn(dest=1, seq=1)
    renamer.rename(a)
    renamer.rename(b)
    renamer.rollback(b)  # youngest first
    assert renamer.lookup(1) == a.dest_phys
    renamer.rollback(a)
    assert renamer.lookup(1) == 1
    renamer.check_invariants()


def test_rollback_out_of_order_detected():
    renamer = RegisterRenamer(40)
    a = _dyn(dest=1, seq=0)
    b = _dyn(dest=1, seq=1)
    renamer.rename(a)
    renamer.rename(b)
    with pytest.raises(SimulationError, match="out of order"):
        renamer.rollback(a)


def test_store_needs_no_destination():
    renamer = RegisterRenamer(33)
    store = _dyn(op=Opcode.ST, dest=None, src1=2, src2=3)
    free_before = renamer.free_count()
    assert renamer.rename(store)
    assert renamer.free_count() == free_before
    assert store.dest_phys is None


def test_architectural_values_after_quiesce():
    renamer = RegisterRenamer(40)
    d = _dyn(dest=1)
    renamer.rename(d)
    renamer.complete(d, 55, cycle=0)
    renamer.commit(d)
    assert renamer.architectural_values()[1] == 55
    assert renamer.architectural_values()[31] == 0


def test_needs_rename_headroom():
    with pytest.raises(ConfigError):
        RegisterRenamer(32)
