"""Tests for the fast functional profiling path."""

import time

import pytest

from repro.cpu.functional import FunctionalProfiler
from repro.events import Event
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program

from tests.conftest import counting_loop


@pytest.fixture(scope="module")
def compress_run():
    program = suite_program("compress", scale=1)
    profiler = FunctionalProfiler(
        program, profile=ProfileMeConfig(mean_interval=25, seed=4),
        keep_records=True)
    return program, profiler.run()


class TestBasics:
    def test_retired_count_matches_interpreter(self, compress_run):
        from repro.isa.interpreter import Interpreter

        program, run = compress_run
        assert run.retired == Interpreter(program).run_to_halt()

    def test_sampling_rate(self, compress_run):
        program, run = compress_run
        expected = run.retired / 25
        assert abs(run.database.total_samples / expected - 1.0) < 0.15

    def test_records_have_no_latency_registers(self, compress_run):
        _, run = compress_run
        assert run.records
        for record in run.records:
            assert record.fetch_to_map is None
            assert record.issue_to_retire_ready is None
            assert record.retired

    def test_truth_tracks_events(self, compress_run):
        _, run = compress_run
        misses = sum(t.count_event(Event.DCACHE_MISS)
                     for t in run.truth.values())
        assert misses >= 1
        assert sum(t.retired for t in run.truth.values()) == run.retired


class TestEstimatorAgreement:
    def test_retire_estimates_converge(self, compress_run):
        _, run = compress_run
        for pc, truth in run.truth.items():
            profile = run.database.profile(pc)
            if profile is None or profile.samples < 40:
                continue
            estimate = profile.samples * 25
            assert abs(estimate / truth.fetched - 1.0) < 0.4

    def test_miss_rates_agree_with_cycle_level_model(self):
        """Event statistics must match the OoO core's retired-path view."""
        program = suite_program("compress", scale=1)
        fast = FunctionalProfiler(
            program, profile=ProfileMeConfig(mean_interval=50, seed=1))
        fast_run = fast.run()
        slow = run_profiled(program,
                            profile=ProfileMeConfig(mean_interval=50,
                                                    seed=1),
                            collect_truth=True)

        def miss_count(truth_map):
            return sum(t.count_event(Event.DCACHE_MISS)
                       for t in truth_map.values())

        fast_misses = miss_count(fast_run.truth)
        slow_misses = sum(
            t.count_event(Event.DCACHE_MISS)
            for t in slow.truth.per_pc.values())
        # The OoO core adds wrong-path pollution; retired-path D-miss
        # counts still agree to first order.
        assert fast_misses > 0
        assert 0.4 < fast_misses / max(1, slow_misses) < 2.5

    def test_history_matches_trace_computation(self, compress_run):
        """The Path Register must equal the trace-derived history."""
        from repro.analysis.pathprof import PathReconstructor
        from repro.isa.interpreter import functional_trace

        program, run = compress_run
        trace = functional_trace(program)
        recon = PathReconstructor(program, trace)
        by_index = {}
        for record in run.records:
            by_index.setdefault(record.fetch_cycle, record)
        mask = (1 << 16) - 1
        for index, record in list(by_index.items())[:50]:
            assert record.history == recon.history_before[index] & mask


class TestSpeed:
    def test_materially_faster_than_cycle_level(self):
        program = suite_program("ijpeg", scale=2)

        start = time.time()
        FunctionalProfiler(program, profile=ProfileMeConfig(
            mean_interval=100, seed=1), collect_truth=False).run()
        fast_time = time.time() - start

        start = time.time()
        run_profiled(program, profile=ProfileMeConfig(mean_interval=100,
                                                      seed=1))
        slow_time = time.time() - start
        assert fast_time < slow_time / 2


class TestIntervalSafety:
    """Degenerate sampling intervals (regression: a nonpositive mean or
    a zero draw used to silently disable sampling for the whole run)."""

    def test_nonpositive_mean_interval_is_typed_config_error(self):
        from types import SimpleNamespace

        from repro.errors import ConfigError

        program = suite_program("compress", scale=1)
        # profile is duck-typed, so a broken custom config can carry a
        # mean ProfileMeConfig itself would reject; the profiler must
        # fail at construction with the typed error, not sample nothing.
        for bad_mean in (0, -3):
            with pytest.raises(ConfigError):
                FunctionalProfiler(program, profile=SimpleNamespace(
                    mean_interval=bad_mean, seed=1))

    def test_degenerate_rng_draw_is_clamped_to_one(self):
        program = suite_program("compress", scale=1)
        profiler = FunctionalProfiler(
            program, profile=ProfileMeConfig(mean_interval=5, seed=1))
        # The run loop decrements then tests `== 0`; an interval of 0
        # would let the countdown skip past zero and never fire again.
        profiler._rng.interval = lambda mean, jitter: 0
        assert profiler._next_interval() == 1

    def test_clamped_draws_still_sample(self):
        program = suite_program("compress", scale=1)
        profiler = FunctionalProfiler(
            program, profile=ProfileMeConfig(mean_interval=5, seed=1),
            collect_truth=False, keep_records=True)
        profiler._rng.interval = lambda mean, jitter: 0
        run = profiler.run(max_instructions=100)
        # Every instruction becomes a sample point under the clamp.
        assert run.database.total_samples == 100
