"""Differential testing: both timing cores must match the interpreter.

Hypothesis generates random (but always-terminating) programs — loops
over random bodies of ALU ops, memory traffic, data-dependent branches
and calls — and asserts that the out-of-order core's committed
architectural state is identical to the reference interpreter's.  This is
the single strongest correctness check on the speculation machinery:
any bug in squash/rollback/forwarding shows up as state divergence.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu.inorder.core import InOrderCore
from repro.cpu.ooo.core import OutOfOrderCore
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import Interpreter

# One random "operation" in a loop body: (kind, params).
_ops = st.sampled_from(["add", "xor", "mul", "fadd", "load", "store",
                        "branch", "chain"])
_bodies = st.lists(st.tuples(_ops, st.integers(0, 7), st.integers(0, 7)),
                   min_size=1, max_size=12)


def build_random_program(bodies, iterations):
    """Deterministically assemble a terminating program from draws."""
    b = ProgramBuilder(name="random")
    b.alloc("data", 64, init=list(range(100, 164)))
    b.begin_function("main")
    b.ldi(15, b.address_of("data"))
    for reg in range(2, 12):
        b.ldi(reg, reg * 3 + 1)
    label_count = 0
    for loop_index, body in enumerate(bodies):
        counter = 13
        b.ldi(counter, iterations)
        loop = "loop_%d" % loop_index
        b.label(loop)
        for op_index, (kind, a, c) in enumerate(body):
            r1 = 2 + a
            r2 = 2 + c
            if kind == "add":
                b.add(r1, r1, r2)
            elif kind == "xor":
                b.xor(r1, r1, r2)
            elif kind == "mul":
                b.mul(r1, r1, r2)
            elif kind == "fadd":
                b.fadd(r1, r1, r2)
            elif kind == "load":
                b.ldi(14, (a * 8 + c) % 64)
                b.sll(14, 14, 3)
                b.add(14, 14, 15)
                b.ld(r1, 14, 0)
            elif kind == "store":
                b.ldi(14, (a + c * 5) % 64)
                b.sll(14, 14, 3)
                b.add(14, 14, 15)
                b.st(r1, 14, 0)
            elif kind == "branch":
                label_count += 1
                skip = "skip_%d" % label_count
                b.ldi(14, 1)
                b.and_(14, r1, 14)
                b.beq(14, skip)
                b.lda(r2, r2, 1)
                b.label(skip)
            elif kind == "chain":
                b.mul(r1, r1, r1)
                b.lda(r1, r1, 1)
        b.lda(counter, counter, -1)
        b.bne(counter, loop)
    b.halt()
    b.end_function()
    return b.build(entry="main")


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(bodies=st.lists(_bodies, min_size=1, max_size=3),
       iterations=st.integers(min_value=1, max_value=12))
def test_ooo_core_matches_interpreter(bodies, iterations):
    program = build_random_program(bodies, iterations)
    ref = Interpreter(program)
    ref.run_to_halt(max_instructions=200_000)

    core = OutOfOrderCore(program)
    core.run(max_cycles=500_000)
    assert core.halted, "core failed to finish a terminating program"
    assert core.architectural_registers() == ref.state.regs.snapshot()
    for addr, value in ref.state.memory.snapshot().items():
        assert core.memory.read(addr) == value
    assert core.retired == ref.retired


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(bodies=st.lists(_bodies, min_size=1, max_size=2),
       iterations=st.integers(min_value=1, max_value=8))
def test_inorder_core_matches_interpreter(bodies, iterations):
    program = build_random_program(bodies, iterations)
    ref = Interpreter(program)
    ref.run_to_halt(max_instructions=100_000)

    core = InOrderCore(program)
    core.run()
    assert core.architectural_registers() == ref.state.regs.snapshot()
    assert core.retired == ref.retired


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(bodies=st.lists(_bodies, min_size=1, max_size=2),
       iterations=st.integers(min_value=1, max_value=8),
       rob=st.sampled_from([8, 16, 48]),
       iq=st.sampled_from([4, 8]))
def test_ooo_correct_under_tight_resources(bodies, iterations, rob, iq):
    """Correctness must not depend on window sizes."""
    from repro.cpu.config import MachineConfig

    program = build_random_program(bodies, iterations)
    ref = Interpreter(program)
    ref.run_to_halt(max_instructions=100_000)

    config = MachineConfig.alpha21264_like(rob_entries=rob, iq_entries=iq,
                                           phys_regs=40, lsq_entries=6)
    core = OutOfOrderCore(program, config=config)
    core.run(max_cycles=500_000)
    assert core.halted
    assert core.architectural_registers() == ref.state.regs.snapshot()
