"""Tests for the in-order core model."""

import pytest

from repro.cpu.inorder.core import InOrderCore
from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.probes import Probe
from repro.isa.interpreter import Interpreter

from tests.conftest import counting_loop


class RetireWatcher(Probe):
    def __init__(self):
        self.retired = []

    def on_retire(self, dyninst, cycle):
        self.retired.append((dyninst, cycle))


def test_architectural_state_matches_interpreter(memory_program):
    core = InOrderCore(memory_program)
    core.run()
    ref = Interpreter(memory_program)
    ref.run_to_halt()
    assert core.architectural_registers() == ref.state.regs.snapshot()


def test_retire_stream_in_order_with_monotonic_cycles(call_program):
    core = InOrderCore(call_program)
    watcher = core.add_probe(RetireWatcher())
    core.run()
    cycles = [cycle for _, cycle in watcher.retired]
    assert cycles == sorted(cycles)
    seqs = [d.seq for d, _ in watcher.retired]
    assert seqs == sorted(seqs)


def test_in_order_never_out_of_order_issue(memory_program):
    core = InOrderCore(memory_program)
    watcher = core.add_probe(RetireWatcher())
    core.run()
    issues = [d.issue_cycle for d, _ in watcher.retired]
    assert issues == sorted(issues)


def test_dependent_chain_slower_than_independent():
    def serial(b):
        for _ in range(8):
            b.mul(4, 4, 4)

    def parallel(b):
        for reg in range(4, 12):
            b.lda(reg, reg, 1)

    slow = InOrderCore(counting_loop(iterations=50, body=serial))
    slow_cycles = slow.run()
    fast = InOrderCore(counting_loop(iterations=50, body=parallel))
    fast_cycles = fast.run()
    assert slow_cycles > 2 * fast_cycles


def test_out_of_order_beats_in_order_on_miss_overlap():
    """The motivating observation: OoO hides independent miss latency."""
    from repro.workloads import fig7_three_loops

    program, _ = fig7_three_loops(iterations=50)
    inorder = InOrderCore(program)
    inorder_cycles = inorder.run()
    ooo = OutOfOrderCore(program)
    ooo_cycles = ooo.run()
    assert ooo_cycles < inorder_cycles


def test_max_retired_limit(tiny_program):
    core = InOrderCore(tiny_program)
    core.run(max_retired=3)
    assert core.retired == 3
    assert not core.halted


def test_mispredict_penalty_counted(tiny_program):
    core = InOrderCore(tiny_program)
    core.run()
    assert core.mispredicts >= 1


def test_ipc_reported(tiny_program):
    core = InOrderCore(tiny_program)
    core.run()
    assert 0 < core.ipc <= core.config.issue_width
