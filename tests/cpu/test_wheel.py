"""Unit tests for the completion event wheel.

The wheel replaces a dict keyed by absolute cycle that was sorted on
every drain; correctness here means: events come back exactly at their
due cycle, never early, never lost — including latencies beyond the
ring size (the overflow path) and slot collisions (due cycles that are
``size`` apart share a ring slot).
"""

from repro.cpu.ooo.wheel import EventWheel


def collect(wheel, start, cycles):
    """pop_due every cycle like the core does; return {cycle: items}."""
    seen = {}
    for cycle in range(start, start + cycles):
        items = wheel.pop_due(cycle)
        if items:
            seen[cycle] = items
    return seen


class TestSchedulePop:
    def test_same_cycle_items_pop_together_in_order(self):
        wheel = EventWheel()
        wheel.schedule(5, 0, "a")
        wheel.schedule(5, 0, "b")
        assert collect(wheel, 0, 10) == {5: ["a", "b"]}
        assert not wheel

    def test_nothing_pops_early_or_twice(self):
        wheel = EventWheel()
        wheel.schedule(3, 1, "x")
        assert not wheel.pop_due(2)
        assert list(wheel.pop_due(3)) == ["x"]
        assert not wheel.pop_due(3)

    def test_latency_beyond_ring_size_uses_overflow(self):
        wheel = EventWheel(size=8)
        wheel.schedule(100, 0, "far")
        wheel.schedule(4, 0, "near")
        seen = collect(wheel, 0, 120)
        assert seen == {4: ["near"], 100: ["far"]}

    def test_slot_collision_one_ring_apart(self):
        # Dues 3 and 11 with size 8 map to the same slot; the earlier
        # one must not surface the later one.
        wheel = EventWheel(size=8)
        wheel.schedule(3, 0, "first")
        # Scheduled at now=3 for due 11: distance 8 == size -> overflow.
        wheel.schedule(11, 3, "second")
        seen = collect(wheel, 0, 20)
        assert seen == {3: ["first"], 11: ["second"]}

    def test_bool_reflects_pending_items(self):
        wheel = EventWheel()
        assert not wheel
        wheel.schedule(2, 0, "a")
        assert wheel
        wheel.pop_due(2)
        assert not wheel
        wheel.schedule(1000, 0, "overflowed")
        assert wheel


class TestDrainClear:
    def test_drain_ordered_sorts_by_due(self):
        wheel = EventWheel(size=8)
        wheel.schedule(30, 0, "late")
        wheel.schedule(2, 0, "early")
        wheel.schedule(5, 0, "mid")
        assert [(due, item) for due, item in wheel.drain_ordered()] \
            == [(2, "early"), (5, "mid"), (30, "late")]
        # Draining inspects without consuming; the core clears after.
        wheel.clear()
        assert not wheel

    def test_clear_empties_ring_and_overflow(self):
        wheel = EventWheel(size=8)
        wheel.schedule(2, 0, "a")
        wheel.schedule(500, 0, "b")
        wheel.clear()
        assert not wheel
        assert collect(wheel, 0, 510) == {}

    def test_stress_random_latencies_deliver_exactly_once(self):
        # Deterministic pseudo-random mix crossing the ring boundary.
        wheel = EventWheel(size=16)
        expected = {}
        state = 12345
        for now in range(200):
            state = (1103515245 * state + 12345) % (2 ** 31)
            latency = 1 + state % 40
            due = now + latency
            expected.setdefault(due, []).append((now, due))
            wheel.schedule(due, now, (now, due))
            for item in wheel.pop_due(now):
                assert item in expected[now]
                expected[now].remove(item)
        for cycle in range(200, 260):
            for item in wheel.pop_due(cycle):
                expected[cycle].remove(item)
        assert all(not items for items in expected.values())
        assert not wheel
