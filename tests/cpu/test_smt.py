"""Tests for the SMT machine model."""

import pytest

from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.smt import SmtCore, smt_speedup
from repro.errors import ConfigError
from repro.harness import ProfileMeDriver
from repro.isa.interpreter import Interpreter
from repro.analysis.database import ProfileDatabase
from repro.profileme.unit import ProfileMeConfig, ProfileMeUnit
from repro.workloads import classic_kernel, suite_program

from tests.conftest import counting_loop


class TestCorrectness:
    def test_each_context_matches_interpreter(self):
        programs = [suite_program("compress", scale=1),
                    suite_program("li", scale=1)]
        smt = SmtCore(programs)
        smt.run()
        for core in smt.threads:
            ref = Interpreter(core.program)
            ref.run_to_halt()
            assert (core.architectural_registers()
                    == ref.state.regs.snapshot())
            assert core.retired == ref.retired

    def test_single_context_smt_equals_plain_core(self):
        program = counting_loop(iterations=500)
        smt = SmtCore([program], partition=False)
        smt_cycles = smt.run()
        plain = OutOfOrderCore(program)
        plain_cycles = plain.run()
        assert smt.threads[0].retired == plain.retired
        # Identical machine, identical schedule.
        assert smt_cycles == plain_cycles

    def test_four_contexts(self):
        programs = [counting_loop(iterations=200 + 50 * i)
                    for i in range(4)]
        smt = SmtCore(programs)
        smt.run()
        assert smt.halted
        for index, core in enumerate(smt.threads):
            assert core.retired == 2 + (200 + 50 * index) * 3 + 1

    def test_context_count_validated(self):
        with pytest.raises(ConfigError):
            SmtCore([])
        with pytest.raises(ConfigError):
            SmtCore([counting_loop()] * 5)


class TestSharing:
    def test_caches_and_predictor_shared(self):
        programs = [counting_loop(iterations=100),
                    counting_loop(iterations=100)]
        smt = SmtCore(programs)
        assert smt.threads[0].hierarchy is smt.threads[1].hierarchy
        assert smt.threads[0].predictor is smt.threads[1].predictor

    def test_windows_partitioned(self):
        programs = [counting_loop(iterations=50),
                    counting_loop(iterations=50)]
        smt = SmtCore(programs)
        assert (smt.threads[0].config.rob_entries
                <= smt.config.rob_entries // 2)

    def test_complementary_threads_speed_up(self):
        """The classic SMT result: memory-bound + compute-bound overlap."""
        mem, _ = classic_kernel("pointer_chase", nodes=8192, hops=3000)
        cpu_prog, _ = classic_kernel("daxpy", n=1200)
        smt_cycles, serial_cycles, speedup = smt_speedup([mem, cpu_prog])
        assert speedup > 1.4

    def test_identical_compute_threads_contend(self):
        """Two copies of a machine-saturating thread cannot both run at
        full speed: the shared issue slots bound the gain."""
        program = counting_loop(
            iterations=400,
            body=lambda b: [b.lda(r, r, 1) for r in range(4, 12)])
        smt_cycles, serial_cycles, speedup = smt_speedup(
            [program, program])
        assert speedup < 1.5


class TestProfileMeOnSmt:
    def test_one_unit_attributes_across_contexts(self):
        programs = [suite_program("compress", scale=1),
                    suite_program("go", scale=1)]
        smt = SmtCore(programs)
        driver = ProfileMeDriver()
        database = driver.add_sink(ProfileDatabase())
        smt.add_probe(ProfileMeUnit(
            ProfileMeConfig(mean_interval=40, seed=7),
            handler=driver.handle_interrupt))
        smt.run()

        contexts = {r.context for r in driver.all_single_records()}
        assert contexts == {0, 1}
        # Attribution is consistent: a record's PC must be valid in its
        # context's program.
        for record in driver.all_single_records():
            if record.op is None:
                continue
            program = programs[record.context]
            assert program.contains_pc(record.pc)
        # Sample shares roughly track fetch shares.
        by_context = {0: 0, 1: 0}
        for record in driver.all_single_records():
            by_context[record.context] += 1
        fetch_share = (smt.threads[0].fetched
                       / (smt.threads[0].fetched + smt.threads[1].fetched))
        sample_share = by_context[0] / sum(by_context.values())
        assert abs(sample_share - fetch_share) < 0.1
