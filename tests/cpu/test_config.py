"""Tests for machine configuration validation."""

import pytest

from repro.cpu.config import FunctionalUnits, MachineConfig
from repro.errors import ConfigError


def test_default_config_valid():
    config = MachineConfig.alpha21264_like()
    assert config.fetch_width == 4
    assert config.rob_entries == 80
    assert config.max_inflight > config.rob_entries


def test_inorder_preset():
    config = MachineConfig.alpha21164_like()
    assert config.issue_width == 4
    assert config.name == "alpha21164-like"


def test_overrides():
    config = MachineConfig.alpha21264_like(rob_entries=16)
    assert config.rob_entries == 16


def test_rejects_no_rename_headroom():
    with pytest.raises(ConfigError):
        MachineConfig(phys_regs=33)


def test_rejects_zero_width():
    with pytest.raises(ConfigError):
        MachineConfig(fetch_width=0)


def test_rejects_negative_penalty():
    with pytest.raises(ConfigError):
        MachineConfig(mispredict_penalty=-1)


def test_functional_units_validated():
    with pytest.raises(ConfigError):
        FunctionalUnits(ialu=0)


def test_config_frozen():
    config = MachineConfig()
    with pytest.raises(AttributeError):
        config.rob_entries = 5
