"""Tests for the combined memory hierarchy."""

import pytest

from repro.events import Event
from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(HierarchyConfig())


class TestDataSide:
    def test_cold_load_misses_everywhere(self, hierarchy):
        latency, events = hierarchy.dread(0x10000)
        assert events & Event.DCACHE_MISS
        assert events & Event.DTB_MISS
        assert events & Event.L2_MISS
        assert latency >= hierarchy.config.memory_latency

    def test_warm_load_hits_fast(self, hierarchy):
        hierarchy.dread(0x10000)
        latency, events = hierarchy.dread(0x10000)
        assert events == Event.NONE
        assert latency == hierarchy.config.l1_hit_latency

    def test_l2_hit_between(self, hierarchy):
        hierarchy.dread(0x10000)
        # Evict from tiny L1 by touching enough conflicting lines.
        small = MemoryHierarchy(HierarchyConfig(
            l1d=CacheConfig(name="l1d", size_bytes=128, line_bytes=64,
                            associativity=1)))
        small.dread(0)  # miss both
        small.dread(128)  # evicts line 0 from L1, L2 keeps it
        latency, events = small.dread(0)
        assert events & Event.DCACHE_MISS
        assert not events & Event.L2_MISS
        assert latency == (small.config.l1_hit_latency
                           + small.config.l2_hit_latency)

    def test_store_events(self, hierarchy):
        latency, events = hierarchy.dwrite(0x20000)
        assert events & Event.DCACHE_MISS
        latency2, events2 = hierarchy.dwrite(0x20000)
        assert events2 == Event.NONE
        assert latency2 == 1


class TestInstructionSide:
    def test_cold_fetch_misses(self, hierarchy):
        latency, events = hierarchy.ifetch(0)
        assert events & Event.ICACHE_MISS
        assert events & Event.ITB_MISS
        assert latency > 0

    def test_warm_fetch_free(self, hierarchy):
        hierarchy.ifetch(0)
        latency, events = hierarchy.ifetch(0)
        assert latency == 0
        assert events == Event.NONE


def test_stats_shape(hierarchy):
    hierarchy.ifetch(0)
    hierarchy.dread(0)
    stats = hierarchy.stats()
    assert set(stats) == {"l1i", "l1d", "l2", "itlb", "dtlb"}
    assert stats["l1d"] == (0, 1)
