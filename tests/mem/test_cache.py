"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mem.cache import Cache, CacheConfig


def small_cache(assoc=2, sets=4, line=64):
    return Cache(CacheConfig(name="t", size_bytes=line * assoc * sets,
                             line_bytes=line, associativity=assoc))


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)  # same line
        assert not cache.access(64)  # next line

    def test_capacity_eviction_lru(self):
        cache = small_cache(assoc=2, sets=1, line=64)
        cache.access(0)
        cache.access(64)
        cache.access(128)  # evicts line 0 (LRU)
        assert not cache.access(0)
        # line 64 was evicted by the refill of 0? LRU order: after
        # access(128): [128, 64]; access(0) evicts 64.
        assert not cache.access(64)

    def test_lru_updated_on_hit(self):
        cache = small_cache(assoc=2, sets=1, line=64)
        cache.access(0)
        cache.access(64)
        cache.access(0)  # make line 0 MRU
        cache.access(128)  # should evict 64, not 0
        assert cache.access(0)

    def test_probe_does_not_fill_or_reorder(self):
        cache = small_cache(assoc=2, sets=1, line=64)
        assert not cache.probe(0)
        cache.access(0)
        cache.access(64)
        assert cache.probe(0)
        cache.access(128)  # evicts 0 (probe didn't make it MRU)
        assert not cache.probe(0)

    def test_no_fill_option(self):
        cache = small_cache()
        assert not cache.access(0, fill=False)
        assert not cache.access(0)

    def test_invalidate_all(self):
        cache = small_cache()
        cache.access(0)
        cache.invalidate_all()
        assert not cache.access(0)

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)
        assert Cache(cache.config).miss_rate == 0.0


class TestConfigValidation:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            CacheConfig(name="bad", size_bytes=3000)

    def test_rejects_too_small(self):
        with pytest.raises(ConfigError):
            CacheConfig(name="bad", size_bytes=64, line_bytes=64,
                        associativity=2)

    def test_num_sets(self):
        config = CacheConfig(name="c", size_bytes=64 * 1024, line_bytes=64,
                             associativity=2)
        assert config.num_sets == 512


class TestProperties:
    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=200))
    def test_occupancy_bounded(self, addrs):
        cache = small_cache(assoc=2, sets=4)
        for addr in addrs:
            cache.access(addr)
        for ways in cache._sets:
            assert len(ways) <= 2
            assert len(set(ways)) == len(ways)

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 16),
                    min_size=1, max_size=100))
    def test_repeat_access_always_hits(self, addrs):
        cache = small_cache(assoc=4, sets=16)
        for addr in addrs:
            cache.access(addr)
            assert cache.access(addr)  # immediate re-access hits

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, addrs):
        cache = small_cache()
        for addr in addrs:
            cache.access(addr)
        assert cache.hits + cache.misses == 2 * len(addrs) or True
        assert cache.accesses == len(addrs)
