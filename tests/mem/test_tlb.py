"""Tests for the TLB model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mem.tlb import Tlb, TlbConfig


def test_same_page_hits():
    tlb = Tlb(TlbConfig(name="t", entries=4, page_bytes=8192))
    assert not tlb.access(0)
    assert tlb.access(8191)
    assert not tlb.access(8192)


def test_lru_eviction():
    tlb = Tlb(TlbConfig(name="t", entries=2, page_bytes=8192))
    tlb.access(0 * 8192)
    tlb.access(1 * 8192)
    tlb.access(0)  # page 0 MRU
    tlb.access(2 * 8192)  # evicts page 1
    assert tlb.access(0)
    assert not tlb.access(1 * 8192)


def test_page_of():
    tlb = Tlb(TlbConfig(name="t", entries=2, page_bytes=8192))
    assert tlb.page_of(0) == 0
    assert tlb.page_of(8192) == 1
    assert tlb.page_of(8191) == 0


def test_invalidate_all():
    tlb = Tlb(TlbConfig(name="t", entries=2))
    tlb.access(0)
    tlb.invalidate_all()
    assert not tlb.access(0)


def test_config_validation():
    with pytest.raises(ConfigError):
        TlbConfig(name="bad", entries=0)
    with pytest.raises(ConfigError):
        TlbConfig(name="bad", page_bytes=1000)


@settings(max_examples=30)
@given(st.lists(st.integers(min_value=0, max_value=1 << 24),
                min_size=1, max_size=100))
def test_occupancy_bounded(addrs):
    tlb = Tlb(TlbConfig(name="t", entries=8))
    for addr in addrs:
        tlb.access(addr)
    assert len(tlb._pages) <= 8
    assert tlb.accesses == len(addrs)
