"""Tests for the event-counter baseline (section 2.2 behaviours)."""

import pytest
from collections import Counter

from repro.counters.counter import (CounterConfig, CounterEvent,
                                    EventCounter)
from repro.errors import ConfigError
from repro.harness import run_with_counter
from repro.workloads import fig2_loop

from tests.conftest import counting_loop


def _memory_loop():
    def body(b):
        b.ld(4, 2, 0)

    from repro.isa.builder import ProgramBuilder

    b = ProgramBuilder(name="ldloop")
    b.alloc("x", 1, init=[5])
    b.begin_function("main")
    b.ldi(1, 60)
    b.li_addr(2, "x")
    b.label("loop")
    b.ld(4, 2, 0)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main")


class TestCounting:
    def test_counts_dcache_refs(self):
        program = _memory_loop()
        core, counter = run_with_counter(
            program, CounterConfig(event=CounterEvent.DCACHE_REF, period=5))
        # 60 loads issued on the good path, plus wrong-path loads.
        assert counter.events_counted >= 60
        assert counter.overflows >= 10

    def test_retired_inst_event(self, tiny_program):
        core, counter = run_with_counter(
            tiny_program,
            CounterConfig(event=CounterEvent.RETIRED_INST, period=10))
        assert counter.events_counted == core.retired

    def test_samples_have_ground_truth(self):
        program = _memory_loop()
        _, counter = run_with_counter(
            program, CounterConfig(event=CounterEvent.DCACHE_REF, period=4))
        assert counter.samples
        for sample in counter.samples:
            assert sample.delivered_cycle >= (sample.event_cycle
                                              + counter.config.skid_cycles)

    def test_period_validation(self):
        with pytest.raises(ConfigError):
            CounterConfig(event=CounterEvent.DCACHE_REF, period=0)
        with pytest.raises(ConfigError):
            CounterConfig(event=CounterEvent.DCACHE_REF, period=5,
                          skid_cycles=-1)


class TestAttribution:
    def test_inorder_attribution_is_sharp(self):
        program, load_pc = fig2_loop(iterations=150, nop_count=100)
        _, counter = run_with_counter(
            program,
            CounterConfig(event=CounterEvent.DCACHE_REF, period=7,
                          skid_cycles=6),
            core_kind="inorder")
        offsets = Counter(s.delivered_pc - load_pc for s in counter.samples)
        assert len(offsets) == 1  # one sharp peak
        (offset, _), = offsets.items()
        assert offset > 0  # ... and it is NOT at the causing instruction

    def test_ooo_attribution_is_smeared(self):
        program, load_pc = fig2_loop(iterations=150, nop_count=100)
        _, counter = run_with_counter(
            program,
            CounterConfig(event=CounterEvent.DCACHE_REF, period=7,
                          skid_cycles=6, skid_jitter_cycles=8),
            core_kind="ooo")
        offsets = Counter(s.delivered_pc - load_pc for s in counter.samples)
        assert len(offsets) >= 4  # spread over many instructions
        peak = max(offsets.values()) / len(counter.samples)
        assert peak < 0.6

    def test_never_attributes_to_causing_instruction(self):
        program, load_pc = fig2_loop(iterations=100, nop_count=50)
        for kind in ("inorder", "ooo"):
            _, counter = run_with_counter(
                program,
                CounterConfig(event=CounterEvent.DCACHE_REF, period=5),
                core_kind=kind)
            assert counter.samples
            assert all(s.delivered_pc != s.event_pc
                       for s in counter.samples)


class TestBlindSpots:
    def test_uninterruptible_range_defers_delivery(self):
        program, load_pc = fig2_loop(iterations=150, nop_count=100)
        # Block delivery across the whole loop body: samples pile up
        # beyond it (section 2.2's "blind spots").
        blocked = [(0, program.pc_limit - 8)]
        _, counter = run_with_counter(
            program,
            CounterConfig(event=CounterEvent.DCACHE_REF, period=6),
            uninterruptible=blocked)
        for sample in counter.samples:
            assert sample.delivered_pc >= program.pc_limit - 8

    def test_fully_blocked_delivers_nothing(self):
        program, _ = fig2_loop(iterations=50, nop_count=20)
        _, counter = run_with_counter(
            program,
            CounterConfig(event=CounterEvent.DCACHE_REF, period=6),
            uninterruptible=[(0, program.pc_limit)])
        assert counter.samples == []
        assert counter.overflows > 0
