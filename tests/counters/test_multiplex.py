"""Tests for time-multiplexed event counters."""

import pytest

from repro.counters.counter import CounterEvent
from repro.counters.multiplex import MultiplexConfig, MultiplexedCounters
from repro.cpu.ooo.core import OutOfOrderCore
from repro.errors import ConfigError
from repro.isa.builder import ProgramBuilder

from tests.conftest import counting_loop


def phased_program(phase_a_iters=400, phase_b_iters=400):
    """Phase A: D-cache-miss heavy; phase B: mispredict heavy.

    The event kinds are anti-correlated in time — the worst case for
    multiplexing, the trivial case for ProfileMe.
    """
    b = ProgramBuilder(name="phased")
    b.alloc("arr", 65536)
    b.begin_function("main")
    # Phase A: strided loads (misses, no mispredicts).
    b.ldi(1, phase_a_iters)
    b.li_addr(2, "arr")
    b.label("phase_a")
    b.ld(4, 2, 0)
    b.lda(2, 2, 64)
    b.lda(1, 1, -1)
    b.bne(1, "phase_a")
    # Phase B: LCG-random branches (mispredicts, no memory traffic).
    b.ldi(1, phase_b_iters)
    b.ldi(16, 777)
    b.ldi(27, 6364136223846793005)
    b.ldi(28, 1442695040888963407)
    b.label("phase_b")
    b.mul(16, 16, 27)
    b.add(16, 16, 28)
    b.srl(4, 16, 33)
    b.ldi(5, 1)
    b.and_(4, 4, 5)
    b.beq(4, "b_skip")
    b.lda(6, 6, 1)
    b.label("b_skip")
    b.lda(1, 1, -1)
    b.bne(1, "phase_b")
    b.halt()
    b.end_function()
    return b.build(entry="main")


EVENTS = (CounterEvent.DCACHE_MISS, CounterEvent.BRANCH_MISPREDICT,
          CounterEvent.DCACHE_REF, CounterEvent.RETIRED_INST)


def run_multiplexed(program, rotation=500, physical=1):
    core = OutOfOrderCore(program)
    counters = core.add_probe(MultiplexedCounters(MultiplexConfig(
        events=EVENTS, physical_counters=physical,
        rotation_cycles=rotation)))
    core.run()
    return core, counters


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MultiplexConfig(events=())
        with pytest.raises(ConfigError):
            MultiplexConfig(events=EVENTS, physical_counters=0)
        with pytest.raises(ConfigError):
            MultiplexConfig(events=(CounterEvent.DCACHE_REF,) * 2)

    def test_fully_covered(self):
        assert MultiplexConfig(events=EVENTS,
                               physical_counters=4).fully_covered
        assert not MultiplexConfig(events=EVENTS,
                                   physical_counters=2).fully_covered


class TestCounting:
    def test_fully_covered_counts_exactly(self):
        program = counting_loop(iterations=600)
        core, counters = run_multiplexed(program, physical=len(EVENTS))
        assert (counters.counts[CounterEvent.RETIRED_INST]
                == core.retired)
        assert (counters.estimate(CounterEvent.RETIRED_INST)
                == core.retired)

    def test_duty_cycles_split_fairly(self):
        program = counting_loop(iterations=2000)
        _, counters = run_multiplexed(program, rotation=100, physical=1)
        fractions = [counters.active_cycles[e] / counters.total_cycles
                     for e in EVENTS]
        for fraction in fractions:
            assert 0.1 < fraction < 0.5  # ~1/4 each

    def test_stationary_event_estimated_well(self):
        # Retired instructions flow steadily: multiplexing works fine.
        program = counting_loop(iterations=4000)
        core, counters = run_multiplexed(program, rotation=100, physical=1)
        estimate = counters.estimate(CounterEvent.RETIRED_INST)
        assert abs(estimate / core.retired - 1.0) < 0.25

    def test_phased_events_misestimated(self):
        """The section 2.2 failure mode: phase-aliased rotation."""
        from repro.analysis.groundtruth import GroundTruthCollector
        from repro.events import Event

        program = phased_program()
        core = OutOfOrderCore(program)
        truth = core.add_probe(GroundTruthCollector())
        # Rotation so slow each event kind is watched in one long slice:
        # whichever slice misses phase A sees (almost) no D-misses.
        counters = core.add_probe(MultiplexedCounters(MultiplexConfig(
            events=EVENTS, physical_counters=1, rotation_cycles=4000)))
        core.run()

        true_misses = sum(t.count_event(Event.DCACHE_MISS)
                          for t in truth.per_pc.values())
        estimate = counters.estimate(CounterEvent.DCACHE_MISS)
        assert true_misses > 300
        error = abs(estimate / true_misses - 1.0)
        assert error > 0.5  # badly wrong on phased behaviour

    def test_profileme_handles_the_same_phases(self):
        """ProfileMe sees every event kind in one run, phases and all."""
        from repro.analysis.convergence import effective_interval
        from repro.events import Event
        from repro.harness import run_profiled
        from repro.profileme.unit import ProfileMeConfig

        # Larger phases so the miss-sample count escapes small-k noise
        # (k ~ misses/S; 1/sqrt(k) needs k >= ~30 for a 30% bound), and
        # replicated register sets so the miss-heavy phase's long sample
        # flights don't cause correlated selection drops.
        program = phased_program(phase_a_iters=1500, phase_b_iters=1500)
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=40,
                                                   register_sets=4,
                                                   seed=3),
                           collect_truth=True)
        s_eff = effective_interval(run.truth.total_fetched,
                                   run.database.total_samples)
        true_misses = sum(t.count_event(Event.DCACHE_MISS)
                          for t in run.truth.per_pc.values())
        sampled = sum(p.event_count(Event.DCACHE_MISS)
                      for p in run.database.per_pc.values())
        estimate = sampled * s_eff
        assert abs(estimate / true_misses - 1.0) < 0.3
