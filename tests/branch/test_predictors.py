"""Tests for branch predictors, BTB and RAS."""

import pytest

from repro.branch.predictors import (BranchPredictor, BranchTargetBuffer,
                                     GshareDirectionPredictor,
                                     PredictorConfig, ReturnAddressStack)
from repro.errors import ConfigError


class TestGshare:
    def test_learns_always_taken(self):
        predictor = GshareDirectionPredictor(PredictorConfig())
        for _ in range(4):
            predictor.train(0x100, 0, True)
        assert predictor.predict(0x100, 0)

    def test_learns_always_not_taken(self):
        predictor = GshareDirectionPredictor(PredictorConfig())
        for _ in range(4):
            predictor.train(0x100, 0, False)
        assert not predictor.predict(0x100, 0)

    def test_history_disambiguates_alternating_branch(self):
        """With history, a strictly alternating branch becomes predictable."""
        predictor = GshareDirectionPredictor(PredictorConfig())
        history = 0
        # Train: outcome = opposite of last outcome.
        outcome = True
        for _ in range(64):
            predictor.train(0x200, history, outcome)
            history = ((history << 1) | int(outcome)) & 0xFFF
            outcome = not outcome
        correct = 0
        for _ in range(32):
            if predictor.predict(0x200, history) == outcome:
                correct += 1
            predictor.train(0x200, history, outcome)
            history = ((history << 1) | int(outcome)) & 0xFFF
            outcome = not outcome
        assert correct == 32

    def test_counters_saturate(self):
        predictor = GshareDirectionPredictor(PredictorConfig())
        for _ in range(100):
            predictor.train(0, 0, True)
        predictor.train(0, 0, False)
        assert predictor.predict(0, 0)  # one not-taken doesn't flip

    def test_accuracy_tracking(self):
        predictor = GshareDirectionPredictor(PredictorConfig())
        predictor.record_outcome(True)
        predictor.record_outcome(False)
        assert predictor.accuracy == pytest.approx(0.5)
        assert GshareDirectionPredictor(PredictorConfig()).accuracy == 0.0


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64)
        assert btb.predict(0x40) is None
        btb.train(0x40, 0x800)
        assert btb.predict(0x40) == 0x800

    def test_aliasing_replaces(self):
        btb = BranchTargetBuffer(4)
        btb.train(0x0, 0x100)
        btb.train(0x0 + 4 * 4, 0x200)  # same index, different tag
        assert btb.predict(0x0) is None
        assert btb.predict(0x10) == 0x200

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            BranchTargetBuffer(3)


class TestRas:
    def test_lifo_order(self):
        ras = ReturnAddressStack(8)
        ras.push(0x10)
        ras.push(0x20)
        assert ras.pop() == 0x20
        assert ras.pop() == 0x10
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_single_entry_keeps_newest(self):
        ras = ReturnAddressStack(1)
        ras.push(0xA)
        ras.push(0xB)
        assert ras.pop() == 0xB
        assert ras.pop() is None

    def test_deep_overflow_keeps_last_n(self):
        ras = ReturnAddressStack(4)
        for address in range(100):
            ras.push(address)
        assert [ras.pop() for _ in range(5)] == [99, 98, 97, 96, None]

    def test_interleaved_push_pop_after_overflow(self):
        # Overflow must not disturb subsequent LIFO behaviour.
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # drops 1
        assert ras.pop() == 3
        ras.push(4)
        assert ras.pop() == 4
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigError):
            ReturnAddressStack(0)


class TestFacade:
    def test_bundles_components(self):
        predictor = BranchPredictor()
        predictor.train_conditional(0x10, 0, True, was_correct=True)
        assert predictor.direction.lookups == 1
        predictor.train_indirect(0x20, 0x400)
        assert predictor.predict_indirect(0x20) == 0x400

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            PredictorConfig(history_bits=0)
