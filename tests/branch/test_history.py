"""Tests for the global branch-history register."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.branch.history import GlobalHistoryRegister, history_bits_list


def test_push_shifts_lsb_first():
    ghr = GlobalHistoryRegister(bits=4)
    ghr.push(True)
    ghr.push(False)
    ghr.push(True)
    # Most recent in bit 0: taken, not-taken, taken -> 0b101
    assert ghr.value == 0b101


def test_width_masked():
    ghr = GlobalHistoryRegister(bits=3)
    for _ in range(10):
        ghr.push(True)
    assert ghr.value == 0b111
    assert ghr.shifted == 10


def test_snapshot_restore():
    ghr = GlobalHistoryRegister(bits=8)
    ghr.push(True)
    snap = ghr.snapshot()
    ghr.push(False)
    ghr.push(False)
    ghr.restore(snap)
    assert ghr.value == 1
    assert ghr.shifted == 1


def test_low_bits():
    ghr = GlobalHistoryRegister(bits=8)
    for taken in (True, True, False, True):
        ghr.push(taken)
    assert ghr.low_bits(2) == 0b01
    assert ghr.low_bits(4) == 0b1101  # newest direction in bit 0
    with pytest.raises(ValueError):
        ghr.low_bits(9)


def test_history_bits_list():
    assert history_bits_list(0b1011, 4) == [1, 1, 0, 1]


def test_rejects_zero_bits():
    with pytest.raises(ValueError):
        GlobalHistoryRegister(bits=0)


@given(st.lists(st.booleans(), min_size=1, max_size=64))
def test_value_matches_reference(directions):
    ghr = GlobalHistoryRegister(bits=16)
    expected = 0
    for taken in directions:
        ghr.push(taken)
        expected = ((expected << 1) | int(taken)) & 0xFFFF
    assert ghr.value == expected
