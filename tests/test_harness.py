"""Tests for the one-call simulation harness."""

import pytest

from repro.errors import ConfigError
from repro.harness import make_core, run_profiled, run_with_counter
from repro.counters.counter import CounterConfig, CounterEvent
from repro.cpu.inorder.core import InOrderCore
from repro.cpu.ooo.core import OutOfOrderCore
from repro.profileme.unit import ProfileMeConfig

from tests.conftest import counting_loop


def test_make_core_kinds(tiny_program):
    assert isinstance(make_core(tiny_program, "ooo"), OutOfOrderCore)
    assert isinstance(make_core(tiny_program, "inorder"), InOrderCore)
    with pytest.raises(ConfigError):
        make_core(tiny_program, "vliw")


def test_run_profiled_defaults(tiny_program):
    run = run_profiled(tiny_program)
    assert run.cycles > 0
    assert run.database is not None
    assert run.pair_analyzer is None


def test_run_profiled_paired_wires_analyzer(memory_program):
    run = run_profiled(memory_program, profile=ProfileMeConfig(
        mean_interval=5, paired=True, pair_window=16, seed=1))
    assert run.pair_analyzer is not None
    assert run.pair_analyzer.pairs_seen == len(run.pairs)


def test_run_profiled_truth_collection(tiny_program):
    run = run_profiled(tiny_program, collect_truth=True,
                       truth_options={"collect_retire_series": True})
    assert run.truth is not None
    assert run.truth.retire_series


def test_run_profiled_inorder(tiny_program):
    run = run_profiled(tiny_program, core_kind="inorder",
                       profile=ProfileMeConfig(mean_interval=3, seed=2))
    assert run.driver.delivered > 0


def test_keep_records_off(tiny_program):
    program = counting_loop(iterations=500)
    run = run_profiled(program, keep_records=False,
                       profile=ProfileMeConfig(mean_interval=10, seed=2))
    assert run.records == []
    assert run.database.total_samples > 0


def test_run_with_counter(tiny_program):
    core, counter = run_with_counter(
        tiny_program,
        CounterConfig(event=CounterEvent.RETIRED_INST, period=5))
    assert counter.events_counted == core.retired


def test_run_with_counter_reports_cycles(tiny_program):
    """The result carries the cycle count the old tuple silently
    dropped, while still unpacking as (core, counter)."""
    run = run_with_counter(
        tiny_program,
        CounterConfig(event=CounterEvent.RETIRED_INST, period=5))
    core, counter = run
    assert run.core is core
    assert run.counter is counter
    assert run.cycles > 0
    assert run.cycles == core.cycle


def test_max_retired_respected(tiny_program):
    run = run_profiled(counting_loop(iterations=1000), max_retired=50)
    assert run.core.retired <= 50 + run.core.config.retire_width
