"""End-to-end integration tests: miniature versions of each experiment.

Every paper figure's full pipeline is exercised here at reduced scale, so
a regression anywhere in the stack (core -> ProfileMe -> analysis) fails
fast in CI; the full-scale reproductions live in benchmarks/.
"""

from collections import Counter

import pytest

from repro.analysis.bottlenecks import instruction_metrics, rank_agreement
from repro.analysis.concurrency import ipc_variability
from repro.analysis.convergence import (convergence_points,
                                        envelope_fraction, retired_property)
from repro.analysis.pathprof import run_reconstruction_experiment
from repro.counters.counter import CounterConfig, CounterEvent
from repro.harness import run_profiled, run_with_counter
from repro.isa.interpreter import functional_trace
from repro.profileme.unit import ProfileMeConfig
from repro.utils.rng import SamplingRng
from repro.workloads import (fig2_loop, fig7_three_loops, suite_program)


class TestFig2AttributionShapes:
    """Event counters smear on OoO; ProfileMe attributes exactly."""

    @pytest.fixture(scope="class")
    def loop(self):
        return fig2_loop(iterations=200, nop_count=80)

    def test_inorder_single_peak(self, loop):
        program, load_pc = loop
        _, counter = run_with_counter(
            program, CounterConfig(event=CounterEvent.DCACHE_REF, period=7,
                                   skid_cycles=6), core_kind="inorder")
        offsets = {s.delivered_pc - load_pc for s in counter.samples}
        assert len(offsets) == 1

    def test_ooo_smear(self, loop):
        program, load_pc = loop
        _, counter = run_with_counter(
            program, CounterConfig(event=CounterEvent.DCACHE_REF, period=7,
                                   skid_cycles=6, skid_jitter_cycles=8),
            core_kind="ooo")
        offsets = Counter(s.delivered_pc - load_pc
                          for s in counter.samples)
        assert len(offsets) >= 4

    def test_profileme_attributes_exactly(self, loop):
        program, load_pc = loop
        run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=40, seed=7))
        memory_samples = [r for r in run.records
                          if r.op is not None and r.op.value == "ld"]
        assert memory_samples
        assert all(r.pc == load_pc for r in memory_samples)


class TestFig3Convergence:
    def test_estimates_converge_on_suite_member(self):
        from repro.analysis.convergence import effective_interval

        program = suite_program("compress", scale=3)
        run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=40, seed=13), collect_truth=True)
        s_eff = effective_interval(run.truth.total_fetched,
                                   run.database.total_samples)
        points = convergence_points(run.database, run.truth, s_eff,
                                    retired_property)
        hot = [p for p in points if p.matching_samples >= 40]
        assert hot
        for p in hot:
            assert abs(p.ratio - 1.0) < 0.4
        assert envelope_fraction(points) > 0.3


class TestFig6Paths:
    def test_three_scheme_ordering(self):
        program = suite_program("go", scale=1)
        trace = functional_trace(program)
        indices = list(range(300, len(trace) - 1, len(trace) // 30))
        results = run_reconstruction_experiment(
            program, trace, history_lengths=(4, 8), sample_indices=indices,
            pair_rng=SamplingRng(3))
        for bits in (4, 8):
            rates = results[bits]
            assert rates["history_bits"] >= rates["execution_counts"] - 0.1
            assert (rates["history_plus_pair"]
                    >= rates["history_bits"] - 1e-9)


class TestFig7WastedSlots:
    def test_latency_and_waste_diverge_across_loops(self):
        program, regions = fig7_three_loops(iterations=120)
        run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=30, paired=True, pair_window=96, seed=9))
        metrics = instruction_metrics(run.database, 30,
                                      pair_analyzer=run.pair_analyzer)

        def region_of(pc):
            for name, (start, end) in regions.items():
                if start <= pc < end:
                    return name
            return None

        per_region = {}
        for metric in metrics:
            name = region_of(metric.pc)
            if name and metric.wasted_slots is not None:
                latency, waste = per_region.get(name, (0.0, 0.0))
                per_region[name] = (latency + metric.total_latency,
                                    waste + max(0.0, metric.wasted_slots))
        assert set(per_region) == {"serial", "parallel", "memory"}
        # Waste per unit latency differs across loops: the serial loop
        # wastes far more slots per latency cycle than the parallel loop.
        ratio = {name: waste / latency if latency else 0.0
                 for name, (latency, waste) in per_region.items()}
        assert ratio["serial"] > ratio["parallel"]


class TestSec6IpcVariability:
    def test_windowed_ipc_varies(self):
        program = suite_program("li", scale=1)
        run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=500, seed=3), collect_truth=True,
            truth_options={"collect_retire_series": True})
        windows = run.truth.windowed_ipc(window_cycles=30)
        stats = ipc_variability(windows)
        assert stats["max_min_ratio"] >= 2.0
        assert stats["stddev_over_mean"] > 0.1


class TestOptimizationLoop:
    @staticmethod
    def _scattered_program():
        """Hot functions separated by cold pads of one I-cache span.

        On a 2 KiB direct-mapped I-cache the three hot functions all map
        onto overlapping sets when interleaved with ~2 KiB cold pads, but
        fit simultaneously once packed together.
        """
        from repro.isa.builder import ProgramBuilder

        b = ProgramBuilder(name="scattered")
        b.begin_function("main")
        b.ldi(1, 60)
        for name in ("cold_0", "cold_1", "cold_2"):
            b.jsr(name, ra=26)  # touch the cold code once
        b.label("outer")
        for name in ("hot_0", "hot_1", "hot_2"):
            b.jsr(name, ra=26)
        b.lda(1, 1, -1)
        b.bne(1, "outer")
        b.halt()
        b.end_function()
        for index in range(3):
            b.begin_function("hot_%d" % index)
            for _ in range(35):  # ~150 instructions of straight-line work
                b.add(3, 3, 1)
                b.xor(4, 4, 3)
                b.lda(5, 5, 1)
                b.or_(6, 6, 4)
            b.ret(26)
            b.end_function()
            b.begin_function("cold_%d" % index)
            b.nop(380)  # ~1.5 KiB pad, executed once
            b.ret(26)
            b.end_function()
        return b.build(entry="main")

    def test_profile_guided_layout_reduces_icache_misses(self):
        """Close the loop: profile -> reorder functions -> re-measure."""
        from repro.analysis.optimize import (layout_order_from_profile,
                                             reorder_functions)
        from repro.cpu.config import MachineConfig
        from repro.mem.cache import CacheConfig
        from repro.mem.hierarchy import HierarchyConfig

        program = self._scattered_program()
        tiny_icache = HierarchyConfig(
            l1i=CacheConfig(name="l1i", size_bytes=2048, line_bytes=64,
                            associativity=1))
        config = MachineConfig.alpha21264_like(memory=tiny_icache)

        baseline = run_profiled(program, config=config,
                                profile=ProfileMeConfig(mean_interval=20,
                                                        seed=2))
        baseline_misses = baseline.core.hierarchy.l1i.misses

        order = layout_order_from_profile(baseline.database, program)
        improved = reorder_functions(program, order)
        after = run_profiled(improved, config=config,
                             profile=ProfileMeConfig(mean_interval=20,
                                                     seed=2))
        after_misses = after.core.hierarchy.l1i.misses
        assert after.core.retired == baseline.core.retired
        assert after_misses < 0.5 * baseline_misses
