"""Tests for the command-line tool."""

import pytest

from repro.tools.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "compress" in out
    assert "kernel:dcache_miss" in out


def test_profile_kernel(capsys):
    assert main(["profile", "kernel:dep_chain", "--interval", "20",
                 "--scale", "1"]) == 0
    out = capsys.readouterr().out
    assert "instructions retired" in out
    assert "Latency registers" in out
    assert "Where have all the cycles gone?" in out


def test_profile_paired_suite(capsys):
    assert main(["profile", "compress", "--interval", "60",
                 "--paired"]) == 0
    out = capsys.readouterr().out
    assert "wasted=" in out  # bottleneck report appears with pairs


def test_profile_save_and_report(tmp_path, capsys):
    out_path = str(tmp_path / "prof.json")
    assert main(["profile", "kernel:dcache_miss", "--interval", "25",
                 "--out", out_path]) == 0
    capsys.readouterr()
    assert main(["report", out_path, "--interval", "25"]) == 0
    out = capsys.readouterr().out
    assert "profile:" in out
    assert "cycles gone" in out


def test_compare_finds_regression(tmp_path, capsys):
    """Profile a kernel and its prefetch-optimized version; `compare`
    must report the optimized build as an improvement."""
    from repro.analysis.optimize import insert_prefetches, plan_prefetches
    from repro.analysis.persistence import save_database
    from repro.harness import run_profiled
    from repro.profileme.unit import ProfileMeConfig
    from repro.workloads import stall_kernel

    # register_sets=4: at S=20 with ~85-cycle sample flights, a single
    # register set drops most selections and the load never accumulates
    # enough samples to plan from.
    config = ProfileMeConfig(mean_interval=20, register_sets=4, seed=3)
    program = stall_kernel("dcache_miss", iterations=400)
    base_run = run_profiled(program, profile=config)
    plans = plan_prefetches(program, base_run.database, lookahead=8)
    assert plans, "profile must yield a prefetch plan"
    improved = insert_prefetches(program, plans)
    improved_run = run_profiled(improved, profile=config)
    before_path = str(tmp_path / "before.json")
    after_path = str(tmp_path / "after.json")
    # Treat the OPTIMIZED profile as "before" so the diff reports the
    # unoptimized build as a regression (positive delta).
    save_database(improved_run.database, before_path)
    save_database(base_run.database, after_path)

    assert main(["compare", before_path, after_path,
                 "--interval", "20"]) == 0
    out = capsys.readouterr().out
    assert "regressions" in out
    assert "net change" in out
    net = int(out.rsplit("net change over reported PCs:", 1)[1]
              .split("estimated cycles")[0].strip().replace("+", ""))
    assert net > 0  # unoptimized costs more estimated cycles


def test_paths_command(capsys):
    assert main(["paths", "compress", "--history", "6",
                 "--samples", "30"]) == 0
    out = capsys.readouterr().out
    assert "Path reconstruction success" in out
    assert "history+pair" in out


def test_sweep_checkpoint_and_resume(tmp_path, capsys):
    store = str(tmp_path / "checkpoint")
    args = ["sweep", "kernel:dep_chain", "--intervals", "30,60",
            "--seeds", "1", "--jobs", "2"]
    assert main(args + ["--checkpoint", store]) == 0
    out = capsys.readouterr().out
    assert "checkpoint:" in out
    assert "2 ok, 0 cached" in out

    assert main(args + ["--resume", store]) == 0
    out = capsys.readouterr().out
    assert "0 ok, 2 cached" in out
    assert "cached" in out


def test_sweep_json_report_carries_status(tmp_path, capsys):
    import json

    out_path = str(tmp_path / "sweep.json")
    assert main(["sweep", "kernel:dep_chain", "--intervals", "40",
                 "--jobs", "1", "--out", out_path]) == 0
    capsys.readouterr()
    with open(out_path) as stream:
        report = json.load(stream)
    assert report["metrics"]["ok"] == 1
    assert report["runs"][0]["status"] == "ok"
    assert "spec_key" in report["runs"][0]


def test_profile_assembly_file(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text(
        ".func main\n"
        "    ldi r1, 200\n"
        "loop:\n"
        "    lda r1, r1, #-1\n"
        "    bne r1, loop\n"
        "    halt\n"
        ".endfunc\n")
    assert main(["profile", str(source), "--interval", "10"]) == 0
    out = capsys.readouterr().out
    assert "instructions retired" in out
    assert "loop@" in out  # the loop aggregation found the loop


def test_unknown_workload_errors():
    with pytest.raises(Exception):
        main(["profile", "nonexistent-workload"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
