"""Tests for the command-line tool."""

import pytest

from repro.tools.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "compress" in out
    assert "kernel:dcache_miss" in out


def test_profile_kernel(capsys):
    assert main(["profile", "kernel:dep_chain", "--interval", "20",
                 "--scale", "1"]) == 0
    out = capsys.readouterr().out
    assert "instructions retired" in out
    assert "Latency registers" in out
    assert "Where have all the cycles gone?" in out


def test_profile_paired_suite(capsys):
    assert main(["profile", "compress", "--interval", "60",
                 "--paired"]) == 0
    out = capsys.readouterr().out
    assert "wasted=" in out  # bottleneck report appears with pairs


def test_profile_save_and_report(tmp_path, capsys):
    out_path = str(tmp_path / "prof.json")
    assert main(["profile", "kernel:dcache_miss", "--interval", "25",
                 "--out", out_path]) == 0
    capsys.readouterr()
    assert main(["report", out_path, "--interval", "25"]) == 0
    out = capsys.readouterr().out
    assert "profile:" in out
    assert "cycles gone" in out


def test_compare_finds_regression(tmp_path, capsys):
    """Profile a kernel and its prefetch-optimized version; `compare`
    must report the optimized build as an improvement."""
    from repro.analysis.optimize import insert_prefetches, plan_prefetches
    from repro.analysis.persistence import save_database
    from repro.harness import run_profiled
    from repro.profileme.unit import ProfileMeConfig
    from repro.workloads import stall_kernel

    # register_sets=4: at S=20 with ~85-cycle sample flights, a single
    # register set drops most selections and the load never accumulates
    # enough samples to plan from.
    config = ProfileMeConfig(mean_interval=20, register_sets=4, seed=3)
    program = stall_kernel("dcache_miss", iterations=400)
    base_run = run_profiled(program, profile=config)
    plans = plan_prefetches(program, base_run.database, lookahead=8)
    assert plans, "profile must yield a prefetch plan"
    improved = insert_prefetches(program, plans)
    improved_run = run_profiled(improved, profile=config)
    before_path = str(tmp_path / "before.json")
    after_path = str(tmp_path / "after.json")
    # Treat the OPTIMIZED profile as "before" so the diff reports the
    # unoptimized build as a regression (positive delta).
    save_database(improved_run.database, before_path)
    save_database(base_run.database, after_path)

    assert main(["compare", before_path, after_path,
                 "--interval", "20"]) == 0
    out = capsys.readouterr().out
    assert "regressions" in out
    assert "net change" in out
    net = int(out.rsplit("net change over reported PCs:", 1)[1]
              .split("estimated cycles")[0].strip().replace("+", ""))
    assert net > 0  # unoptimized costs more estimated cycles


def test_paths_command(capsys):
    assert main(["paths", "compress", "--history", "6",
                 "--samples", "30"]) == 0
    out = capsys.readouterr().out
    assert "Path reconstruction success" in out
    assert "history+pair" in out


def test_sweep_checkpoint_and_resume(tmp_path, capsys):
    store = str(tmp_path / "checkpoint")
    args = ["sweep", "kernel:dep_chain", "--intervals", "30,60",
            "--seeds", "1", "--jobs", "2"]
    assert main(args + ["--checkpoint", store]) == 0
    out = capsys.readouterr().out
    assert "checkpoint:" in out
    assert "2 ok, 0 cached" in out

    assert main(args + ["--resume", store]) == 0
    out = capsys.readouterr().out
    assert "0 ok, 2 cached" in out
    assert "cached" in out


def test_sweep_ctrl_c_exits_130_with_resumable_checkpoint(
        tmp_path, monkeypatch, capsys):
    # Ctrl-C mid-sweep must not be swallowed anywhere: the CLI exits
    # with the conventional 130, and the chunks flushed before the
    # interrupt make --resume skip straight past the finished work.
    import repro.engine.sweep as sweep_mod

    store = str(tmp_path / "checkpoint")
    args = ["sweep", "kernel:dep_chain", "--intervals", "30,60",
            "--seeds", "1", "--jobs", "1", "--chunk-size", "1"]
    real_run_session = sweep_mod.run_session
    calls = []

    def interrupted_run_session(spec):
        calls.append(spec)
        if len(calls) == 2:
            raise KeyboardInterrupt()
        return real_run_session(spec)

    monkeypatch.setattr(sweep_mod, "run_session", interrupted_run_session)
    assert main(args + ["--checkpoint", store]) == 130
    capsys.readouterr()

    monkeypatch.setattr(sweep_mod, "run_session", real_run_session)
    assert main(args + ["--resume", store]) == 0
    out = capsys.readouterr().out
    assert "1 ok, 1 cached" in out


def test_sweep_json_report_carries_status(tmp_path, capsys):
    import json

    out_path = str(tmp_path / "sweep.json")
    assert main(["sweep", "kernel:dep_chain", "--intervals", "40",
                 "--jobs", "1", "--out", out_path]) == 0
    capsys.readouterr()
    with open(out_path) as stream:
        report = json.load(stream)
    assert report["metrics"]["ok"] == 1
    assert report["runs"][0]["status"] == "ok"
    assert "spec_key" in report["runs"][0]


def test_profile_assembly_file(tmp_path, capsys):
    source = tmp_path / "prog.s"
    source.write_text(
        ".func main\n"
        "    ldi r1, 200\n"
        "loop:\n"
        "    lda r1, r1, #-1\n"
        "    bne r1, loop\n"
        "    halt\n"
        ".endfunc\n")
    assert main(["profile", str(source), "--interval", "10"]) == 0
    out = capsys.readouterr().out
    assert "instructions retired" in out
    assert "loop@" in out  # the loop aggregation found the loop


def test_unknown_workload_exits_nonzero(capsys):
    assert main(["profile", "nonexistent-workload"]) == 2
    assert "error:" in capsys.readouterr().err


def test_handled_errors_exit_nonzero(capsys):
    assert main(["report", "/nonexistent/profile.json"]) == 2
    assert "error:" in capsys.readouterr().err
    assert main(["sweep", "kernel:dep_chain", "--intervals", "banana"]) == 2
    assert "--intervals" in capsys.readouterr().err
    assert main(["query", "127.0.0.1:1", "stats"]) == 2  # nothing listening
    assert "error:" in capsys.readouterr().err


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert out.startswith("repro ")
    assert out.split()[1][0].isdigit()  # a real version number follows


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_package_version_does_not_swallow_interrupts(monkeypatch):
    # The metadata-missing fallback must catch ImportError only: a
    # Ctrl-C landing inside the version lookup has to propagate.
    from importlib import metadata

    from repro.tools.cli import _package_version

    def interrupted(_name):
        raise KeyboardInterrupt()

    monkeypatch.setattr(metadata, "version", interrupted)
    with pytest.raises(KeyboardInterrupt):
        _package_version()


def test_bench_quick_writes_document_and_diffs(tmp_path, capsys):
    import json

    baseline_path = str(tmp_path / "baseline.json")
    assert main(["bench", "--quick", "--out", baseline_path]) == 0
    out = capsys.readouterr().out
    assert "cycles/s" in out
    with open(baseline_path) as stream:
        document = json.load(stream)
    assert document["kind"] == "repro-bench-core-throughput"
    assert document["results"]["ooo"]["compress@1"]["cycles"] > 0
    assert document["results"]["smt"]["compress+li"]["retired"] > 0

    # Same simulation vs the baseline: informational diff, exit 0.
    second_path = str(tmp_path / "second.json")
    assert main(["bench", "--quick", "--out", second_path,
                 "--baseline", baseline_path]) == 0
    assert "vs baseline" in capsys.readouterr().out

    # A cycle-count mismatch means the simulated machine changed: the
    # diff must flag it and the command exits nonzero.
    document["results"]["ooo"]["compress@1"]["cycles"] += 1
    with open(baseline_path, "w") as stream:
        json.dump(document, stream)
    assert main(["bench", "--quick", "--out", second_path,
                 "--baseline", baseline_path]) == 1
    assert "SIMULATION CHANGED" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Continuous-profiling service commands.


@pytest.fixture
def service():
    from repro.service.server import ServerThread

    with ServerThread(port=0, shards=2) as thread:
        yield thread


def test_push_and_query_roundtrip(service, capsys):
    addr = service.address
    assert main(["push", addr, "kernel:dep_chain", "--interval", "30"]) == 0
    out = capsys.readouterr().out
    assert "pushed" in out and "service now holds" in out

    assert main(["query", addr, "top", "--event", "RETIRED",
                 "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "Top PCs by RETIRED" in out

    assert main(["query", addr, "stats"]) == 0
    out = capsys.readouterr().out
    assert "samples over" in out

    assert main(["query", addr, "convergence"]) == 0
    out = capsys.readouterr().out
    assert "Convergence status" in out


def test_push_saved_database(service, tmp_path, capsys):
    from repro.analysis.persistence import save_database
    from repro.harness import run_profiled
    from repro.profileme.unit import ProfileMeConfig
    from repro.workloads import stall_kernel

    run = run_profiled(stall_kernel("dep_chain", iterations=200),
                       profile=ProfileMeConfig(mean_interval=30, seed=1))
    path = str(tmp_path / "prof.json")
    save_database(run.database, path)
    capsys.readouterr()
    assert main(["push", service.address, "--database", path]) == 0
    assert "pushed" in capsys.readouterr().out
    assert main(["query", service.address, "stats"]) == 0
    assert "samples over" in capsys.readouterr().out


def test_push_requires_workload_or_database(service, capsys):
    assert main(["push", service.address]) == 2
    assert "workload" in capsys.readouterr().err


def test_sweep_push_export_differential(service, tmp_path, capsys):
    """Acceptance criterion: the export after streaming a sweep through
    the server is byte-identical to the same specs run in-process."""
    from repro.analysis.database import ProfileDatabase
    from repro.analysis.persistence import canonical_json
    from repro.engine.session import SessionSpec, run_session
    from repro.profileme.unit import ProfileMeConfig
    from repro.workloads import stall_kernel

    addr = service.address
    assert main(["sweep", "kernel:dep_chain", "--intervals", "30,60",
                 "--jobs", "2", "--push", addr]) == 0
    capsys.readouterr()
    export_path = str(tmp_path / "served.json")
    assert main(["query", addr, "export", "--out", export_path]) == 0
    capsys.readouterr()

    merged = ProfileDatabase()
    for interval in (30, 60):
        spec = SessionSpec(program=stall_kernel("dep_chain", iterations=200),
                           profile=ProfileMeConfig(mean_interval=interval,
                                                   seed=1),
                           keep_records=False)
        merged.merge(run_session(spec).database)
    with open(export_path) as stream:
        served = stream.read()
    assert served == canonical_json(merged.to_dict())


def test_sweep_push_forwards_cache_hits(service, tmp_path, capsys):
    from repro.service.client import ProfileClient

    addr = service.address
    store = str(tmp_path / "ckpt")
    args = ["sweep", "kernel:dep_chain", "--intervals", "40", "--jobs", "1",
            "--push", addr]
    assert main(args + ["--checkpoint", store]) == 0
    assert main(args + ["--resume", store]) == 0  # all cached -> push_db
    out = capsys.readouterr().out
    assert "1 cached profile(s) merged" in out
    with ProfileClient(addr) as client:
        reply = client.query("stats")
    assert reply["stats"]["db_merges"] == 1
    # Cached forwarding doubles the samples: once live, once merged.
    assert reply["total_samples"] % 2 == 0


class TestQueryValidation:
    """Malformed `repro query` arguments exit 2 with a one-line error
    *before* any connection attempt (the address below has no server —
    reaching it would raise ServiceError, not ConfigError)."""

    DEAD = "127.0.0.1:1"

    def test_zero_limit_rejected(self, capsys):
        assert main(["query", self.DEAD, "top", "--limit", "0"]) == 2
        assert "--limit must be >= 1" in capsys.readouterr().err

    def test_negative_limit_rejected_for_epochs(self, capsys):
        assert main(["query", self.DEAD, "epochs", "--limit", "-3"]) == 2
        assert "--limit" in capsys.readouterr().err

    def test_malformed_pc_rejected(self, capsys):
        assert main(["query", self.DEAD, "latency", "--pc", "xyz"]) == 2
        assert "malformed --pc" in capsys.readouterr().err

    def test_latency_without_pc_rejected(self, capsys):
        assert main(["query", self.DEAD, "latency"]) == 2
        assert "needs --pc" in capsys.readouterr().err

    def test_empty_epoch_range_rejected(self, capsys):
        assert main(["query", self.DEAD, "epochs",
                     "--since", "100", "--until", "100"]) == 2
        assert "empty epoch range" in capsys.readouterr().err

    def test_hex_pc_is_accepted_past_validation(self, capsys):
        # A well-formed hex PC passes validation and fails only on the
        # (dead) connection — proving validation happens first.
        assert main(["query", self.DEAD, "latency", "--pc", "0x40"]) == 2
        err = capsys.readouterr().err
        assert "malformed" not in err
        assert "connect" in err or "refused" in err or "failed" in err


def test_query_epochs_against_live_service(tmp_path, capsys):
    from repro.service.server import ServerThread

    with ServerThread(port=0, shards=1, rollup_interval=100,
                      retain_buckets=8) as thread:
        assert main(["push", thread.address, "kernel:dep_chain",
                     "--interval", "20"]) == 0
        capsys.readouterr()
        assert main(["query", thread.address, "epochs"]) == 0
        out = capsys.readouterr().out
        assert "Rollup epochs" in out
        assert "interval 100" in out
        assert main(["query", thread.address, "stats"]) == 0
        out = capsys.readouterr().out
        assert "evicted_samples" in out
