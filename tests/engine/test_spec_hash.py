"""Property-based tests for spec hashing and cache round-trips.

The sweep layer's result cache is only sound if :func:`spec_key` is a
*semantic* hash: invariant under representation details (dict insertion
order, tuple vs list, the presentation-only label) and sensitive to
every field that changes what gets simulated (seeds, intervals, limits,
configs, program text).  Hypothesis drives the pure hash properties;
the simulation round-trip uses a small seeded grid.
"""

import dataclasses
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.persistence import (result_from_dict, result_to_dict,
                                        save_result, load_result)
from repro.engine.session import SessionSpec, run_session
from repro.engine.sweep import ResultStore, spec_key
from repro.profileme.unit import ProfileMeConfig

from tests.conftest import counting_loop


def _base_spec(**overrides):
    kwargs = dict(program=counting_loop(iterations=30),
                  profile=ProfileMeConfig(mean_interval=50, seed=3),
                  label="base")
    kwargs.update(overrides)
    return SessionSpec(**kwargs)


# ----------------------------------------------------------------------
# Invariance: representation details must not move the key.


def test_same_spec_built_twice_hashes_identically():
    assert spec_key(_base_spec()) == spec_key(_base_spec())


def test_rebuilt_program_hashes_identically():
    # Two distinct Program objects with identical text are the same key.
    a = _base_spec(program=counting_loop(iterations=30))
    b = _base_spec(program=counting_loop(iterations=30))
    assert a.program is not b.program
    assert spec_key(a) == spec_key(b)


def test_label_is_excluded_from_the_key():
    assert (spec_key(_base_spec(label="one"))
            == spec_key(_base_spec(label="two")))


@given(st.dictionaries(
    st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"]),
    st.integers(min_value=0, max_value=10), min_size=2, max_size=5))
def test_hash_is_invariant_under_dict_ordering(options):
    forward = dict(options.items())
    backward = dict(reversed(list(options.items())))
    assert list(forward) == list(reversed(list(backward)))  # real reorder
    a = _base_spec(collect_truth=True, truth_options=None)
    # truth_options feeds GroundTruthCollector kwargs; for hashing we
    # only care that the *same mapping* in any insertion order is the
    # same key, so build the spec around each ordering.
    a = dataclasses.replace(a, truth_options=forward)
    b = dataclasses.replace(a, truth_options=backward)
    assert spec_key(a) == spec_key(b)


def test_uninterruptible_tuple_vs_list_is_invariant():
    a = _base_spec(uninterruptible=[(0, 16), (32, 64)])
    b = _base_spec(uninterruptible=((0, 16), (32, 64)))
    assert spec_key(a) == spec_key(b)


# ----------------------------------------------------------------------
# Sensitivity: every simulated field must move the key.


@given(base=st.integers(min_value=1, max_value=10_000),
       changed=st.integers(min_value=1, max_value=10_000))
def test_mean_interval_moves_the_key(base, changed):
    a = _base_spec(profile=ProfileMeConfig(mean_interval=base, seed=3))
    b = _base_spec(profile=ProfileMeConfig(mean_interval=changed, seed=3))
    assert (spec_key(a) == spec_key(b)) == (base == changed)


@given(base=st.integers(min_value=0, max_value=2**31),
       changed=st.integers(min_value=0, max_value=2**31))
def test_profile_seed_moves_the_key(base, changed):
    a = _base_spec(profile=ProfileMeConfig(mean_interval=50, seed=base))
    b = _base_spec(profile=ProfileMeConfig(mean_interval=50, seed=changed))
    assert (spec_key(a) == spec_key(b)) == (base == changed)


@given(limit=st.one_of(st.none(),
                       st.integers(min_value=1, max_value=10**9)),
       other=st.one_of(st.none(),
                       st.integers(min_value=1, max_value=10**9)))
def test_limits_move_the_key(limit, other):
    a = _base_spec(max_cycles=limit)
    b = _base_spec(max_cycles=other)
    assert (spec_key(a) == spec_key(b)) == (limit == other)


@settings(max_examples=30)
@given(st.sampled_from([
    ("quantum", 200, 400),
    ("partition", True, False),
    ("keep_addresses", 0, 4),
    ("collect_truth", False, True),
    ("max_retired", None, 5000),
    ("core_kind", "ooo", "inorder"),
]), st.booleans())
def test_each_spec_field_moves_the_key(case, flip):
    name, first, second = case
    if flip:
        first, second = second, first
    a = dataclasses.replace(_base_spec(), **{name: first})
    b = dataclasses.replace(_base_spec(), **{name: second})
    assert spec_key(a) != spec_key(b)
    assert spec_key(a) == spec_key(dataclasses.replace(b, **{name: first}))


def test_program_text_moves_the_key():
    a = _base_spec(program=counting_loop(iterations=30))
    b = _base_spec(program=counting_loop(iterations=31))
    assert spec_key(a) != spec_key(b)


def test_profile_config_knobs_move_the_key():
    base = ProfileMeConfig(mean_interval=50, seed=3)
    for change in (dict(paired=True), dict(pair_window=48),
                   dict(register_sets=2), dict(jitter=0.25),
                   dict(distribution="geometric"), dict(buffer_depth=2)):
        assert (spec_key(_base_spec(profile=base))
                != spec_key(_base_spec(
                    profile=dataclasses.replace(base, **change)))), change


# ----------------------------------------------------------------------
# Cache round-trip: stored bytes == fresh bytes, and loads are faithful.


def _canonical_bytes(payload):
    return json.dumps(payload, sort_keys=True)


def test_cache_round_trip_is_byte_equal_to_fresh_run(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    # Seeded grid instead of hypothesis: each case runs a simulation.
    for interval, seed in ((20, 1), (50, 2), (120, 3)):
        spec = _base_spec(profile=ProfileMeConfig(mean_interval=interval,
                                                  seed=seed))
        key = spec_key(spec)
        fresh = result_to_dict(run_session(spec).detach(), spec_key=key)
        store.store(key, fresh)
        assert _canonical_bytes(store.load_payload(key)) \
            == _canonical_bytes(fresh)
        # A second simulation of the same spec reproduces the bytes too
        # (the cache can stand in for the simulator).
        again = result_to_dict(run_session(spec).detach(), spec_key=key)
        assert _canonical_bytes(again) == _canonical_bytes(fresh)
        # Loading and re-serializing is lossless.
        loaded = store.load(key, spec=spec)
        assert _canonical_bytes(result_to_dict(loaded, spec_key=key)) \
            == _canonical_bytes(fresh)


def test_save_and_load_result_file(tmp_path):
    spec = _base_spec()
    result = run_session(spec).detach()
    path = str(tmp_path / "result.json")
    save_result(result, path, spec_key=spec_key(spec))
    loaded = load_result(path, spec=spec)
    assert loaded.stats == result.stats
    assert loaded.cycles == result.cycles
    assert loaded.sampling_stats == result.sampling_stats
    assert loaded.database.total_samples == result.database.total_samples


def test_result_from_dict_rejects_foreign_documents():
    import pytest

    from repro.errors import AnalysisError

    with pytest.raises(AnalysisError):
        result_from_dict({"format": "something-else"})
    with pytest.raises(AnalysisError):
        result_from_dict({"format": "repro-session-result", "version": 99})
