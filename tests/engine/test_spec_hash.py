"""Property-based tests for spec hashing and cache round-trips.

The sweep layer's result cache is only sound if :func:`spec_key` is a
*semantic* hash: invariant under representation details (dict insertion
order, tuple vs list, the presentation-only label) and sensitive to
every field that changes what gets simulated (seeds, intervals, limits,
configs, program text).  Hypothesis drives the pure hash properties;
the simulation round-trip uses a small seeded grid.
"""

import dataclasses
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.persistence import (result_from_dict, result_to_dict,
                                        save_result, load_result)
from repro.engine.session import SessionSpec, run_session
from repro.engine.sweep import ResultStore, spec_key
from repro.profileme.unit import ProfileMeConfig

from tests.conftest import counting_loop


def _base_spec(**overrides):
    kwargs = dict(program=counting_loop(iterations=30),
                  profile=ProfileMeConfig(mean_interval=50, seed=3),
                  label="base")
    kwargs.update(overrides)
    return SessionSpec(**kwargs)


# ----------------------------------------------------------------------
# Invariance: representation details must not move the key.


def test_same_spec_built_twice_hashes_identically():
    assert spec_key(_base_spec()) == spec_key(_base_spec())


def test_rebuilt_program_hashes_identically():
    # Two distinct Program objects with identical text are the same key.
    a = _base_spec(program=counting_loop(iterations=30))
    b = _base_spec(program=counting_loop(iterations=30))
    assert a.program is not b.program
    assert spec_key(a) == spec_key(b)


def test_label_is_excluded_from_the_key():
    assert (spec_key(_base_spec(label="one"))
            == spec_key(_base_spec(label="two")))


@given(st.dictionaries(
    st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"]),
    st.integers(min_value=0, max_value=10), min_size=2, max_size=5))
def test_hash_is_invariant_under_dict_ordering(options):
    forward = dict(options.items())
    backward = dict(reversed(list(options.items())))
    assert list(forward) == list(reversed(list(backward)))  # real reorder
    a = _base_spec(collect_truth=True, truth_options=None)
    # truth_options feeds GroundTruthCollector kwargs; for hashing we
    # only care that the *same mapping* in any insertion order is the
    # same key, so build the spec around each ordering.
    a = dataclasses.replace(a, truth_options=forward)
    b = dataclasses.replace(a, truth_options=backward)
    assert spec_key(a) == spec_key(b)


def test_uninterruptible_tuple_vs_list_is_invariant():
    a = _base_spec(uninterruptible=[(0, 16), (32, 64)])
    b = _base_spec(uninterruptible=((0, 16), (32, 64)))
    assert spec_key(a) == spec_key(b)


# ----------------------------------------------------------------------
# Sensitivity: every simulated field must move the key.


@given(base=st.integers(min_value=1, max_value=10_000),
       changed=st.integers(min_value=1, max_value=10_000))
def test_mean_interval_moves_the_key(base, changed):
    a = _base_spec(profile=ProfileMeConfig(mean_interval=base, seed=3))
    b = _base_spec(profile=ProfileMeConfig(mean_interval=changed, seed=3))
    assert (spec_key(a) == spec_key(b)) == (base == changed)


@given(base=st.integers(min_value=0, max_value=2**31),
       changed=st.integers(min_value=0, max_value=2**31))
def test_profile_seed_moves_the_key(base, changed):
    a = _base_spec(profile=ProfileMeConfig(mean_interval=50, seed=base))
    b = _base_spec(profile=ProfileMeConfig(mean_interval=50, seed=changed))
    assert (spec_key(a) == spec_key(b)) == (base == changed)


@given(limit=st.one_of(st.none(),
                       st.integers(min_value=1, max_value=10**9)),
       other=st.one_of(st.none(),
                       st.integers(min_value=1, max_value=10**9)))
def test_limits_move_the_key(limit, other):
    a = _base_spec(max_cycles=limit)
    b = _base_spec(max_cycles=other)
    assert (spec_key(a) == spec_key(b)) == (limit == other)


@settings(max_examples=30)
@given(st.sampled_from([
    ("quantum", 200, 400),
    ("partition", True, False),
    ("keep_addresses", 0, 4),
    ("collect_truth", False, True),
    ("max_retired", None, 5000),
    ("core_kind", "ooo", "inorder"),
]), st.booleans())
def test_each_spec_field_moves_the_key(case, flip):
    name, first, second = case
    if flip:
        first, second = second, first
    a = dataclasses.replace(_base_spec(), **{name: first})
    b = dataclasses.replace(_base_spec(), **{name: second})
    assert spec_key(a) != spec_key(b)
    assert spec_key(a) == spec_key(dataclasses.replace(b, **{name: first}))


def test_program_text_moves_the_key():
    a = _base_spec(program=counting_loop(iterations=30))
    b = _base_spec(program=counting_loop(iterations=31))
    assert spec_key(a) != spec_key(b)


def test_profile_config_knobs_move_the_key():
    base = ProfileMeConfig(mean_interval=50, seed=3)
    for change in (dict(paired=True), dict(pair_window=48),
                   dict(register_sets=2), dict(jitter=0.25),
                   dict(distribution="geometric"), dict(buffer_depth=2)):
        assert (spec_key(_base_spec(profile=base))
                != spec_key(_base_spec(
                    profile=dataclasses.replace(base, **change)))), change


# ----------------------------------------------------------------------
# Backward compatibility: adding the two-speed fields must not move the
# key of any pre-existing (detailed-mode) spec, or every cached sweep
# result on disk silently invalidates.  These hex digests were captured
# from the tree *before* exec_mode/window existed; regenerating them to
# make this test pass defeats its purpose.

PINNED_PRE_TWO_SPEED_KEYS = {
    "plain": "05c1f0e5a9c2c68ea7d7886d148047f4bcf7faa2d60d36cc136a878b7d15690d",
    "profiled": "e5cbcaecb95ed84e37ca6f45bb59a698982618da96db3d47c872a99ad6e6442b",
    "inorder": "f3f860ca9a083040fdcf16f01a76781483c7530bda6c633e16cbc53e3a7d0f5c",
    "paired": "02b5d7f3a124a70e5510b8f8b58ba87768f66fd86ffd0a8b2f7fa82ba0a0ef0e",
}


def _pinned_specs():
    return {
        "plain": _base_spec(profile=None),
        "profiled": _base_spec(),
        "inorder": _base_spec(profile=None, core_kind="inorder",
                              max_retired=500),
        "paired": _base_spec(
            profile=ProfileMeConfig(mean_interval=25, paired=True, seed=7),
            keep_records=False, max_cycles=10_000),
    }


def test_detailed_mode_keys_match_pre_two_speed_pins():
    for name, spec in _pinned_specs().items():
        assert spec_key(spec) == PINNED_PRE_TWO_SPEED_KEYS[name], name


def test_detailed_canonical_form_omits_two_speed_fields():
    for name, spec in _pinned_specs().items():
        canonical = spec.canonical()
        assert "exec_mode" not in canonical, name
        assert "window" not in canonical, name


def test_two_speed_fields_move_the_key():
    base = _base_spec()
    two_speed = dataclasses.replace(base, exec_mode="two-speed")
    assert spec_key(base) != spec_key(two_speed)
    assert (spec_key(dataclasses.replace(two_speed, window=1000))
            != spec_key(two_speed))
    # But window is presentation-irrelevant while the mode is detailed.
    assert spec_key(dataclasses.replace(base, window=1000)) == spec_key(base)


def test_two_speed_cache_round_trip(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    spec = _base_spec(program=counting_loop(iterations=400),
                      profile=ProfileMeConfig(mean_interval=120, seed=5),
                      exec_mode="two-speed", window=64)
    key = spec_key(spec)
    fresh_result = run_session(spec).detach()
    fresh = result_to_dict(fresh_result, spec_key=key)
    assert fresh["two_speed"]["windows"] > 0
    store.store(key, fresh)
    assert _canonical_bytes(store.load_payload(key)) == _canonical_bytes(fresh)
    again = result_to_dict(run_session(spec).detach(), spec_key=key)
    assert _canonical_bytes(again) == _canonical_bytes(fresh)
    loaded = store.load(key, spec=spec)
    assert loaded.two_speed.windows == fresh_result.two_speed.windows
    assert loaded.two_speed.final_state is None  # verification hook only
    assert _canonical_bytes(result_to_dict(loaded, spec_key=key)) \
        == _canonical_bytes(fresh)


# ----------------------------------------------------------------------
# Cache round-trip: stored bytes == fresh bytes, and loads are faithful.


def _canonical_bytes(payload):
    return json.dumps(payload, sort_keys=True)


def test_cache_round_trip_is_byte_equal_to_fresh_run(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    # Seeded grid instead of hypothesis: each case runs a simulation.
    for interval, seed in ((20, 1), (50, 2), (120, 3)):
        spec = _base_spec(profile=ProfileMeConfig(mean_interval=interval,
                                                  seed=seed))
        key = spec_key(spec)
        fresh = result_to_dict(run_session(spec).detach(), spec_key=key)
        store.store(key, fresh)
        assert _canonical_bytes(store.load_payload(key)) \
            == _canonical_bytes(fresh)
        # A second simulation of the same spec reproduces the bytes too
        # (the cache can stand in for the simulator).
        again = result_to_dict(run_session(spec).detach(), spec_key=key)
        assert _canonical_bytes(again) == _canonical_bytes(fresh)
        # Loading and re-serializing is lossless.
        loaded = store.load(key, spec=spec)
        assert _canonical_bytes(result_to_dict(loaded, spec_key=key)) \
            == _canonical_bytes(fresh)


def test_save_and_load_result_file(tmp_path):
    spec = _base_spec()
    result = run_session(spec).detach()
    path = str(tmp_path / "result.json")
    save_result(result, path, spec_key=spec_key(spec))
    loaded = load_result(path, spec=spec)
    assert loaded.stats == result.stats
    assert loaded.cycles == result.cycles
    assert loaded.sampling_stats == result.sampling_stats
    assert loaded.database.total_samples == result.database.total_samples


def test_result_from_dict_rejects_foreign_documents():
    import pytest

    from repro.errors import AnalysisError

    with pytest.raises(AnalysisError):
        result_from_dict({"format": "something-else"})
    with pytest.raises(AnalysisError):
        result_from_dict({"format": "repro-session-result", "version": 99})


# ----------------------------------------------------------------------
# static_branch_hints (the PGO measurement field).


def test_static_branch_hints_none_is_the_default_key():
    # Omitted-when-None keeps every pre-existing cached result valid:
    # the default spec hashes identically whether the field existed or
    # not (the pinned digests above also enforce this).
    assert (spec_key(_base_spec())
            == spec_key(_base_spec(static_branch_hints=None)))


def test_static_branch_hints_move_the_key():
    gshare = _base_spec()
    btfn = _base_spec(static_branch_hints=())
    hinted = _base_spec(static_branch_hints=((8, 1),))
    other = _base_spec(static_branch_hints=((8, 0),))
    keys = {spec_key(s) for s in (gshare, btfn, hinted, other)}
    assert len(keys) == 4  # all four machines are distinct


def test_static_branch_hints_list_vs_tuple_is_invariant():
    a = _base_spec(static_branch_hints=[(8, 1), (16, 0)])
    b = _base_spec(static_branch_hints=((8, 1), (16, 0)))
    assert spec_key(a) == spec_key(b)
