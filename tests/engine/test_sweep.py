"""Fault-injection and resume tests for the sweep runner.

The runners defined at module level are shipped to worker processes by
``run_sweep(runner=...)``; they dispatch on the spec's label, so one
spec list can mix healthy specs with ones that raise, hang past the
timeout, or kill their worker outright (SIGKILL — the mid-chunk crash a
process pool cannot survive).
"""

import json
import os
import signal
import time

import pytest

from repro.engine.session import SessionSpec, run_session
from repro.engine.sweep import (STATUS_CACHED, STATUS_FAILED, STATUS_OK,
                                STATUS_TIMEOUT, ResultStore, run_sweep,
                                spec_key)
from repro.errors import SweepError
from repro.profileme.unit import ProfileMeConfig

from tests.conftest import counting_loop


def _spec(label, interval=25, seed=7, iterations=40):
    return SessionSpec(program=counting_loop(iterations=iterations),
                       profile=ProfileMeConfig(mean_interval=interval,
                                               seed=seed),
                       keep_records=False, label=label)


def faulty_runner(spec):
    """Worker-side fault injection, keyed on the spec label."""
    label = spec.label or ""
    if label == "boom":
        raise RuntimeError("injected failure")
    if label == "hang":
        time.sleep(60)
    if label == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    if label.startswith("flaky:"):
        marker = label.split(":", 1)[1]
        if not os.path.exists(marker):
            with open(marker, "w") as stream:
                stream.write("attempted")
            raise RuntimeError("injected first-attempt failure")
    return run_session(spec)


def _payload_bytes(outcome):
    return json.dumps(outcome.payload, sort_keys=True)


# ----------------------------------------------------------------------
# Fault tolerance.


def test_raising_spec_does_not_abort_sweep():
    specs = [_spec("ok-a", seed=1), _spec("boom", seed=2),
             _spec("ok-b", seed=3)]
    sweep = run_sweep(specs, workers=2, retries=1, runner=faulty_runner)
    assert sweep.statuses == [STATUS_OK, STATUS_FAILED, STATUS_OK]
    failed = sweep.outcomes[1]
    assert failed.attempts == 2  # first try + one retry, fresh worker each
    assert "RuntimeError: injected failure" in failed.error
    assert failed.result is None
    assert sweep.metrics.ok == 2
    assert sweep.metrics.failed == 1
    assert sweep.metrics.retries == 1


def test_timeout_terminates_hung_worker():
    specs = [_spec("ok-a", seed=1), _spec("hang", seed=2),
             _spec("ok-b", seed=3)]
    start = time.monotonic()
    sweep = run_sweep(specs, workers=2, timeout=1.0, retries=0,
                      runner=faulty_runner)
    assert time.monotonic() - start < 30  # nowhere near the 60s sleep
    assert sweep.statuses == [STATUS_OK, STATUS_TIMEOUT, STATUS_OK]
    assert "timed out" in sweep.outcomes[1].error
    assert sweep.metrics.timeouts == 1


def test_worker_killed_mid_chunk_is_confined():
    """SIGKILL in a worker — the failure a shared pool cannot absorb —
    must cost only that spec, with the kill visible in the error."""
    specs = [_spec("ok-a", seed=1), _spec("die", seed=2),
             _spec("ok-b", seed=3), _spec("ok-c", seed=4)]
    sweep = run_sweep(specs, workers=2, retries=1, chunk_size=4,
                      runner=faulty_runner)
    assert sweep.statuses == [STATUS_OK, STATUS_FAILED,
                              STATUS_OK, STATUS_OK]
    assert "worker died" in sweep.outcomes[1].error
    assert sweep.outcomes[1].attempts == 2


def test_flaky_spec_succeeds_on_retry(tmp_path):
    marker = str(tmp_path / "flaky-marker")
    specs = [_spec("flaky:" + marker, seed=5), _spec("ok", seed=6)]
    sweep = run_sweep(specs, workers=2, retries=1, runner=faulty_runner)
    assert sweep.statuses == [STATUS_OK, STATUS_OK]
    assert sweep.outcomes[0].attempts == 2
    assert sweep.metrics.retries == 1
    # The retried result is indistinguishable from a clean one.
    clean = run_sweep([_spec("flaky:" + marker, seed=5)], workers=1)
    assert _payload_bytes(sweep.outcomes[0]) == _payload_bytes(
        clean.outcomes[0])


def test_inline_mode_retries_and_records_failures():
    specs = [_spec("boom", seed=1), _spec("ok", seed=2)]
    sweep = run_sweep(specs, workers=1, retries=2, runner=faulty_runner)
    assert sweep.statuses == [STATUS_FAILED, STATUS_OK]
    assert sweep.outcomes[0].attempts == 3
    assert "RuntimeError" in sweep.outcomes[0].error


def test_bad_arguments_are_rejected():
    with pytest.raises(SweepError):
        run_sweep([_spec("x")], retries=-1)
    with pytest.raises(SweepError):
        run_sweep([_spec("x")], timeout=0)
    with pytest.raises(SweepError):
        run_sweep([_spec("x")], chunk_size=0)


# ----------------------------------------------------------------------
# Checkpoint / resume.


class _InterruptAfterFirstFlush(Exception):
    pass


def test_interrupted_sweep_resumes_byte_identical(tmp_path):
    """Acceptance: >= 16 specs, killed after the first checkpoint, then
    resumed — byte-identical to an uninterrupted run, cache hits > 0,
    and only the missing specs re-simulated."""
    specs = [_spec("S=%d seed=%d" % (interval, seed),
                   interval=interval, seed=seed)
             for interval in (20, 40, 60, 80) for seed in (1, 2, 3, 4)]
    assert len(specs) == 16

    store_dir = str(tmp_path / "checkpoint")

    def die_after_first_flush(event):
        if event["kind"] == "flush":
            raise _InterruptAfterFirstFlush()

    with pytest.raises(_InterruptAfterFirstFlush):
        run_sweep(specs, workers=2, chunk_size=4, store=store_dir,
                  progress=die_after_first_flush)
    flushed = len(ResultStore(store_dir))
    assert 0 < flushed < len(specs)  # partial checkpoint on disk

    events = []
    resumed = run_sweep(specs, workers=2, chunk_size=4, store=store_dir,
                        progress=lambda event: events.append(event["kind"]))
    assert resumed.metrics.cached == flushed
    assert resumed.metrics.cached > 0
    assert resumed.metrics.ok == len(specs) - resumed.metrics.cached
    assert set(resumed.statuses) == {STATUS_OK, STATUS_CACHED}
    assert "cached" in events

    uninterrupted = run_sweep(specs, workers=2,
                              store=str(tmp_path / "fresh"))
    for cached, fresh in zip(resumed.outcomes, uninterrupted.outcomes):
        assert _payload_bytes(cached) == _payload_bytes(fresh)

    # Resuming the finished sweep simulates nothing at all.
    done = run_sweep(specs, workers=2, store=store_dir)
    assert done.metrics.cached == len(specs)
    assert done.metrics.simulated_cycles == 0


def test_failed_specs_are_not_cached_and_rerun_on_resume(tmp_path):
    store_dir = str(tmp_path / "ck")
    specs = [_spec("ok-a", seed=1), _spec("boom", seed=2)]
    first = run_sweep(specs, workers=2, retries=0, store=store_dir,
                      runner=faulty_runner)
    assert first.statuses == [STATUS_OK, STATUS_FAILED]
    assert len(ResultStore(store_dir)) == 1  # only the ok result

    # On resume the failed spec runs again — here with the healthy
    # runner, so the sweep completes and the cache fills in.
    second = run_sweep(specs, workers=2, store=store_dir)
    assert second.statuses == [STATUS_CACHED, STATUS_OK]
    assert len(ResultStore(store_dir)) == 2


def test_store_layout_and_manifest(tmp_path):
    store_dir = str(tmp_path / "ck")
    specs = [_spec("a", seed=1), _spec("b", seed=2)]
    run_sweep(specs, workers=1, store=store_dir)
    store = ResultStore(store_dir)
    assert store.keys() == sorted(spec_key(spec) for spec in specs)
    for key in store.keys():
        payload = store.load_payload(key)
        assert payload["format"] == "repro-session-result"
        assert payload["spec_key"] == key
    with open(os.path.join(store_dir, "manifest.json")) as stream:
        manifest = json.load(stream)
    assert manifest["format"] == "repro-sweep-checkpoint"
    assert manifest["results"] == 2


def test_cached_result_is_usable(tmp_path):
    """A cache hit must come back as a working detached result."""
    store_dir = str(tmp_path / "ck")
    spec = _spec("reuse", interval=20, seed=9)
    fresh = run_sweep([spec], workers=1, store=store_dir)
    cached = run_sweep([spec], workers=1, store=store_dir)
    a = fresh.outcomes[0].result
    b = cached.outcomes[0].result
    assert b.spec is spec
    assert b.stats == a.stats
    assert b.cycles == a.cycles
    assert b.sampling_stats == a.sampling_stats
    assert b.database.total_samples == a.database.total_samples
    assert b.database.per_pc.keys() == a.database.per_pc.keys()


# ----------------------------------------------------------------------
# Progress hook and metrics.


def test_progress_hook_sees_metrics(tmp_path):
    specs = [_spec("m-%d" % i, seed=i) for i in range(1, 5)]
    events = []
    sweep = run_sweep(specs, workers=2, chunk_size=2,
                      store=str(tmp_path / "ck"),
                      progress=lambda event: events.append(event))
    kinds = [event["kind"] for event in events]
    assert kinds.count("spec") == 4
    assert kinds.count("flush") == 2
    for event in events:
        assert event["metrics"] is sweep.metrics
    assert sweep.metrics.done == sweep.metrics.total == 4
    assert sweep.metrics.simulated_cycles > 0
    assert sweep.metrics.cycles_per_second > 0
    snapshot = sweep.metrics.snapshot()
    assert snapshot["ok"] == 4
    assert snapshot["cycles_per_second"] == sweep.metrics.cycles_per_second


def test_empty_sweep():
    sweep = run_sweep([])
    assert sweep.outcomes == []
    assert sweep.metrics.total == 0


# ----------------------------------------------------------------------
# Checkpoint persistence failures (regression: these used to be
# swallowed, letting a sweep "succeed" with an unresumable checkpoint).


class FlakyStore(ResultStore):
    """ResultStore whose store()/write_manifest() raise on command."""

    def __init__(self, root, fail_keys=(), fail_manifest=False):
        super().__init__(root)
        self.fail_keys = set(fail_keys)
        self.fail_manifest = fail_manifest

    def store(self, key, payload):
        if key in self.fail_keys:
            raise OSError(28, "injected: no space left on device")
        super().store(key, payload)

    def write_manifest(self, metrics=None):
        if self.fail_manifest:
            raise OSError(13, "injected: permission denied")
        super().write_manifest(metrics)


def test_persist_failure_raises_typed_error_and_is_counted(tmp_path):
    from repro.errors import PersistenceError

    specs = [_spec("p-a", seed=1), _spec("p-b", seed=2)]
    keys = [spec_key(spec) for spec in specs]
    store = FlakyStore(str(tmp_path / "ck"), fail_keys={keys[0]})
    events = []
    with pytest.raises(PersistenceError) as excinfo:
        run_sweep(specs, workers=1, store=store,
                  progress=lambda event: events.append(event))
    assert "no space left" in str(excinfo.value)
    persist_events = [e for e in events if e["kind"] == "persist_error"]
    assert len(persist_events) == 1
    assert persist_events[0]["key"] == keys[0]
    assert persist_events[0]["metrics"].persist_failures == 1
    # The healthy write still landed: the checkpoint stays resumable
    # for everything that could be stored.
    assert store.has(keys[1])
    assert not store.has(keys[0])


def test_manifest_failure_raises_and_keeps_results(tmp_path):
    from repro.errors import PersistenceError

    spec = _spec("p-m", seed=3)
    store = FlakyStore(str(tmp_path / "ck"), fail_manifest=True)
    events = []
    with pytest.raises(PersistenceError):
        run_sweep([spec], workers=1, store=store,
                  progress=lambda event: events.append(event))
    persist_events = [e for e in events if e["kind"] == "persist_error"]
    assert [e["key"] for e in persist_events] == ["manifest"]
    assert store.has(spec_key(spec))  # the result itself was stored


def test_resume_after_persist_failure(tmp_path):
    """The failed write costs nothing on resume: stored specs load as
    cached, only the unpersisted one re-simulates."""
    from repro.errors import PersistenceError

    specs = [_spec("p-r1", seed=4), _spec("p-r2", seed=5)]
    keys = [spec_key(spec) for spec in specs]
    root = str(tmp_path / "ck")
    with pytest.raises(PersistenceError):
        run_sweep(specs, workers=1,
                  store=FlakyStore(root, fail_keys={keys[0]}))
    resumed = run_sweep(specs, workers=1, store=ResultStore(root))
    assert resumed.statuses == [STATUS_OK, STATUS_CACHED]
    assert resumed.metrics.cached == 1
    assert resumed.metrics.persist_failures == 0
    store = ResultStore(root)
    assert store.has(keys[0]) and store.has(keys[1])
