"""Tests for the parallel session runner."""

from repro.engine.parallel import run_sessions_parallel
from repro.engine.session import SessionSpec
from repro.profileme.unit import ProfileMeConfig

from tests.conftest import counting_loop


def _specs(intervals=(20, 40, 80)):
    return [
        SessionSpec(program=counting_loop(iterations=60),
                    core_kind="ooo",
                    profile=ProfileMeConfig(mean_interval=s, seed=9),
                    label="S=%d" % s)
        for s in intervals
    ]


def test_empty_spec_list():
    assert run_sessions_parallel([]) == []


def test_inline_path_matches_run_session():
    from repro.engine.session import run_session

    spec = _specs(intervals=(25,))[0]
    direct = run_session(spec)
    [parallel] = run_sessions_parallel([spec], workers=1)
    assert parallel.cycles == direct.cycles
    assert parallel.stats == direct.stats
    assert (parallel.database.total_samples
            == direct.database.total_samples)


def test_results_keep_spec_order():
    results = run_sessions_parallel(_specs(), workers=2)
    assert [r.label for r in results] == ["S=20", "S=40", "S=80"]


def test_workers_do_not_change_results():
    serial = run_sessions_parallel(_specs(), workers=1)
    fanned = run_sessions_parallel(_specs(), workers=2)
    for a, b in zip(serial, fanned):
        assert a.cycles == b.cycles
        assert a.stats == b.stats
        assert a.database.total_samples == b.database.total_samples
        assert a.sampling_stats == b.sampling_stats


def test_parallel_results_are_detached():
    [result] = run_sessions_parallel(_specs(intervals=(25,)), workers=2)
    assert result.core is None
    assert result.unit is None
    assert result.sampling_stats is not None
    assert result.sampling_stats.records_delivered > 0
