"""Tests for the parallel session runner."""

import json

import pytest

from repro.engine.parallel import run_sessions_parallel
from repro.engine.session import SessionSpec, run_session
from repro.errors import WorkerError
from repro.profileme.unit import ProfileMeConfig

from tests.conftest import counting_loop


def _specs(intervals=(20, 40, 80)):
    return [
        SessionSpec(program=counting_loop(iterations=60),
                    core_kind="ooo",
                    profile=ProfileMeConfig(mean_interval=s, seed=9),
                    label="S=%d" % s)
        for s in intervals
    ]


def test_empty_spec_list():
    assert run_sessions_parallel([]) == []


def test_inline_path_matches_run_session():
    from repro.engine.session import run_session

    spec = _specs(intervals=(25,))[0]
    direct = run_session(spec)
    [parallel] = run_sessions_parallel([spec], workers=1)
    assert parallel.cycles == direct.cycles
    assert parallel.stats == direct.stats
    assert (parallel.database.total_samples
            == direct.database.total_samples)


def test_results_keep_spec_order():
    results = run_sessions_parallel(_specs(), workers=2)
    assert [r.label for r in results] == ["S=20", "S=40", "S=80"]


def test_workers_do_not_change_results():
    serial = run_sessions_parallel(_specs(), workers=1)
    fanned = run_sessions_parallel(_specs(), workers=2)
    for a, b in zip(serial, fanned):
        assert a.cycles == b.cycles
        assert a.stats == b.stats
        assert a.database.total_samples == b.database.total_samples
        assert a.sampling_stats == b.sampling_stats


def test_parallel_results_are_detached():
    [result] = run_sessions_parallel(_specs(intervals=(25,)), workers=2)
    assert result.core is None
    assert result.unit is None
    assert result.sampling_stats is not None
    assert result.sampling_stats.records_delivered > 0


def test_worker_failure_carries_spec_index_and_traceback():
    """A spec that blows up in a worker must surface as a WorkerError
    naming the failing spec (index + repr) with the worker's traceback —
    not as multiprocessing's context-free bare re-raise."""
    # A string is no MachineConfig: the core constructor fails inside
    # the worker, after the spec itself validated fine.
    bad = SessionSpec(program=counting_loop(iterations=20),
                      config="not-a-machine-config", label="bad")
    specs = _specs(intervals=(20,)) + [bad] + _specs(intervals=(40,))
    with pytest.raises(WorkerError) as excinfo:
        run_sessions_parallel(specs, workers=2)
    message = str(excinfo.value)
    assert "spec 1" in message
    assert "not-a-machine-config" in message  # the spec's repr
    assert "worker traceback" in message
    assert "Traceback (most recent call last)" in message


def _mixed_specs():
    """One spec per substrate: ooo, inorder, and a two-thread smt run."""
    return [
        SessionSpec(program=counting_loop(iterations=50),
                    core_kind="ooo",
                    profile=ProfileMeConfig(mean_interval=20, seed=4),
                    keep_records=False, label="ooo"),
        SessionSpec(program=counting_loop(iterations=50),
                    core_kind="inorder",
                    profile=ProfileMeConfig(mean_interval=20, seed=5),
                    keep_records=False, label="inorder"),
        SessionSpec(programs=(counting_loop(iterations=40, name="t0"),
                              counting_loop(iterations=40, name="t1")),
                    core_kind="smt",
                    profile=ProfileMeConfig(mean_interval=25, seed=6),
                    keep_records=False, label="smt"),
    ]


def test_sweep_parallel_and_serial_are_byte_equivalent():
    """Differential: serial run_session, run_sessions_parallel, and the
    sweep runner (inline and process mode) must produce byte-equal
    detached results on a mixed ooo/inorder/smt spec list."""
    from repro.analysis.persistence import result_to_dict
    from repro.engine.sweep import run_sweep

    def payloads(results):
        return [json.dumps(result_to_dict(result), sort_keys=True)
                for result in results]

    serial = payloads([run_session(spec).detach()
                       for spec in _mixed_specs()])
    parallel = payloads(run_sessions_parallel(_mixed_specs(), workers=2))
    sweep_inline = payloads(run_sweep(_mixed_specs(), workers=1).results)
    sweep_fanned = payloads(run_sweep(_mixed_specs(), workers=2).results)
    assert serial == parallel == sweep_inline == sweep_fanned
