"""Tests for ProbeBus subscription and fast-path dispatch."""

from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.probes import Probe
from repro.engine.bus import PROBE_CALLBACKS, ProbeBus, probe_overrides

from tests.conftest import counting_loop


class NullProbe(Probe):
    """Overrides nothing."""


class RetireOnly(Probe):
    def __init__(self):
        self.calls = 0

    def on_retire(self, dyninst, cycle):
        self.calls += 1


class FullProbe(Probe):
    def __init__(self):
        self.calls = {name: 0 for name in PROBE_CALLBACKS}

    def on_fetch_slots(self, cycle, slots):
        self.calls["on_fetch_slots"] += 1

    def on_issue(self, dyninst, cycle):
        self.calls["on_issue"] += 1

    def on_retire(self, dyninst, cycle):
        self.calls["on_retire"] += 1

    def on_abort(self, dyninst, cycle):
        self.calls["on_abort"] += 1

    def on_cycle_end(self, cycle):
        self.calls["on_cycle_end"] += 1


class DuckProbe:
    """Never subclasses Probe; defines a subset of the interface."""

    def __init__(self):
        self.retired = 0

    def attach(self, core):
        self.core = core

    def on_retire(self, dyninst, cycle):
        self.retired += 1


class TestSubscription:
    def test_null_probe_subscribes_nothing(self):
        bus = ProbeBus()
        bus.subscribe(NullProbe())
        assert bus.fetch_slots == []
        assert bus.issue == []
        assert bus.retire == []
        assert bus.abort == []
        assert bus.cycle_end == []
        assert len(bus.probes) == 1

    def test_partial_override_subscribes_exactly_those(self):
        bus = ProbeBus()
        probe = RetireOnly()
        bus.subscribe(probe)
        assert bus.subscriptions(probe) == ("on_retire",)
        assert bus.retire == [probe.on_retire]
        assert bus.issue == []

    def test_full_override_subscribes_all(self):
        bus = ProbeBus()
        probe = FullProbe()
        bus.subscribe(probe)
        assert bus.subscriptions(probe) == PROBE_CALLBACKS

    def test_duck_typed_probe(self):
        bus = ProbeBus()
        probe = DuckProbe()
        bus.subscribe(probe)
        assert bus.subscriptions(probe) == ("on_retire",)

    def test_instance_level_callback(self):
        probe = NullProbe()
        seen = []
        probe.on_cycle_end = lambda cycle: seen.append(cycle)
        assert probe_overrides(probe, "on_cycle_end")
        bus = ProbeBus()
        bus.subscribe(probe)
        assert bus.cycle_end == [probe.on_cycle_end]

    def test_attach_order_preserved(self):
        bus = ProbeBus()
        first, second = RetireOnly(), RetireOnly()
        bus.subscribe(first)
        bus.subscribe(second)
        assert bus.probes == [first, second]
        assert bus.retire == [first.on_retire, second.on_retire]


class TestDetach:
    def test_detach_removes_probe_and_callbacks(self):
        bus = ProbeBus()
        probe = FullProbe()
        bus.subscribe(probe)
        returned = bus.detach(probe)
        assert returned is probe
        assert bus.probes == []
        for attr in ("fetch_slots", "issue", "retire", "abort", "cycle_end"):
            assert getattr(bus, attr) == []

    def test_detach_keeps_other_probes_in_attach_order(self):
        bus = ProbeBus()
        first, middle, last = RetireOnly(), RetireOnly(), RetireOnly()
        for probe in (first, middle, last):
            bus.subscribe(probe)
        bus.detach(middle)
        assert bus.probes == [first, last]
        assert bus.retire == [first.on_retire, last.on_retire]

    def test_detach_unknown_probe_raises(self):
        bus = ProbeBus()
        bus.subscribe(RetireOnly())
        try:
            bus.detach(RetireOnly())  # never attached
        except ValueError:
            pass
        else:
            raise AssertionError("detach of an unattached probe must raise")

    def test_reattach_after_detach(self):
        bus = ProbeBus()
        probe = RetireOnly()
        bus.subscribe(probe)
        bus.detach(probe)
        bus.subscribe(probe)
        assert bus.probes == [probe]
        assert bus.retire == [probe.on_retire]

    def test_core_remove_probe_restores_fast_path(self):
        """Detaching the last probe returns the core to probe-free timing."""
        bare = OutOfOrderCore(counting_loop(iterations=50))
        bare_cycles = bare.run()

        detached = OutOfOrderCore(counting_loop(iterations=50))
        probe = detached.add_probe(FullProbe())
        detached.remove_probe(probe)
        assert detached.probes == []
        assert detached.run() == bare_cycles
        assert probe.calls["on_retire"] == 0

    def test_detach_mid_run_stops_deliveries(self):
        core = OutOfOrderCore(counting_loop(iterations=50))
        keeper = core.add_probe(RetireOnly())
        victim = core.add_probe(RetireOnly())

        class DetachAt(Probe):
            """Detaches *victim* at a fixed cycle, from inside dispatch."""

            def __init__(self, at):
                self.at = at

            def on_cycle_end(self, cycle):
                if cycle == self.at:
                    core.remove_probe(victim)

        core.add_probe(DetachAt(at=40))
        core.run()
        assert victim.calls < keeper.calls
        assert keeper.calls == core.retired


class TestCoreDispatch:
    def test_selective_probe_only_sees_retires(self, tiny_program):
        core = OutOfOrderCore(tiny_program)
        probe = core.add_probe(RetireOnly())
        core.run()
        assert probe.calls == core.retired

    def test_full_probe_sees_everything(self):
        core = OutOfOrderCore(counting_loop(iterations=50))
        probe = core.add_probe(FullProbe())
        cycles = core.run()
        assert probe.calls["on_cycle_end"] == cycles
        assert probe.calls["on_fetch_slots"] > 0
        assert probe.calls["on_issue"] > 0
        assert probe.calls["on_retire"] == core.retired
        assert probe.calls["on_abort"] == core.aborted

    def test_probe_free_run_matches_probed_run(self):
        """The no-probe fast path must not change machine timing."""
        bare = OutOfOrderCore(counting_loop(iterations=100))
        bare_cycles = bare.run()
        probed = OutOfOrderCore(counting_loop(iterations=100))
        probed.add_probe(FullProbe())
        probed_cycles = probed.run()
        assert bare_cycles == probed_cycles
        assert bare.retired == probed.retired
        assert bare.architectural_registers() \
            == probed.architectural_registers()

    def test_probes_property_compatibility(self, tiny_program):
        core = OutOfOrderCore(tiny_program)
        probe = core.add_probe(RetireOnly())
        assert core.probes == [probe]
