"""Tests for the Session layer: SessionSpec, run_session, results."""

import pickle

import pytest

from repro.engine.session import (
    CounterRun,
    SessionSpec,
    build_core,
    profile_config_for_context,
    run_session,
)
from repro.errors import ConfigError
from repro.profileme.unit import ProfileMeConfig

from tests.conftest import counting_loop


def _spec(**kw):
    defaults = dict(
        program=counting_loop(iterations=60),
        core_kind="ooo",
        profile=ProfileMeConfig(mean_interval=25, seed=7),
    )
    defaults.update(kw)
    return SessionSpec(**defaults)


class TestSessionSpec:
    def test_rejects_unknown_core(self):
        with pytest.raises(ConfigError):
            _spec(core_kind="vliw")

    def test_multi_context_kinds_require_programs(self):
        with pytest.raises(ConfigError):
            _spec(core_kind="smt", program=counting_loop(5), programs=())

    def test_single_context_kinds_require_program(self):
        with pytest.raises(ConfigError):
            _spec(core_kind="ooo", program=None)

    def test_smt_accepts_multiple_programs(self):
        two = (counting_loop(iterations=5), counting_loop(iterations=5))
        spec = _spec(core_kind="smt", program=None, programs=two)
        assert spec.resolved_programs() == two

    def test_spec_round_trips_through_pickle(self):
        spec = _spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.profile == spec.profile
        assert clone.core_kind == spec.core_kind


class TestBuildCore:
    def test_kinds(self, tiny_program):
        from repro.cpu.inorder.core import InOrderCore
        from repro.cpu.ooo.core import OutOfOrderCore

        assert isinstance(build_core(tiny_program, "ooo"), OutOfOrderCore)
        assert isinstance(build_core(tiny_program, "inorder"), InOrderCore)
        with pytest.raises(ConfigError):
            build_core(tiny_program, "vliw")


class TestProfileConfigForContext:
    def test_context_zero_keeps_seed(self):
        profile = ProfileMeConfig(mean_interval=50, seed=3)
        stamped = profile_config_for_context(profile, 0)
        assert stamped.context == 0
        assert stamped.seed == 3

    def test_contexts_get_distinct_seeds(self):
        profile = ProfileMeConfig(mean_interval=50, seed=3)
        seeds = {profile_config_for_context(profile, i).seed
                 for i in range(4)}
        assert len(seeds) == 4
        assert profile_config_for_context(profile, 2).seed == 3 + 2000

    def test_original_config_untouched(self):
        profile = ProfileMeConfig(mean_interval=50, seed=3)
        profile_config_for_context(profile, 5)
        assert profile.context is None
        assert profile.seed == 3


class TestRunSession:
    @pytest.mark.parametrize("kind", ["ooo", "inorder"])
    def test_profiled_session_produces_samples(self, kind):
        result = run_session(_spec(core_kind=kind))
        assert result.cycles > 0
        assert result.stats.retired > 0
        assert result.unit is not None
        assert result.unit.stats.records_delivered > 0
        assert result.database.total_samples > 0

    def test_smt_session(self):
        two = (counting_loop(iterations=40), counting_loop(iterations=40))
        result = run_session(_spec(core_kind="smt", program=None,
                                   programs=two))
        assert result.cycles > 0
        assert result.stats.retired > 0
        assert result.database.total_samples > 0

    def test_multiprog_session_merges_contexts(self):
        two = (counting_loop(iterations=40), counting_loop(iterations=40))
        result = run_session(_spec(core_kind="multiprog", program=None,
                                   programs=two))
        assert result.cycles > 0
        assert len(result.multi.contexts) == 2
        assert all(ctx.database.total_samples > 0
                   for ctx in result.multi.contexts)
        # Merged database keys on (context << 32) | pc: both contexts'
        # samples are present and disambiguated.
        assert result.database.total_samples == sum(
            ctx.database.total_samples for ctx in result.multi.contexts)
        contexts_seen = {pc >> 32 for pc in result.database.pcs()}
        assert contexts_seen == {0, 1}

    def test_session_without_profile_runs_bare(self):
        result = run_session(_spec(profile=None))
        assert result.unit is None
        assert result.database is None
        assert result.stats.retired > 0

    def test_deterministic_across_runs(self):
        a = run_session(_spec())
        b = run_session(_spec())
        assert a.cycles == b.cycles
        assert a.unit.stats.records_delivered == b.unit.stats.records_delivered
        assert a.database.total_samples == b.database.total_samples

    def test_detach_is_picklable(self):
        result = run_session(_spec()).detach()
        assert result.core is None and result.unit is None
        assert result.sampling_stats is not None
        clone = pickle.loads(pickle.dumps(result))
        assert clone.cycles == result.cycles
        assert clone.stats.retired == result.stats.retired
        assert (clone.sampling_stats.records_delivered
                == result.sampling_stats.records_delivered)


class TestCounterRun:
    def test_tuple_unpack_compatibility(self):
        run = CounterRun(core="the-core", counter="the-counter", cycles=123)
        core, counter = run  # the pre-refactor contract
        assert core == "the-core"
        assert counter == "the-counter"
        assert run.cycles == 123
