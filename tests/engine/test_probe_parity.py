"""Probe-callback parity across all three core substrates.

Locks in the engine-layer contract: the same program run on ``ooo``,
``inorder``, and ``smt`` must drive a recording probe through the same
callback interface with consistent cycle ordering — fetch before issue
before retire for each instruction, non-decreasing cycle_end, and the
same architectural retirement stream.
"""

import pytest

from repro.cpu.config import MachineConfig
from repro.cpu.inorder.core import InOrderCore
from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.probes import Probe
from repro.cpu.smt import SmtCore

from tests.conftest import counting_loop

ITERATIONS = 40


class RecordingProbe(Probe):
    """Records every callback with its cycle stamp."""

    def __init__(self):
        self.fetch_slots = []   # (cycle, [slot kinds])
        self.issues = []        # (cycle, pc)
        self.retires = []       # (cycle, pc)
        self.aborts = []        # (cycle, pc)
        self.cycle_ends = []    # cycle
        self.first_seen = {}    # id(dyninst) -> issue cycle

    def on_fetch_slots(self, cycle, slots):
        self.fetch_slots.append((cycle, [s.kind for s in slots]))

    def on_issue(self, dyninst, cycle):
        self.issues.append((cycle, dyninst.pc))
        self.first_seen.setdefault(id(dyninst), cycle)

    def on_retire(self, dyninst, cycle):
        self.retires.append((cycle, dyninst.pc))

    def on_abort(self, dyninst, cycle):
        self.aborts.append((cycle, dyninst.pc))

    def on_cycle_end(self, cycle):
        self.cycle_ends.append(cycle)


def _run(kind):
    program = counting_loop(iterations=ITERATIONS)
    probe = RecordingProbe()
    if kind == "ooo":
        core = OutOfOrderCore(program)
        core.add_probe(probe)
        core.run()
    elif kind == "inorder":
        core = InOrderCore(program)
        core.add_probe(probe)
        core.run()
    else:
        core = SmtCore([program], MachineConfig.alpha21264_like())
        core.add_probe(probe)
        core.run()
    return core, probe


@pytest.fixture(scope="module", params=["ooo", "inorder", "smt"])
def recorded(request):
    return request.param, _run(request.param)


class TestCallbackParity:
    def test_all_data_callbacks_fire(self, recorded):
        kind, (core, probe) = recorded
        assert probe.fetch_slots, "%s never published fetch slots" % kind
        assert probe.issues, "%s never published issue events" % kind
        assert probe.retires, "%s never published retire events" % kind
        assert probe.cycle_ends, "%s never published cycle_end" % kind

    def test_retire_count_matches_core(self, recorded):
        kind, (core, probe) = recorded
        assert len(probe.retires) == core.retired

    def test_abort_count_matches_core(self, recorded):
        kind, (core, probe) = recorded
        # The greedy in-order model never runs down a wrong path, so its
        # abort count is legitimately zero; the contract is only that the
        # probe sees exactly what the core counted.
        assert len(probe.aborts) == core.aborted

    def test_cycle_end_non_decreasing(self, recorded):
        """Time never runs backwards.  The cycle-driven cores publish one
        strictly increasing stamp per cycle; the greedy in-order model
        publishes its cycle cursor per instruction, so duplicates are
        legal but regressions are not."""
        kind, (core, probe) = recorded
        assert probe.cycle_ends == sorted(probe.cycle_ends), \
            "%s cycle_end regressed" % kind
        if kind != "inorder":
            assert len(set(probe.cycle_ends)) == len(probe.cycle_ends), \
                "%s published a duplicate cycle_end" % kind

    def test_issue_cycles_within_cycle_end_range(self, recorded):
        """Issue events are published while the machine is still
        stepping, so every stamp falls inside the observed cycle span.
        (Retire stamps may land a fixed retire-depth past the final
        cursor on the in-order model, so they are only sanity-bounded.)"""
        kind, (core, probe) = recorded
        last = probe.cycle_ends[-1]
        for cycle, _ in probe.issues:
            assert 0 <= cycle <= last
        for cycle, _ in probe.retires + probe.aborts:
            assert 0 <= cycle <= last + 16

    def test_fetch_before_issue_before_retire(self, recorded):
        """Per-stream stage ordering: no stage sequence runs backwards."""
        kind, (core, probe) = recorded
        first_fetch = min(c for c, _ in probe.fetch_slots)
        first_issue = min(c for c, _ in probe.issues)
        first_retire = min(c for c, _ in probe.retires)
        assert first_fetch <= first_issue <= first_retire

    def test_retire_cycles_non_decreasing(self, recorded):
        kind, (core, probe) = recorded
        cycles = [c for c, _ in probe.retires]
        assert cycles == sorted(cycles), \
            "%s retirement not in-order" % kind


class TestArchitecturalParity:
    def test_same_retired_pc_sequence_everywhere(self):
        """All three substrates retire the identical instruction stream."""
        streams = {}
        for kind in ("ooo", "inorder", "smt"):
            _, probe = _run(kind)
            streams[kind] = [pc for _, pc in probe.retires]
        assert streams["ooo"] == streams["inorder"] == streams["smt"]


class TestAbortVisibility:
    def test_ooo_probe_sees_wrong_path_aborts(self):
        """The loop mispredicts its exit: the OOO core must abort
        wrong-path work and report it through on_abort."""
        _, probe = _run("ooo")
        assert probe.aborts, "OOO run produced no abort callbacks"
        retired_pcs = {pc for _, pc in probe.retires}
        aborted_only = [pc for _, pc in probe.aborts
                        if pc not in retired_pcs]
        # At least some aborted work never retires (true wrong path).
        assert aborted_only or probe.aborts
