"""Two-speed execution: hand-off soundness and estimate fidelity.

The two-speed engine alternates the functional interpreter (between
samples) with bounded detailed OOO windows (around samples).  Its
correctness rests on one property: both engines implement the *same*
architecture, so handing register/memory/PC state across the boundary
can never change what the program computes.  These tests pin that
property directly (fast-forward vs detailed-to-halt, and an alternating
hand-off schedule vs the plain interpreter), pin the shared warm-state
contract (FunctionalProfiler and fast_forward warm identically), and
then check the sampled *estimates* a two-speed run produces against a
full detailed run through the Figure 3 envelope.
"""

import pytest

from repro.analysis.estimators import ratio_within_envelope
from repro.cpu.functional import FunctionalProfiler
from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.probes import Probe
from repro.cpu.warm import WarmState, fast_forward
from repro.engine.session import SessionSpec, run_session
from repro.errors import ConfigError
from repro.events import Event
from repro.isa.interpreter import Interpreter
from repro.profileme.unit import ProfileMeConfig, ProfileMeUnit
from repro.workloads import classic_kernel, stall_kernel
from repro.workloads.suite import suite_program

from tests.conftest import counting_loop


def _programs():
    return [
        ("counting-loop", counting_loop(iterations=200)),
        ("compress", suite_program("compress", scale=1)),
        ("li", suite_program("li", scale=1)),
        ("dep-chain", stall_kernel("dep_chain", iterations=120)),
        ("daxpy", classic_kernel("daxpy", n=64)[0]),
    ]


PROGRAMS = _programs()


class _RetireLog(Probe):
    """Retired-path per-PC counts and conditional outcomes from a core."""

    def __init__(self):
        self.retired = {}
        self.taken = {}

    def on_retire(self, dyninst, cycle):
        pc = dyninst.pc
        self.retired[pc] = self.retired.get(pc, 0) + 1
        if dyninst.inst.is_conditional and dyninst.actual_taken:
            self.taken[pc] = self.taken.get(pc, 0) + 1


def _interpret(program):
    """Run *program* on the plain interpreter; return (interp, log)."""
    interp = Interpreter(program)
    log = _RetireLog.__new__(_RetireLog)
    log.retired = {}
    log.taken = {}
    while True:
        entry = interp.step()
        if entry is None:
            break
        log.retired[entry.pc] = log.retired.get(entry.pc, 0) + 1
        if entry.inst.is_conditional and entry.taken:
            log.taken[entry.pc] = log.taken.get(entry.pc, 0) + 1
    return interp, log


# ----------------------------------------------------------------------
# Hand-off property: the two engines retire identical architectural
# state, so hand-off points can never diverge silently.


class TestHandoffEquivalence:
    @pytest.mark.parametrize("name,program", PROGRAMS,
                             ids=[p[0] for p in PROGRAMS])
    def test_fast_forward_matches_detailed_to_halt(self, name, program):
        interp = Interpreter(program)
        warm = WarmState()
        fast_forward(interp, warm, 10**9)
        assert interp.state.halted

        core = OutOfOrderCore(program)
        log = _RetireLog()
        core.add_probe(log)
        core.run()

        assert core.retired == interp.retired
        assert core.architectural_registers() == interp.state.regs.snapshot()
        assert core.memory.snapshot() == interp.state.memory.snapshot()

        _, ref = _interpret(program)
        assert log.retired == ref.retired  # same retired-path PC counts
        assert log.taken == ref.taken  # same conditional outcomes

    @pytest.mark.parametrize("name,program", PROGRAMS,
                             ids=[p[0] for p in PROGRAMS])
    def test_alternating_handoff_matches_interpreter(self, name, program):
        """Arbitrary hand-off boundaries reproduce the reference run."""
        ref = Interpreter(program)
        ref.run_to_halt()

        interp = Interpreter(program)
        warm = WarmState()
        state = interp.state
        sizes = (137, 61, 333, 89, 210)
        index = 0
        while not state.halted:
            fast_forward(interp, warm, sizes[index % len(sizes)])
            index += 1
            if state.halted:
                break
            core = OutOfOrderCore(program, hierarchy=warm.hierarchy,
                                  predictor=warm.predictor, ghr=warm.ghr)
            core.inject_state(state.regs.snapshot(), state.memory, state.pc)
            core.run(max_retired=sizes[index % len(sizes)])
            index += 1
            state.regs.load(core.architectural_registers())
            state.pc = core.committed_pc
            state.halted = core.halted
            interp.retired += core.retired
            warm.note_redirect()

        assert interp.retired == ref.retired
        assert state.regs.snapshot() == ref.state.regs.snapshot()
        assert state.memory.snapshot() == ref.state.memory.snapshot()


# ----------------------------------------------------------------------
# Warm-state contract: fast_forward and the functional profiler drive
# the shared models identically (they share WarmState.observe).


class TestWarmContract:
    def test_fast_forward_warms_like_functional_profiler(self):
        program = suite_program("compress", scale=1)
        profiler = FunctionalProfiler(program)
        profiler.run()

        interp = Interpreter(program)
        warm = WarmState()
        fast_forward(interp, warm, 10**9)

        assert warm.signature() == profiler.warm.signature()

    def test_signature_covers_predictor_and_hierarchy(self):
        program = suite_program("compress", scale=1)
        interp = Interpreter(program)
        warm = WarmState()
        fast_forward(interp, warm, 10**9)
        cold = WarmState()
        assert warm.signature() != cold.signature()


# ----------------------------------------------------------------------
# Two-speed sessions: final state, accounting, and validation.


def _two_speed_spec(program, **overrides):
    kwargs = dict(program=program,
                  profile=ProfileMeConfig(mean_interval=500, seed=9),
                  exec_mode="two-speed", window=400, keep_records=False)
    kwargs.update(overrides)
    return SessionSpec(**kwargs)


class TestTwoSpeedSession:
    def test_final_state_matches_reference_interpreter(self):
        program = suite_program("compress", scale=1)
        result = run_session(_two_speed_spec(program))
        ref = Interpreter(program)
        ref.run_to_halt()

        final = result.two_speed.final_state
        assert final.halted
        assert final.regs == ref.state.regs.snapshot()
        assert final.memory == ref.state.memory.snapshot()
        assert result.stats.retired == ref.retired

    def test_accounting_is_consistent(self):
        program = suite_program("compress", scale=1)
        result = run_session(_two_speed_spec(program))
        stats = result.two_speed
        assert stats.windows > 0
        assert stats.fast_forwarded > 0
        assert stats.fast_forwarded + stats.detailed_retired \
            == result.stats.retired
        assert 0.0 < stats.detailed_fraction < 1.0
        assert result.cycles == stats.detailed_cycles
        assert stats.warmup == 400 // 4
        # The only clock is the detailed one.
        assert result.stats.ipc == pytest.approx(
            stats.detailed_retired / stats.detailed_cycles)

    def test_two_speed_is_deterministic(self):
        program = suite_program("compress", scale=1)
        a = run_session(_two_speed_spec(program))
        b = run_session(_two_speed_spec(program))
        assert a.database.to_dict() == b.database.to_dict()
        assert a.sampling_stats == b.sampling_stats

    def test_max_retired_bounds_the_run(self):
        program = suite_program("compress", scale=1)
        result = run_session(_two_speed_spec(program, max_retired=3000))
        # A window may overshoot by at most the retire width.
        assert result.stats.retired >= 3000
        assert result.stats.retired < 3000 + 400

    def test_sampling_stats_account_for_skipped_points(self):
        program = suite_program("compress", scale=1)
        spec = _two_speed_spec(
            program, profile=ProfileMeConfig(mean_interval=100, seed=9),
            window=400)
        result = run_session(spec)
        stats = result.two_speed
        # S << window forces sample points inside already-run windows.
        assert stats.skipped_samples > 0
        assert result.sampling_stats.dropped_busy >= stats.skipped_samples

    def test_validation_rejects_bad_two_speed_specs(self):
        program = counting_loop(iterations=20)
        profile = ProfileMeConfig(mean_interval=50, seed=1)
        with pytest.raises(ConfigError):
            SessionSpec(program=program, profile=profile,
                        exec_mode="two-speed", core_kind="inorder")
        with pytest.raises(ConfigError):
            SessionSpec(program=program, exec_mode="two-speed")
        with pytest.raises(ConfigError):
            SessionSpec(program=program, profile=profile,
                        exec_mode="two-speed", window=2)
        with pytest.raises(ConfigError):
            SessionSpec(program=program, profile=profile,
                        exec_mode="two-speed", max_cycles=1000)
        with pytest.raises(ConfigError):
            SessionSpec(program=program, profile=profile,
                        exec_mode="two-speed", collect_truth=True)
        with pytest.raises(ConfigError):
            SessionSpec(program=program, profile=profile,
                        exec_mode="unheard-of")


# ----------------------------------------------------------------------
# Estimate fidelity: two-speed samples against a full detailed run at
# the same sampling configuration (the Figure 3 envelope).


@pytest.fixture(scope="module")
def fidelity_runs():
    program = suite_program("compress", scale=2)
    profile = ProfileMeConfig(mean_interval=500, seed=11)
    two_speed = run_session(SessionSpec(
        program=program, profile=profile, exec_mode="two-speed",
        window=400, keep_records=False))
    detailed = run_session(SessionSpec(
        program=program, profile=profile, keep_records=False,
        collect_truth=True))
    return two_speed, detailed


@pytest.fixture(scope="module")
def miss_runs():
    # 16K nodes = 128KB of chase footprint: enough D-cache misses that
    # the sampled miss *rate* is statistically meaningful on both sides.
    program = classic_kernel("pointer_chase", nodes=16384, hops=25000)[0]
    profile = ProfileMeConfig(mean_interval=300, seed=11)
    two_speed = run_session(SessionSpec(
        program=program, profile=profile, exec_mode="two-speed",
        window=200, keep_records=False))
    detailed = run_session(SessionSpec(
        program=program, profile=profile, keep_records=False))
    return two_speed, detailed


class TestEstimateFidelity:
    def test_per_pc_retire_estimates_within_envelope(self, fidelity_runs):
        two_speed, detailed = fidelity_runs
        truth = detailed.truth.per_pc
        pairs = []
        for pc, profile in two_speed.database.per_pc.items():
            if profile.samples < 4 or pc not in truth:
                continue
            pairs.append((profile.samples * 500, truth[pc].fetched,
                          profile.samples))
        assert len(pairs) >= 5
        # Windowed placement adds bias on top of sampling noise, so ask
        # for half inside the 1-sigma envelope rather than Figure 3's
        # two thirds.
        assert ratio_within_envelope(pairs) >= 0.5

    def test_cache_miss_rates_agree(self, miss_runs):
        two_speed, detailed = miss_runs

        def miss_fraction(database):
            misses = sum(p.event_count(Event.DCACHE_MISS)
                         for p in database.per_pc.values())
            return misses / database.total_samples

        fast = miss_fraction(two_speed.database)
        slow = miss_fraction(detailed.database)
        assert slow > 0
        assert 0.4 < fast / slow < 2.5

    def test_mean_latency_registers_agree(self, fidelity_runs):
        two_speed, detailed = fidelity_runs

        def mean_latency(database, name):
            total = count = 0
            for profile in database.per_pc.values():
                aggregate = profile.latencies.get(name)
                if aggregate is not None:
                    total += aggregate.total
                    count += aggregate.count
            return total / count if count else None

        for name in ("fetch_to_map", "issue_to_retire_ready"):
            fast = mean_latency(two_speed.database, name)
            slow = mean_latency(detailed.database, name)
            assert fast is not None and slow is not None
            assert 0.4 < fast / slow < 2.5

    def test_total_sample_volume_is_comparable(self, fidelity_runs):
        two_speed, detailed = fidelity_runs
        selected_fast = two_speed.sampling_stats.selections
        selected_slow = detailed.unit.stats.selections
        assert selected_fast > 20
        assert 0.5 < selected_fast / selected_slow < 2.0


# ----------------------------------------------------------------------
# One-shot unit mode (auto_rearm=False) used by the window scheduler.


class TestOneShotUnit:
    def test_one_shot_fires_exactly_once(self):
        program = suite_program("compress", scale=1)
        delivered = []
        unit = ProfileMeUnit(ProfileMeConfig(mean_interval=50, seed=2),
                             handler=delivered.extend, auto_rearm=False)
        core = OutOfOrderCore(program)
        core.add_probe(unit)
        unit.arm_major_at(25)
        core.run(max_retired=2000)
        unit.finalize()
        assert unit.stats.selections == 1
        assert len(delivered) == 1

    def test_auto_rearm_default_still_resamples(self):
        program = suite_program("compress", scale=1)
        unit = ProfileMeUnit(ProfileMeConfig(mean_interval=50, seed=2),
                             handler=lambda batch: None)
        core = OutOfOrderCore(program)
        core.add_probe(unit)
        core.run(max_retired=2000)
        unit.finalize()
        assert unit.stats.selections > 5
