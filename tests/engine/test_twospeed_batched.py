"""Batched two-speed windows: determinism, parallel equality, accounting.

Batch mode plans every detailed window in one functional pass and runs
the windows independently.  The contracts pinned here:

* serial (``window_workers=1``) and parallel (``window_workers=N``)
  execution are byte-equivalent — worker count can never change results;
* the final architectural state matches chained two-speed mode exactly
  (the committed path is engine-independent);
* sample points landing inside a planned window's extent are accounted
  as ``dropped_busy``, mirroring the chained scheduler's free-running
  counter rule.
"""

import dataclasses

import pytest

from repro.cpu.config import MachineConfig
from repro.engine.session import SessionSpec, run_session
from repro.engine.sweep import spec_key
from repro.errors import ConfigError
from repro.isa.interpreter import Interpreter
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program


def record_key(record):
    return (record.pc, int(record.events), record.history,
            record.fetch_cycle, record.done_cycle, record.fetch_to_map,
            record.data_ready_to_issue, record.issue_to_retire_ready,
            record.retire_ready_to_retire, record.load_issue_to_completion)


def run(name="compress", scale=4, workers=1, batch=True, window=300,
        max_retired=25_000, seed=13):
    return run_session(SessionSpec(
        program=suite_program(name, scale=scale),
        profile=ProfileMeConfig(mean_interval=61, seed=seed),
        exec_mode="two-speed", window=window, batch_windows=batch,
        window_workers=workers, max_retired=max_retired))


def result_fingerprint(result):
    return {
        "cycles": result.cycles,
        "retired": result.stats.retired,
        "fetched": result.stats.fetched,
        "aborted": result.stats.aborted,
        "mispredicts": result.stats.mispredicts,
        "windows": result.two_speed.windows,
        "dropped_busy": result.sampling_stats.dropped_busy,
        "selections": result.sampling_stats.selections,
        "records": [record_key(r) for r in result.records],
        "final_regs": tuple(result.two_speed.final_state.regs),
        "final_pc": result.two_speed.final_state.pc,
    }


class TestSerialParallelEquality:
    def test_workers_do_not_change_results(self):
        serial = result_fingerprint(run(workers=1))
        parallel = result_fingerprint(run(workers=3))
        assert serial == parallel

    def test_parallel_multiple_workloads(self):
        for name in ("li", "go"):
            serial = result_fingerprint(run(name=name, workers=1,
                                            max_retired=12_000))
            parallel = result_fingerprint(run(name=name, workers=2,
                                              max_retired=12_000))
            assert serial == parallel, name


class TestBatchedVsChained:
    def test_final_state_matches_interpreter_exactly(self):
        # "Architectural state is exact": the batched final state must
        # be byte-identical to a plain interpreter run of the same
        # retired count — the committed path is engine-independent.
        batched = run(batch=True)
        interp = Interpreter(suite_program("compress", scale=4))
        for _ in interp.run(max_instructions=batched.stats.retired):
            pass
        reference = interp.state.snapshot()
        final = batched.two_speed.final_state
        assert final.regs == reference.regs
        assert final.pc == reference.pc
        assert final.memory == reference.memory
        assert batched.stats.retired == 25_000  # planner never overshoots

    def test_schedule_tracks_chained(self):
        # The planner replays the chained scheduler's interval draws.
        # The chained detailed core retires at retire-width granularity
        # (it may overshoot a window limit by a few instructions), so
        # the two schedules drift slightly — but window count, skip
        # accounting, and totals must stay within that slop.
        batched = run(batch=True)
        chained = run(batch=False)
        assert abs(batched.two_speed.windows
                   - chained.two_speed.windows) <= 2
        skipped_b = batched.two_speed.skipped_samples
        skipped_c = chained.two_speed.skipped_samples
        assert abs(skipped_b - skipped_c) <= max(3, skipped_c // 20)
        retire_width = MachineConfig.alpha21264_like().retire_width
        slop = chained.two_speed.windows * retire_width
        assert abs(batched.stats.retired - chained.stats.retired) <= slop

    def test_batched_delivers_samples(self):
        result = run()
        assert result.records
        assert result.database.total_samples == len(result.records)


class TestDroppedBusyAccounting:
    def test_short_interval_long_window_drops_samples(self):
        # mean_interval much smaller than the window: nearly every draw
        # lands inside the current window's extent and must be dropped
        # as busy, never deferred.
        result = run_session(SessionSpec(
            program=suite_program("compress", scale=4),
            profile=ProfileMeConfig(mean_interval=20, seed=3),
            exec_mode="two-speed", window=600, batch_windows=True,
            max_retired=20_000))
        stats = result.sampling_stats
        assert stats.dropped_busy > 0
        assert result.two_speed.skipped_samples == stats.dropped_busy
        # Every dropped draw was still a selection of the free-running
        # counter.
        assert stats.selections >= stats.dropped_busy

    def test_dropped_busy_tracks_chained_rule(self):
        # Same free-running-counter rule in both modes; counts drift
        # only with the retire-width schedule slop, never structurally.
        kwargs = dict(program=suite_program("li", scale=4),
                      profile=ProfileMeConfig(mean_interval=25, seed=8),
                      exec_mode="two-speed", window=400,
                      max_retired=15_000)
        batched = run_session(SessionSpec(batch_windows=True, **kwargs))
        chained = run_session(SessionSpec(**kwargs))
        skipped_b = batched.two_speed.skipped_samples
        skipped_c = chained.two_speed.skipped_samples
        assert skipped_b > 0 and skipped_c > 0
        assert abs(skipped_b - skipped_c) <= max(3, skipped_c // 20)


class TestSpecValidation:
    def test_batch_windows_requires_two_speed(self):
        with pytest.raises(ConfigError):
            SessionSpec(program=suite_program("compress", scale=1),
                        profile=ProfileMeConfig(),
                        batch_windows=True)

    def test_window_workers_must_be_positive(self):
        with pytest.raises(ConfigError):
            SessionSpec(program=suite_program("compress", scale=1),
                        profile=ProfileMeConfig(),
                        exec_mode="two-speed", batch_windows=True,
                        window_workers=0)

    def test_batch_flag_changes_spec_hash_only_when_set(self):
        base = SessionSpec(program=suite_program("compress", scale=1),
                           profile=ProfileMeConfig(),
                           exec_mode="two-speed")
        batched = dataclasses.replace(base, batch_windows=True)
        workers = dataclasses.replace(base, window_workers=4)
        # Worker count is an execution detail: never hashed.
        assert spec_key(workers) == spec_key(base)
        # Batch mode changes window warm-up provenance: hashed when on.
        assert spec_key(batched) != spec_key(base)
