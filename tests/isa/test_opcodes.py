"""Tests for opcode classification tables."""

from repro.isa import opcodes
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, Opcode


def test_every_opcode_has_class_and_latency():
    for op in Opcode:
        assert opcodes.op_class(op) in OpClass
        assert opcodes.exec_latency(op) >= 1


def test_long_latency_ops():
    assert opcodes.exec_latency(Opcode.MUL) == 7
    assert opcodes.exec_latency(Opcode.FDIV) > opcodes.exec_latency(
        Opcode.FADD)
    assert opcodes.exec_latency(Opcode.ADD) == 1


def test_conditional_branch_set():
    for op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        assert opcodes.is_conditional_branch(op)
        assert opcodes.is_control_flow(op)
    assert not opcodes.is_conditional_branch(Opcode.BR)
    assert opcodes.is_control_flow(Opcode.RET)
    assert not opcodes.is_control_flow(Opcode.ADD)


def test_writes_register():
    assert opcodes.writes_register(Opcode.ADD)
    assert opcodes.writes_register(Opcode.LD)
    assert opcodes.writes_register(Opcode.JSR)  # return address
    assert not opcodes.writes_register(Opcode.ST)
    assert not opcodes.writes_register(Opcode.BEQ)
    assert not opcodes.writes_register(Opcode.NOP)


def test_source_registers_skip_zero_reg():
    inst = Instruction(op=Opcode.ADD, dest=1, src1=31, src2=2)
    assert inst.source_registers() == [2]


def test_destination_register_none_for_zero_reg():
    inst = Instruction(op=Opcode.ADD, dest=31, src1=1, src2=2)
    assert inst.destination_register() is None


def test_store_reads_both_operands():
    inst = Instruction(op=Opcode.ST, src1=2, src2=3)
    assert sorted(inst.source_registers()) == [2, 3]


def test_shift_reads_only_src1():
    inst = Instruction(op=Opcode.SLL, dest=1, src1=2, imm=3)
    assert inst.source_registers() == [2]


def test_disassemble_mentions_operands():
    inst = Instruction(op=Opcode.LD, dest=4, src1=2, imm=8)
    text = inst.disassemble()
    assert "ld" in text
    assert "r4" in text
    assert "#8" in text
