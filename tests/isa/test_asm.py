"""Tests for the text assembler and its round trip."""

import pytest

from repro.errors import ProgramError
from repro.isa.asm import parse_asm, program_to_asm
from repro.isa.interpreter import Interpreter
from repro.isa.opcodes import Opcode
from repro.workloads import classic_kernel, stall_kernel, suite_program


SAMPLE = """
; sum 1..10
.data out 1
.entry main
.func main
    ldi r1, 10
    ldi r3, 0
loop:
    add r3, r3, r1
    lda r1, r1, #-1
    bne r1, loop
    ldi r2, 0x100000
    st r2, r3, #0   ; operand order matches disassembly: base, value
    halt
.endfunc
"""


class TestParse:
    def test_sample_assembles_and_runs(self):
        program = parse_asm(SAMPLE, name="sum")
        interp = Interpreter(program)
        interp.run_to_halt()
        assert interp.state.regs.read(3) == 55
        assert interp.state.memory.read(0x100000) == 55
        assert "main" in program.functions

    def test_labels_and_targets(self):
        program = parse_asm(SAMPLE)
        bne = next(i for i in program.instructions if i.op is Opcode.BNE)
        assert bne.target == program.pc_of_label("loop")

    def test_absolute_target(self):
        program = parse_asm(".func main\n    br @0x4\n    halt\n.endfunc")
        assert program.instructions[0].target == 4

    def test_zero_register(self):
        program = parse_asm(".func main\n    add r1, zero, zero\n"
                            "    halt\n.endfunc")
        assert program.instructions[0].src1 == 31

    def test_optional_trailing_immediate(self):
        program = parse_asm(".func main\n    ld r1, r2\n    halt\n.endfunc")
        assert program.instructions[0].imm == 0

    def test_data_with_init_and_address(self):
        program = parse_asm(
            ".data a 2 @0x200000 = 7 -1\n.func main\n    halt\n.endfunc")
        assert program.initial_memory[0x200000] == 7
        assert program.initial_memory[0x200008] == (1 << 64) - 1

    def test_jump_table(self):
        text = """
.table tbl = a b
.func main
a:
    nop
b:
    halt
.endfunc
"""
        program = parse_asm(text)
        base = min(program.initial_memory)
        assert program.initial_memory[base] == program.pc_of_label("a")

    def test_errors(self):
        with pytest.raises(ProgramError, match="unknown opcode"):
            parse_asm("    frobnicate r1\n")
        with pytest.raises(ProgramError, match="bad register"):
            parse_asm("    add r1, r99, r2\n")
        with pytest.raises(ProgramError, match="operands"):
            parse_asm("    add r1, r2\n")
        with pytest.raises(ProgramError, match="unknown directive"):
            parse_asm(".bogus x\n")


class TestRoundTrip:
    def _round_trip(self, program):
        text = program_to_asm(program)
        clone = parse_asm(text, name=program.name)
        assert clone.instructions == program.instructions
        assert clone.initial_memory == program.initial_memory
        assert clone.entry == program.entry
        assert clone.functions == program.functions
        return clone

    def test_kernel_round_trip(self):
        program, expected = classic_kernel("daxpy", n=32)
        clone = self._round_trip(program)
        interp = Interpreter(clone)
        interp.run_to_halt()
        assert interp.state.regs.read(3) == expected

    def test_stall_kernel_round_trip(self):
        self._round_trip(stall_kernel("dcache_miss", iterations=5))

    @pytest.mark.parametrize("name", ["compress", "perl"])
    def test_suite_round_trip(self, name):
        """Suite members use every feature: switches, recursion, calls."""
        program = suite_program(name, scale=1)
        clone = self._round_trip(program)
        ref = Interpreter(program)
        ref.run_to_halt(max_instructions=200_000)
        got = Interpreter(clone)
        got.run_to_halt(max_instructions=200_000)
        assert got.state.regs.snapshot() == ref.state.regs.snapshot()
