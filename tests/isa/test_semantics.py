"""Tests for the pure ALU/branch/address semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import semantics
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.utils.bitops import WORD_MASK, to_signed, to_unsigned

words = st.integers(min_value=0, max_value=WORD_MASK)


class TestAluResult:
    @given(words, words)
    def test_add_wraps(self, a, b):
        assert semantics.alu_result(Opcode.ADD, a, b, 0) == (a + b) & WORD_MASK

    @given(words, words)
    def test_sub_add_inverse(self, a, b):
        total = semantics.alu_result(Opcode.ADD, a, b, 0)
        assert semantics.alu_result(Opcode.SUB, total, b, 0) == a

    @given(words, words)
    def test_xor_involution(self, a, b):
        once = semantics.alu_result(Opcode.XOR, a, b, 0)
        assert semantics.alu_result(Opcode.XOR, once, b, 0) == a

    @given(words)
    def test_shift_roundtrip_low_bits(self, a):
        left = semantics.alu_result(Opcode.SLL, a, 0, 8)
        back = semantics.alu_result(Opcode.SRL, left, 0, 8)
        assert back == (a << 8 & WORD_MASK) >> 8

    @given(words, words)
    def test_cmplt_signed(self, a, b):
        expected = 1 if to_signed(a) < to_signed(b) else 0
        assert semantics.alu_result(Opcode.CMPLT, a, b, 0) == expected

    @given(words, words)
    def test_cmple_consistent_with_cmplt_and_cmpeq(self, a, b):
        le = semantics.alu_result(Opcode.CMPLE, a, b, 0)
        lt = semantics.alu_result(Opcode.CMPLT, a, b, 0)
        eq = semantics.alu_result(Opcode.CMPEQ, a, b, 0)
        assert le == (1 if (lt or eq) else 0)

    def test_mul_signed(self):
        a = to_unsigned(-3)
        assert semantics.alu_result(Opcode.MUL, a, 5, 0) == to_unsigned(-15)

    def test_lda_adds_immediate(self):
        assert semantics.alu_result(Opcode.LDA, 100, 0, -4) == 96

    def test_ldi_ignores_sources(self):
        assert semantics.alu_result(Opcode.LDI, 999, 999, 42) == 42

    def test_fdiv_by_zero_is_benign(self):
        # Wrong-path instructions may divide by garbage zero values.
        assert semantics.alu_result(Opcode.FDIV, 10, 0, 0) == 0


class TestBranchTaken:
    @given(words)
    def test_beq_bne_complementary(self, a):
        beq = semantics.branch_taken(Opcode.BEQ, a)
        bne = semantics.branch_taken(Opcode.BNE, a)
        assert beq != bne

    @given(words)
    def test_blt_bge_complementary(self, a):
        blt = semantics.branch_taken(Opcode.BLT, a)
        bge = semantics.branch_taken(Opcode.BGE, a)
        assert blt != bge

    def test_blt_uses_sign(self):
        assert semantics.branch_taken(Opcode.BLT, to_unsigned(-1))
        assert not semantics.branch_taken(Opcode.BLT, 1)


class TestControlOutcome:
    def test_br_always_taken(self):
        inst = Instruction(op=Opcode.BR, target=64)
        assert semantics.control_outcome(inst, 0, 0) == (True, 64)

    def test_conditional_fall_through(self):
        inst = Instruction(op=Opcode.BNE, src1=1, target=64)
        taken, next_pc = semantics.control_outcome(inst, 8, 0)
        assert not taken
        assert next_pc == 12

    def test_jmp_target_aligned(self):
        inst = Instruction(op=Opcode.JMP, src1=1)
        taken, next_pc = semantics.control_outcome(inst, 0, 0x47)
        assert taken
        assert next_pc == 0x44

    def test_effective_address_word_aligned(self):
        inst = Instruction(op=Opcode.LD, dest=1, src1=2, imm=5)
        assert semantics.effective_address(inst, 0x1003) % 8 == 0
