"""Tests for the reference interpreter."""

import pytest

from repro.errors import SimulationError
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import Interpreter, functional_trace
from repro.isa.opcodes import Opcode

from tests.conftest import counting_loop


def test_counting_loop_retires_expected_instructions(tiny_program):
    interp = Interpreter(tiny_program)
    retired = interp.run_to_halt()
    # ldi*2 + 10 * (lda, lda, bne) + halt
    assert retired == 2 + 10 * 3 + 1
    assert interp.state.regs.read(3) == 10


def test_memory_program_sums_array(memory_program):
    from repro.isa.builder import DATA_BASE

    interp = Interpreter(memory_program)
    interp.run_to_halt()
    assert interp.state.regs.read(3) == sum(range(1, 33))
    out_addr = DATA_BASE + 32 * 8  # "out" follows the 32-word array
    assert interp.state.memory.read(out_addr) == sum(range(1, 33))


def test_call_program_returns(call_program):
    interp = Interpreter(call_program)
    interp.run_to_halt()
    # r3 doubles after increment 8 times: x -> 2*(x+1)
    value = 0
    for _ in range(8):
        value = 2 * (value + 1)
    assert interp.state.regs.read(3) == value


def test_trace_records_branch_outcomes(tiny_program):
    trace = functional_trace(tiny_program)
    branches = [e for e in trace if e.inst.op is Opcode.BNE]
    assert len(branches) == 10
    assert all(e.taken for e in branches[:-1])
    assert branches[-1].taken is False


def test_trace_records_effective_addresses(memory_program):
    trace = functional_trace(memory_program)
    loads = [e for e in trace if e.inst.is_load]
    assert len(loads) == 32
    addrs = [e.eff_addr for e in loads]
    assert addrs == sorted(addrs)
    assert all(a % 8 == 0 for a in addrs)


def test_runaway_program_raises():
    b = ProgramBuilder()
    b.label("spin")
    b.br("spin")
    program = b.build()
    with pytest.raises(SimulationError, match="did not halt"):
        Interpreter(program).run_to_halt(max_instructions=100)


def test_control_transfer_to_invalid_pc_raises():
    b = ProgramBuilder()
    b.ldi(1, 0x9999)
    b.jmp(1)
    program = b.build()
    interp = Interpreter(program)
    interp.step()
    with pytest.raises(SimulationError, match="invalid PC"):
        interp.step()


def test_run_generator_stops_at_limit(tiny_program):
    assert len(list(Interpreter(tiny_program).run(max_instructions=5))) == 5


def test_zero_register_reads_zero():
    b = ProgramBuilder()
    b.ldi(31, 77)  # write to R31 is discarded
    b.add(1, 31, 31)
    b.halt()
    interp = Interpreter(b.build())
    interp.run_to_halt()
    assert interp.state.regs.read(31) == 0
    assert interp.state.regs.read(1) == 0


def test_jsr_saves_return_address(call_program):
    trace = functional_trace(call_program)
    jsr = next(e for e in trace if e.inst.op is Opcode.JSR)
    ret = next(e for e in trace if e.inst.op is Opcode.RET)
    assert ret.next_pc == jsr.pc + 4


def test_every_instruction_carries_a_dispatch_handler(tiny_program):
    from repro.isa.stepfns import HANDLERS

    for inst in tiny_program.instructions:
        assert inst.exec_fn is HANDLERS[inst.op]


def test_dispatch_matches_trace_across_opcodes(memory_program, call_program):
    # The per-opcode handlers drive step(); cross-check their outcomes
    # against the architectural results the older ladder produced.
    for program, expected_r3 in ((memory_program, sum(range(1, 33))),
                                 (call_program, 510)):
        interp = Interpreter(program)
        interp.run_to_halt()
        assert interp.state.regs.read(3) == expected_r3


def test_snapshot_restore_round_trip(memory_program):
    interp = Interpreter(memory_program)
    for _ in range(10):
        interp.step()
    snap = interp.state.snapshot()
    finished = Interpreter(memory_program)
    finished.run_to_halt()

    resumed = Interpreter(memory_program)
    resumed.state.restore(snap)
    resumed.run_to_halt()
    assert resumed.state.regs.snapshot() == finished.state.regs.snapshot()
    assert resumed.state.memory.snapshot() == finished.state.memory.snapshot()
    # The snapshot is a copy: mutating the restored run never aliases it.
    assert snap.pc != resumed.state.pc


def test_interpreter_accepts_external_state(memory_program):
    from repro.isa.state import ArchState

    state = ArchState(memory_program)
    interp = Interpreter(memory_program, state=state)
    assert interp.state is state
    interp.run_to_halt()
    assert state.halted
