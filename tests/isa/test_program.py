"""Tests for the Program container."""

import pytest

from repro.errors import ProgramError
from repro.isa.builder import ProgramBuilder
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


def _program(count=4):
    return Program(instructions=[Instruction(op=Opcode.NOP)] * count)


def test_pc_limit_and_contains():
    program = _program(4)
    assert program.pc_limit == 16
    assert program.contains_pc(0)
    assert program.contains_pc(12)
    assert not program.contains_pc(16)
    assert not program.contains_pc(2)  # misaligned
    assert not program.contains_pc(-4)


def test_fetch_valid_and_invalid():
    program = _program(2)
    assert program.fetch(4).op is Opcode.NOP
    with pytest.raises(ProgramError):
        program.fetch(8)
    assert program.fetch_or_none(8) is None
    assert program.fetch_or_none(6) is None


def test_empty_program_rejected():
    with pytest.raises(ProgramError, match="no instructions"):
        Program(instructions=[])


def test_bad_entry_rejected():
    with pytest.raises(ProgramError):
        Program(instructions=[Instruction(op=Opcode.NOP)], entry=4)
    with pytest.raises(ProgramError):
        Program(instructions=[Instruction(op=Opcode.NOP)], entry=2)


def test_label_lookup():
    b = ProgramBuilder()
    b.label("here")
    b.halt()
    program = b.build()
    assert program.pc_of_label("here") == 0
    assert program.label_of_pc(0) == "here"
    assert program.label_of_pc(4) is None
    with pytest.raises(ProgramError):
        program.pc_of_label("gone")


def test_listing_and_dump(memory_program):
    listing = memory_program.listing()
    assert len(listing) == len(memory_program)
    assert listing[0][0] == 0
    dump = memory_program.dump()
    assert "main:" in dump
    assert "ld" in dump


def test_function_of_pc_outside_functions():
    program = _program(4)
    assert program.function_of_pc(0) is None
    assert program.function_entry(0) is None
