"""Tests for the relocation-safety validator."""

import pytest

from repro.errors import AnalysisError, RelocationError
from repro.isa.builder import ProgramBuilder
from repro.isa.relocation import ensure_relocatable, indirect_jump_pcs


def clean_program():
    b = ProgramBuilder(name="clean")
    b.begin_function("main")
    b.ldi(1, 3)
    b.label("loop")
    b.jsr("leaf", ra=26)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    b.begin_function("leaf")
    b.ret(26)
    b.end_function()
    return b.build(entry="main")


def jumpy_program(jumps=1):
    b = ProgramBuilder(name="jumpy")
    b.begin_function("main")
    b.ldi(1, 8)
    for _ in range(jumps):
        b.jmp(1)
    b.halt()
    b.end_function()
    return b.build(entry="main")


class TestIndirectJumpPcs:
    def test_clean_program_has_none(self):
        assert indirect_jump_pcs(clean_program()) == ()

    def test_jmp_pcs_listed_ascending(self):
        program = jumpy_program(jumps=3)
        pcs = indirect_jump_pcs(program)
        assert len(pcs) == 3
        assert list(pcs) == sorted(pcs)

    def test_jsr_and_ret_are_not_indirect_jumps(self):
        # JSR targets are direct and RET consumes a runtime-produced
        # return address; neither blocks relocation.
        assert indirect_jump_pcs(clean_program()) == ()


class TestEnsureRelocatable:
    def test_clean_program_passes(self):
        ensure_relocatable(clean_program())  # no exception

    def test_jmp_program_raises_typed_error(self):
        with pytest.raises(RelocationError, match="indirect") as exc:
            ensure_relocatable(jumpy_program())
        assert exc.value.pcs == indirect_jump_pcs(jumpy_program())
        assert isinstance(exc.value, AnalysisError)

    def test_operation_appears_in_the_message(self):
        with pytest.raises(RelocationError, match="reorder functions of"):
            ensure_relocatable(jumpy_program(),
                               operation="reorder functions of")

    def test_offending_pcs_named_in_the_message(self):
        program = jumpy_program()
        (pc,) = indirect_jump_pcs(program)
        with pytest.raises(RelocationError, match="%#x" % pc):
            ensure_relocatable(program)

    def test_long_pc_lists_are_elided(self):
        program = jumpy_program(jumps=12)
        with pytest.raises(RelocationError) as exc:
            ensure_relocatable(program)
        assert "..." in str(exc.value)
        assert len(exc.value.pcs) == 12  # the attribute stays complete
