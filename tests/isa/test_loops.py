"""Tests for natural-loop detection."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.loops import (dominators, find_loops, forward_edges,
                             loop_of_pc)


def nested_loop_program():
    b = ProgramBuilder(name="nested")
    b.begin_function("main")
    b.ldi(1, 3)
    b.label("outer")  # header of the outer loop
    b.ldi(2, 4)
    b.label("inner")  # header of the inner loop
    b.lda(3, 3, 1)
    b.lda(2, 2, -1)
    b.bne(2, "inner")
    b.lda(1, 1, -1)
    b.bne(1, "outer")
    b.halt()
    b.end_function()
    return b.build(entry="main")


def two_function_loops():
    b = ProgramBuilder(name="twofn")
    b.begin_function("main")
    b.ldi(1, 5)
    b.label("mloop")
    b.jsr("leaf", ra=26)
    b.lda(1, 1, -1)
    b.bne(1, "mloop")
    b.halt()
    b.end_function()
    b.begin_function("leaf")
    b.ldi(2, 3)
    b.label("lloop")
    b.lda(2, 2, -1)
    b.bne(2, "lloop")
    b.ret(26)
    b.end_function()
    return b.build(entry="main")


class TestForwardEdges:
    def test_conditional_has_two_successors(self):
        program = nested_loop_program()
        edges = forward_edges(program)
        inner_bne = program.pc_of_label("inner") + 8  # lda, lda, bne
        assert sorted(edges[inner_bne]) == sorted(
            [program.pc_of_label("inner"), inner_bne + 4])

    def test_jsr_falls_through(self):
        program = two_function_loops()
        edges = forward_edges(program)
        jsr_pc = 4
        assert edges[jsr_pc] == [8]  # the return point, not the callee

    def test_halt_and_ret_terminate(self):
        program = two_function_loops()
        edges = forward_edges(program)
        ret_pc = program.functions["leaf"][1] - 4
        assert edges[ret_pc] == []


class TestDominators:
    def test_entry_dominates_everything(self):
        program = nested_loop_program()
        edges = forward_edges(program)
        dom = dominators(0, edges, program.functions["main"])
        for node, doms in dom.items():
            assert 0 in doms
            assert node in doms

    def test_inner_header_dominates_inner_body(self):
        program = nested_loop_program()
        edges = forward_edges(program)
        dom = dominators(0, edges, program.functions["main"])
        inner = program.pc_of_label("inner")
        assert inner in dom[inner + 8]  # the inner bne


class TestFindLoops:
    def test_nested_loops_found(self):
        program = nested_loop_program()
        loops = find_loops(program)
        assert len(loops) == 2
        by_header = {l.header: l for l in loops}
        outer = by_header[program.pc_of_label("outer")]
        inner = by_header[program.pc_of_label("inner")]
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert inner.body < outer.body

    def test_innermost_attribution(self):
        program = nested_loop_program()
        loops = find_loops(program)
        inner_body_pc = program.pc_of_label("inner")
        innermost = loop_of_pc(loops, inner_body_pc)
        assert innermost.header == program.pc_of_label("inner")
        # A pc only in the outer loop attributes to the outer loop.
        outer_only = program.pc_of_label("outer")
        assert loop_of_pc(loops, outer_only).header == outer_only

    def test_loops_per_function(self):
        program = two_function_loops()
        loops = find_loops(program)
        assert {l.function for l in loops} == {"main", "leaf"}

    def test_straightline_code_has_no_loop(self):
        b = ProgramBuilder(name="line")
        b.begin_function("main")
        b.nop(4)
        b.halt()
        b.end_function()
        program = b.build(entry="main")
        assert find_loops(program) == []
        assert loop_of_pc([], 0) is None

    def test_suite_members_have_loops(self):
        from repro.workloads import suite_program

        program = suite_program("compress", scale=1)
        loops = find_loops(program)
        assert loops
        # Every phase function contains at least one loop.
        functions_with_loops = {l.function for l in loops}
        assert any(name.startswith("phase_")
                   for name in functions_with_loops)
