"""Tests for the backward control-flow graph."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.cfg import (CALL, INDIRECT, RETURN, SEQ, TAKEN,
                           ControlFlowGraph, edge_counts,
                           observed_indirect_targets)
from repro.isa.interpreter import functional_trace


def diamond_program():
    """if/else diamond inside a loop."""
    b = ProgramBuilder(name="diamond")
    b.begin_function("main")
    b.ldi(1, 4)
    b.label("loop")
    b.bne(3, "odd")
    b.lda(3, 3, 1)  # even arm
    b.br("join")
    b.label("odd")
    b.lda(3, 3, -1)
    b.label("join")
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main")


class TestIntraproceduralEdges:
    def test_merge_point_has_both_arm_predecessors(self):
        program = diamond_program()
        cfg = ControlFlowGraph(program)
        join = program.pc_of_label("join")
        preds = cfg.predecessors(join)
        kinds = {(e.pred, e.kind) for e in preds}
        # br from even arm (TAKEN) and fall-through from odd arm (SEQ).
        br_pc = program.pc_of_label("odd") - 4
        odd_last = join - 4
        assert (br_pc, TAKEN) in kinds
        assert (odd_last, SEQ) in kinds

    def test_conditional_edges_carry_direction_bits(self):
        program = diamond_program()
        cfg = ControlFlowGraph(program)
        odd = program.pc_of_label("odd")
        taken_edges = [e for e in cfg.predecessors(odd) if e.taken_bit == 1]
        assert len(taken_edges) == 1
        # The fall-through successor of the same branch gets bit 0.
        branch_pc = taken_edges[0].pred
        fallthrough = branch_pc + 4
        bits = [e.taken_bit for e in cfg.predecessors(fallthrough)
                if e.pred == branch_pc]
        assert bits == [0]

    def test_loop_backedge(self):
        program = diamond_program()
        cfg = ControlFlowGraph(program)
        loop = program.pc_of_label("loop")
        back = [e for e in cfg.predecessors(loop) if e.taken_bit == 1]
        assert len(back) == 1


class TestInterproceduralEdges:
    def _program(self):
        b = ProgramBuilder(name="callret")
        b.begin_function("main")
        b.jsr("leaf", ra=26)
        b.nop()
        b.halt()
        b.end_function()
        b.begin_function("leaf")
        b.nop()
        b.ret(26)
        b.end_function()
        return b.build(entry="main")

    def test_call_edge_only_interprocedural(self):
        program = self._program()
        cfg = ControlFlowGraph(program)
        leaf = program.pc_of_label("leaf")
        assert cfg.predecessors(leaf) == []
        inter = cfg.predecessors(leaf, interprocedural=True)
        assert [(e.pred, e.kind) for e in inter] == [(0, CALL)]

    def test_return_edge_at_post_call_point(self):
        program = self._program()
        cfg = ControlFlowGraph(program)
        post_call = 4  # instruction after the JSR
        assert cfg.predecessors(post_call) == []
        inter = cfg.predecessors(post_call, interprocedural=True)
        ret_pc = program.pc_of_label("leaf") + 4
        assert [(e.pred, e.kind) for e in inter] == [(ret_pc, RETURN)]

    def test_expected_call_site_filters(self):
        b = ProgramBuilder(name="twocalls")
        b.begin_function("main")
        b.jsr("leaf", ra=26)
        b.jsr("leaf", ra=26)
        b.halt()
        b.end_function()
        b.begin_function("leaf")
        b.ret(26)
        b.end_function()
        program = b.build(entry="main")
        cfg = ControlFlowGraph(program)
        leaf = program.pc_of_label("leaf")
        unfiltered = cfg.predecessors(leaf, interprocedural=True)
        assert len(unfiltered) == 2
        filtered = cfg.predecessors(leaf, interprocedural=True,
                                    expected_call_site=4)
        assert [(e.pred, e.kind) for e in filtered] == [(4, CALL)]


class TestIndirectEdges:
    def test_observed_jmp_targets_become_edges(self):
        b = ProgramBuilder(name="switch")
        b.begin_function("main")
        b.jump_table("tbl", ["case0"])
        b.ldi(2, b.address_of("tbl"))
        b.ld(3, 2, 0)
        b.jmp(3)
        b.label("case0")
        b.halt()
        b.end_function()
        program = b.build(entry="main")
        trace = functional_trace(program)
        observed = observed_indirect_targets(trace)
        cfg = ControlFlowGraph(program, observed)
        case0 = program.pc_of_label("case0")
        kinds = [(e.pred, e.kind) for e in cfg.predecessors(case0)]
        jmp_pc = case0 - 4
        assert (jmp_pc, INDIRECT) in kinds


def test_edge_counts_from_trace():
    program = diamond_program()
    trace = functional_trace(program)
    counts = edge_counts(trace)
    loop = program.pc_of_label("loop")
    backedge_count = counts.get((program.pc_limit - 8, loop), 0)
    assert backedge_count == 3  # 4 iterations -> 3 taken back edges
    total = sum(counts.values())
    assert total == len(trace) - 1
