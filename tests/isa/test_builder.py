"""Tests for the assembler-style program builder."""

import pytest

from repro.errors import ProgramError
from repro.isa.builder import DATA_BASE, ProgramBuilder
from repro.isa.opcodes import Opcode


def test_labels_resolve_forward_and_backward():
    b = ProgramBuilder()
    b.label("start")
    b.br("end")  # forward reference
    b.br("start")  # backward reference
    b.label("end")
    b.halt()
    program = b.build()
    assert program.instructions[0].target == program.labels["end"]
    assert program.instructions[1].target == 0


def test_unknown_label_raises_at_build():
    b = ProgramBuilder()
    b.br("nowhere")
    b.halt()
    with pytest.raises(ProgramError, match="nowhere"):
        b.build()


def test_duplicate_label_rejected():
    b = ProgramBuilder()
    b.label("x")
    b.nop()
    with pytest.raises(ProgramError, match="duplicate"):
        b.label("x")


def test_alloc_initializes_memory():
    b = ProgramBuilder()
    base = b.alloc("data", 3, init=[7, 8])
    b.halt()
    program = b.build()
    assert base == DATA_BASE
    assert program.initial_memory[base] == 7
    assert program.initial_memory[base + 8] == 8
    assert program.initial_memory[base + 16] == 0


def test_alloc_negative_values_wrap_to_unsigned():
    b = ProgramBuilder()
    base = b.alloc("data", 1, init=[-1])
    b.halt()
    program = b.build()
    assert program.initial_memory[base] == (1 << 64) - 1


def test_alloc_too_many_initializers():
    b = ProgramBuilder()
    with pytest.raises(ProgramError, match="exceed"):
        b.alloc("data", 1, init=[1, 2])


def test_register_range_checked():
    b = ProgramBuilder()
    with pytest.raises(ProgramError, match="register"):
        b.add(32, 0, 1)


def test_function_extents_recorded():
    b = ProgramBuilder()
    b.begin_function("f")
    b.nop(3)
    b.ret()
    b.end_function()
    program = b.build()
    assert program.functions["f"] == (0, 16)
    assert program.function_of_pc(8) == "f"
    assert program.function_entry(8) == 0


def test_unclosed_function_rejected():
    b = ProgramBuilder()
    b.begin_function("f")
    b.halt()
    with pytest.raises(ProgramError, match="never closed"):
        b.build()


def test_nested_function_rejected():
    b = ProgramBuilder()
    b.begin_function("f")
    b.nop()
    with pytest.raises(ProgramError, match="still open"):
        b.begin_function("g")


def test_jump_table_resolves_labels():
    b = ProgramBuilder()
    base = b.jump_table("tbl", ["a", "b"])
    b.label("a")
    b.nop()
    b.label("b")
    b.halt()
    program = b.build()
    assert program.initial_memory[base] == program.labels["a"]
    assert program.initial_memory[base + 8] == program.labels["b"]


def test_entry_by_label():
    b = ProgramBuilder()
    b.nop()
    b.label("go")
    b.halt()
    program = b.build(entry="go")
    assert program.entry == 4


def test_store_operand_order():
    # st(value, base) stores src2=value via src1=base.
    b = ProgramBuilder()
    b.st(3, 5, 16)
    b.halt()
    inst = b.build().instructions[0]
    assert inst.op is Opcode.ST
    assert inst.src1 == 5
    assert inst.src2 == 3
    assert inst.imm == 16
