"""Tests for the figure microbenchmarks and stall kernels."""

import pytest

from repro.cpu.ooo.core import OutOfOrderCore
from repro.errors import ProgramError
from repro.events import Event
from repro.isa.interpreter import Interpreter, functional_trace
from repro.isa.opcodes import Opcode
from repro.workloads.microbench import (fig2_loop, fig7_three_loops,
                                        kernel_names, stall_kernel)


class TestFig2Loop:
    def test_terminates_and_reports_load_pc(self):
        program, load_pc = fig2_loop(iterations=10, nop_count=5)
        trace = functional_trace(program)
        loads = [e for e in trace if e.inst.is_load]
        assert len(loads) == 10
        assert all(e.pc == load_pc for e in loads)

    def test_single_memory_instruction(self):
        program, load_pc = fig2_loop(iterations=5, nop_count=10)
        memory_ops = [i for i in program.instructions if i.is_memory]
        assert len(memory_ops) == 1

    def test_load_hits_after_warmup(self):
        program, load_pc = fig2_loop(iterations=50, nop_count=10)
        core = OutOfOrderCore(program)
        core.run()
        # One cold miss; everything after hits the same line.
        assert core.hierarchy.l1d.misses <= 2


class TestFig7ThreeLoops:
    def test_regions_partition_the_loops(self):
        program, regions = fig7_three_loops(iterations=5)
        assert set(regions) == {"serial", "parallel", "memory"}
        for start, end in regions.values():
            assert 0 <= start < end <= program.pc_limit

    def test_runs_to_completion(self):
        program, _ = fig7_three_loops(iterations=5)
        assert Interpreter(program).run_to_halt() > 0

    def test_memory_loop_misses(self):
        program, regions = fig7_three_loops(iterations=30)
        core = OutOfOrderCore(program)
        core.run()
        assert core.hierarchy.l1d.misses > 25  # line-strided loads

    def test_serial_loop_slower_per_instruction_than_parallel(self):
        from repro.analysis.groundtruth import GroundTruthCollector

        program, regions = fig7_three_loops(iterations=40)
        core = OutOfOrderCore(program)
        truth = core.add_probe(GroundTruthCollector())
        core.run()

        def mean_latency(region):
            start, end = regions[region]
            totals = [t for pc, t in truth.per_pc.items()
                      if start <= pc < end and t.latency_count]
            return (sum(t.latency_sum for t in totals)
                    / sum(t.latency_count for t in totals))

        assert mean_latency("serial") > mean_latency("parallel")


class TestStallKernels:
    def test_all_kernels_terminate(self):
        for name in kernel_names():
            program = stall_kernel(name, iterations=5)
            assert Interpreter(program).run_to_halt() > 0

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ProgramError, match="unknown stall kernel"):
            stall_kernel("bogus")

    @pytest.mark.parametrize("name,latency_field", [
        ("dep_chain", "map_to_data_ready"),
        ("fu_contention", "data_ready_to_issue"),
        ("dcache_miss", "load_issue_to_completion"),
        ("retire_block", "retire_ready_to_retire"),
    ])
    def test_kernel_provokes_its_latency(self, name, latency_field):
        """Each Table 1 kernel inflates its targeted latency register."""
        from repro.harness import run_profiled
        from repro.profileme.unit import ProfileMeConfig

        program = stall_kernel(name, iterations=120)
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=15, seed=6))
        # Mean of the targeted latency across all samples, vs a quiet
        # baseline kernel: must be clearly elevated somewhere.
        values = []
        for profile in run.database.per_pc.values():
            aggregate = profile.latency(latency_field)
            if aggregate.count:
                values.append(aggregate.mean)
        assert values
        assert max(values) >= 3.0

    def test_map_stall_kernel_provokes_map_stalls(self):
        from repro.cpu.probes import Probe

        class StallCounter(Probe):
            def __init__(self):
                self.count = 0

            def on_retire(self, dyninst, cycle):
                if dyninst.events & Event.MAP_STALL_REGS:
                    self.count += 1

        program = stall_kernel("map_stall", iterations=60)
        core = OutOfOrderCore(program)
        counter = core.add_probe(StallCounter())
        core.run()
        assert counter.count > 0
