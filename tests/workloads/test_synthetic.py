"""Tests for the synthetic workload generator."""

import pytest

from repro.errors import ConfigError
from repro.isa.interpreter import Interpreter, functional_trace
from repro.isa.opcodes import Opcode
from repro.workloads.synthetic import (PhaseSpec, SyntheticSpec,
                                       build_synthetic)


def small_spec(**overrides):
    base = dict(name="t", seed=3, outer_iterations=3,
                phases=(PhaseSpec(iterations=6, branch_biases=(128,),
                                  access="random"),),
                footprint_words=256)
    base.update(overrides)
    return SyntheticSpec(**base)


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = build_synthetic(small_spec())
        b = build_synthetic(small_spec())
        assert [i.disassemble() for i in a.instructions] == \
               [i.disassemble() for i in b.instructions]
        assert functional_trace(a)[-1].pc == functional_trace(b)[-1].pc

    def test_different_seeds_differ_dynamically(self):
        a = build_synthetic(small_spec(seed=1))
        b = build_synthetic(small_spec(seed=2))
        ta = [e.taken for e in functional_trace(a) if e.inst.is_conditional]
        tb = [e.taken for e in functional_trace(b) if e.inst.is_conditional]
        assert ta != tb

    def test_terminates(self):
        program = build_synthetic(small_spec())
        assert Interpreter(program).run_to_halt(max_instructions=10 ** 6)

    def test_functions_declared(self):
        program = build_synthetic(small_spec())
        assert "main" in program.functions
        assert any(name.startswith("phase_") for name in program.functions)


class TestBranchBias:
    @pytest.mark.parametrize("bias,expected", [(32, 0.125), (224, 0.875)])
    def test_observed_taken_rate_tracks_bias(self, bias, expected):
        spec = small_spec(
            outer_iterations=8,
            phases=(PhaseSpec(iterations=40, branch_biases=(bias,),
                              access="none"),))
        program = build_synthetic(spec)
        trace = functional_trace(program)
        # The biased branch is the only BNE on r4 (cmplt result).
        takens = []
        for index, entry in enumerate(trace):
            if (entry.inst.op is Opcode.BNE and entry.inst.src1 == 4):
                takens.append(entry.taken)
        assert len(takens) >= 300
        rate = sum(takens) / len(takens)
        assert abs(rate - expected) < 0.08


class TestAccessPatterns:
    def _trace_addrs(self, access):
        spec = small_spec(
            phases=(PhaseSpec(iterations=20, access=access,
                              accesses_per_iter=2),))
        program = build_synthetic(spec)
        trace = functional_trace(program)
        return [e.eff_addr for e in trace if e.inst.is_load]

    def test_chase_follows_chain(self):
        spec = small_spec(
            phases=(PhaseSpec(iterations=10, access="chase",
                              accesses_per_iter=3),))
        program = build_synthetic(spec)
        trace = functional_trace(program)
        chase_loads = [e for e in trace
                       if e.inst.is_load and e.inst.src1 == 9]
        assert len(chase_loads) >= 30
        # Each chase load reads the pointer for the next one.
        for prev, nxt in zip(chase_loads, chase_loads[1:]):
            assert nxt.eff_addr != prev.eff_addr

    def test_random_access_spreads(self):
        addrs = self._trace_addrs("random")
        assert len(set(addrs)) > len(addrs) // 3

    def test_seq_access_locality(self):
        addrs = self._trace_addrs("seq")
        deltas = [abs(b - a) for a, b in zip(addrs, addrs[1:])]
        assert sum(d <= 64 for d in deltas) / len(deltas) > 0.5


class TestStructure:
    def test_switch_emits_indirect_jumps(self):
        spec = small_spec(
            phases=(PhaseSpec(iterations=8, use_switch=True),))
        program = build_synthetic(spec)
        assert any(i.op is Opcode.JMP for i in program.instructions)
        trace = functional_trace(program)
        assert any(e.inst.op is Opcode.JMP for e in trace)

    def test_recursion_bounded(self):
        spec = small_spec(recursion_depth=5)
        program = build_synthetic(spec)
        trace = functional_trace(program)
        depth = 0
        max_depth = 0
        for entry in trace:
            if entry.inst.op is Opcode.JSR:
                depth += 1
                max_depth = max(max_depth, depth)
            elif entry.inst.op is Opcode.RET:
                depth -= 1
        assert max_depth >= 5

    def test_helpers_called(self):
        spec = small_spec(
            phases=(PhaseSpec(iterations=6, call_helper=True),))
        program = build_synthetic(spec)
        trace = functional_trace(program)
        helper_entries = {program.functions[name][0]
                          for name in program.functions
                          if name.startswith("helper")}
        visited = {e.pc for e in trace}
        assert helper_entries & visited

    def test_validation(self):
        with pytest.raises(ConfigError):
            PhaseSpec(access="bogus")
        with pytest.raises(ConfigError):
            PhaseSpec(branch_biases=(300,))
        with pytest.raises(ConfigError):
            SyntheticSpec(name="x", footprint_words=1000)
