"""Tests for the classic kernel library.

Each kernel carries a Python-side expected result; running it through
the reference interpreter *and* the out-of-order core and matching both
against the expectation is a three-way consistency check on the ISA,
builder, and timing model.
"""

import pytest

from repro.cpu.ooo.core import OutOfOrderCore
from repro.errors import ProgramError
from repro.isa.interpreter import Interpreter
from repro.workloads.kernels import classic_kernel, classic_kernel_names


def run_both(program):
    interp = Interpreter(program)
    interp.run_to_halt(max_instructions=2_000_000)
    core = OutOfOrderCore(program)
    core.run()
    assert core.architectural_registers() == interp.state.regs.snapshot()
    return interp.state.regs.read(3)


def test_kernel_registry():
    names = classic_kernel_names()
    assert "daxpy" in names
    assert len(names) == 6
    with pytest.raises(ProgramError, match="unknown kernel"):
        classic_kernel("quicksort")


@pytest.mark.parametrize("name", classic_kernel_names())
def test_kernel_matches_expected(name):
    program, expected = classic_kernel(name)
    assert run_both(program) == expected


class TestKernelSignatures:
    """Each kernel must exhibit its textbook bottleneck."""

    def test_pointer_chase_is_latency_bound(self):
        program, _ = classic_kernel("pointer_chase", nodes=2048, hops=2000)
        core = OutOfOrderCore(program)
        core.run()
        assert core.ipc < 0.5  # serial loads dominate

    def test_daxpy_outruns_pointer_chase(self):
        # daxpy's iterations pipeline (bounded by the conservative
        # store-to-load ordering of the LSQ); the chase cannot pipeline
        # at all.
        program, _ = classic_kernel("daxpy", n=512)
        core = OutOfOrderCore(program)
        core.run()
        assert core.ipc > 0.35
        chase, _ = classic_kernel("pointer_chase", nodes=4096, hops=2000)
        chase_core = OutOfOrderCore(chase)
        chase_core.run()
        assert core.ipc > 1.5 * chase_core.ipc

    def test_binary_search_mispredicts(self):
        program, _ = classic_kernel("binary_search", size=1024,
                                    searches=150)
        core = OutOfOrderCore(program)
        core.run()
        assert core.mispredicts > 100  # data-dependent directions

    def test_column_major_misses_more(self):
        # The column-major layout conflicts in a small L1: far more
        # misses.  The out-of-order window then *hides* the L2-hit
        # latency behind the accumulator chain (cycles end up close),
        # while the stall-on-use in-order machine pays for every miss —
        # the motivating observation of the whole paper in one kernel.
        from repro.cpu.config import MachineConfig
        from repro.cpu.inorder.core import InOrderCore
        from repro.mem.cache import CacheConfig
        from repro.mem.hierarchy import HierarchyConfig

        memory = HierarchyConfig(
            l1d=CacheConfig(name="l1d", size_bytes=8 * 1024,
                            line_bytes=64, associativity=2))
        kernels = {
            cm: classic_kernel("matrix_walk", rows=256, cols=16,
                               column_major=cm)[0]
            for cm in (False, True)
        }

        ooo_config = MachineConfig.alpha21264_like(memory=memory)
        ooo = {cm: OutOfOrderCore(kernels[cm], config=ooo_config)
               for cm in kernels}
        for core in ooo.values():
            core.run()
        assert (ooo[True].hierarchy.l1d.misses
                > 3 * ooo[False].hierarchy.l1d.misses)
        # The OoO machine hides the extra (L2-hit) latency almost fully.
        assert ooo[True].cycle < 1.3 * ooo[False].cycle

        inorder_config = MachineConfig.alpha21164_like(memory=memory)
        inorder = {cm: InOrderCore(kernels[cm], config=inorder_config)
                   for cm in kernels}
        cycles = {cm: core.run() for cm, core in inorder.items()}
        assert cycles[True] > 1.5 * cycles[False]

    def test_matrix_sums_agree(self):
        row, expected = classic_kernel("matrix_walk", rows=16, cols=16)
        col, expected_col = classic_kernel("matrix_walk", rows=16, cols=16,
                                           column_major=True)
        assert expected == expected_col
        assert run_both(row) == expected
        assert run_both(col) == expected

    def test_histogram_scatter_correct(self):
        program, expected = classic_kernel("histogram", items=256,
                                           buckets=32)
        assert 1 <= expected <= 32
        assert run_both(program) == expected


class TestKernelValidation:
    def test_binary_search_size_power_of_two(self):
        with pytest.raises(ProgramError):
            classic_kernel("binary_search", size=100)

    def test_reduction_power_of_two(self):
        with pytest.raises(ProgramError):
            classic_kernel("reduction", n=100)

    def test_histogram_buckets_power_of_two(self):
        with pytest.raises(ProgramError):
            classic_kernel("histogram", buckets=33)


def test_profileme_diagnoses_pointer_chase():
    """End to end: the profiler must finger the chase load."""
    from repro.analysis.bottlenecks import diagnose
    from repro.harness import run_profiled
    from repro.profileme.unit import ProfileMeConfig

    program, _ = classic_kernel("pointer_chase", nodes=2048, hops=3000)
    run = run_profiled(program,
                       profile=ProfileMeConfig(mean_interval=10, seed=1))
    load_pc = next(pc for pc, _ in program.listing()
                   if program.fetch(pc).is_load)
    profile = run.database.profile(load_pc)
    assert profile is not None
    contributions, _ = diagnose(profile)
    top_register = contributions[0][0]
    # The chase load waits on its own previous value.
    assert top_register in ("map_to_data_ready",
                            "load_issue_to_completion")
