"""Tests for the named synthetic suite."""

import pytest

from repro.errors import ConfigError
from repro.isa.interpreter import Interpreter, functional_trace
from repro.isa.opcodes import Opcode
from repro.workloads.suite import (SUITE_NAMES, suite_program,
                                   suite_programs, suite_spec)


def test_suite_has_eight_members():
    assert len(SUITE_NAMES) == 8
    assert "compress" in SUITE_NAMES
    assert "vortex" in SUITE_NAMES


@pytest.mark.parametrize("name", SUITE_NAMES)
def test_every_member_terminates(name):
    program = suite_program(name, scale=1)
    retired = Interpreter(program).run_to_halt(max_instructions=2_000_000)
    assert retired > 5000


def test_unknown_member_rejected():
    with pytest.raises(ConfigError, match="unknown benchmark"):
        suite_spec("specjbb")


def test_scale_multiplies_work():
    small = Interpreter(suite_program("compress", scale=1)).run_to_halt()
    big = Interpreter(suite_program("compress", scale=2)).run_to_halt()
    assert big > 1.7 * small


def test_suite_programs_subset():
    programs = suite_programs(scale=1, names=["li", "perl"])
    assert set(programs) == {"li", "perl"}


def test_member_signatures_differ():
    """The caricatures must actually differ in behaviour."""
    compress = functional_trace(suite_program("compress", scale=1))
    perl = functional_trace(suite_program("perl", scale=1))
    povray = functional_trace(suite_program("povray", scale=1))

    def fraction(trace, predicate):
        return sum(1 for e in trace if predicate(e)) / len(trace)

    # perl is switch-heavy; compress has no indirect jumps.
    assert fraction(perl, lambda e: e.inst.op is Opcode.JMP) > 0
    assert fraction(compress, lambda e: e.inst.op is Opcode.JMP) == 0
    # povray is FP-heavy.
    fp = {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV}
    assert (fraction(povray, lambda e: e.inst.op in fp)
            > 3 * fraction(compress, lambda e: e.inst.op in fp))


def test_vortex_misses_more_than_compress():
    from repro.cpu.ooo.core import OutOfOrderCore

    vortex = OutOfOrderCore(suite_program("vortex", scale=1))
    vortex.run()
    compress = OutOfOrderCore(suite_program("compress", scale=1))
    compress.run()
    vortex_rate = vortex.hierarchy.l1d.miss_rate
    compress_rate = compress.hierarchy.l1d.miss_rate
    assert vortex_rate > compress_rate
