"""Tests for the deterministic sampling RNG."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import SamplingRng


class TestInterval:
    def test_deterministic_per_seed(self):
        a = [SamplingRng(42).interval(100) for _ in range(5)]
        b = [SamplingRng(42).interval(100) for _ in range(5)]
        assert a == b

    def test_different_seeds_differ(self):
        draws_a = [SamplingRng(1).interval(1000) for _ in range(10)]
        draws_b = [SamplingRng(2).interval(1000) for _ in range(10)]
        assert draws_a != draws_b

    @given(st.integers(min_value=1, max_value=100000),
           st.integers(min_value=0, max_value=2 ** 31))
    def test_bounds(self, mean, seed):
        rng = SamplingRng(seed)
        value = rng.interval(mean, jitter_fraction=0.5)
        assert 1 <= value
        assert value <= max(1, int(mean * 1.5))
        assert value >= max(1, int(mean * 0.5))

    def test_mean_roughly_centered(self):
        rng = SamplingRng(7)
        draws = [rng.interval(1000) for _ in range(2000)]
        mean = sum(draws) / len(draws)
        assert 950 < mean < 1050

    def test_rejects_zero_mean(self):
        with pytest.raises(ValueError):
            SamplingRng(0).interval(0)


class TestPairDistance:
    @given(st.integers(min_value=1, max_value=500),
           st.integers(min_value=0, max_value=1000))
    def test_within_window(self, window, seed):
        value = SamplingRng(seed).pair_distance(window)
        assert 1 <= value <= window

    def test_uniform_coverage(self):
        rng = SamplingRng(3)
        seen = {rng.pair_distance(8) for _ in range(500)}
        assert seen == set(range(1, 9))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SamplingRng(0).pair_distance(0)


class TestFork:
    def test_fork_is_stable(self):
        a = SamplingRng(5).fork("x").interval(100)
        b = SamplingRng(5).fork("x").interval(100)
        assert a == b

    def test_fork_tags_independent(self):
        base = SamplingRng(5)
        xs = [base.fork("x").interval(1000) for _ in range(3)]
        ys = [base.fork("y").interval(1000) for _ in range(3)]
        assert xs != ys
