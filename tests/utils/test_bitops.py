"""Unit and property tests for 64-bit two's-complement helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (WORD_MASK, mask_bits, sign_extend, to_signed,
                                to_unsigned)


class TestToSigned:
    def test_positive_unchanged(self):
        assert to_signed(5) == 5

    def test_max_negative(self):
        assert to_signed(1 << 63) == -(1 << 63)

    def test_all_ones_is_minus_one(self):
        assert to_signed(WORD_MASK) == -1

    def test_narrow_width(self):
        assert to_signed(0xFF, bits=8) == -1
        assert to_signed(0x7F, bits=8) == 127

    @given(st.integers(min_value=0, max_value=WORD_MASK))
    def test_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value


class TestToUnsigned:
    def test_negative_wraps(self):
        assert to_unsigned(-1) == WORD_MASK

    def test_large_value_masked(self):
        assert to_unsigned(1 << 64) == 0

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip_signed(self, value):
        assert to_signed(to_unsigned(value)) == value


class TestSignExtend:
    def test_extends_negative(self):
        assert sign_extend(0x80, 8) == to_unsigned(-128)

    def test_keeps_positive(self):
        assert sign_extend(0x7F, 8) == 0x7F

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_idempotent(self, value):
        once = sign_extend(value, 16)
        assert sign_extend(once, 64) == once


class TestMaskBits:
    def test_truncates(self):
        assert mask_bits(0x1FF, 8) == 0xFF

    def test_default_is_word(self):
        assert mask_bits(-1) == WORD_MASK
