"""Tests for the statistics helpers, cross-checked against scipy."""

import pytest
import scipy.stats

from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.utils.statistics import (mean, pearson, percentile, spearman,
                                    stddev)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_matches_scipy(self):
        xs = [3.0, 1.5, 9.2, 4.4, 5.1, 0.3]
        ys = [1.1, 2.3, 8.0, 4.9, 5.5, 1.0]
        expected = scipy.stats.pearsonr(xs, ys)[0]
        assert pearson(xs, ys) == pytest.approx(expected)

    def test_length_mismatch_raises(self):
        with pytest.raises(AnalysisError):
            pearson([1, 2], [1])


class TestSpearman:
    def test_monotonic_is_one(self):
        assert spearman([1, 5, 9], [10, 200, 3000]) == pytest.approx(1.0)

    def test_matches_scipy_with_ties(self):
        xs = [1.0, 2.0, 2.0, 3.0, 8.0, 8.0]
        ys = [4.0, 1.0, 7.0, 7.0, 2.0, 9.0]
        expected = scipy.stats.spearmanr(xs, ys)[0]
        assert spearman(xs, ys) == pytest.approx(expected)

    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=3, max_size=20))
    def test_self_correlation_nonnegative(self, xs):
        # A sequence correlates with itself at 1.0 unless constant.
        if len(set(xs)) == 1:
            assert spearman(xs, xs) == 0.0
        else:
            assert spearman(xs, xs) == pytest.approx(1.0)


class TestSummaries:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == 2.5

    def test_mean_empty_raises(self):
        with pytest.raises(AnalysisError):
            mean([])

    def test_stddev_matches_scipy(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert stddev(values) == pytest.approx(
            scipy.stats.tstd(values))

    def test_percentile_bounds(self):
        values = list(range(1, 101))
        assert percentile(values, 0.0) == 1
        assert percentile(values, 1.0) == 100
        assert percentile(values, 0.5) == 50

    def test_percentile_empty_raises(self):
        with pytest.raises(AnalysisError):
            percentile([], 0.5)
