"""Tests for the section 7 optimization-feedback analyses."""

import pytest

from repro.analysis.database import ProfileDatabase
from repro.analysis.optimize import (classify_loads, function_heat,
                                     layout_order_from_profile, page_reports,
                                     reorder_functions, superpage_candidates)
from repro.errors import AnalysisError
from repro.events import Event
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import Interpreter
from repro.isa.opcodes import Opcode

from tests.analysis.test_database import make_record


def two_function_program():
    b = ProgramBuilder(name="twofn")
    b.begin_function("main")
    b.ldi(1, 6)
    b.label("loop")
    b.jsr("leaf", ra=26)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    b.begin_function("leaf")
    b.lda(3, 3, 5)
    b.ret(26)
    b.end_function()
    return b.build(entry="main")


class TestReorderFunctions:
    def test_reordered_program_computes_same_result(self):
        program = two_function_program()
        moved = reorder_functions(program, ["leaf", "main"])
        assert moved.functions["leaf"][0] == 0
        ref = Interpreter(program)
        ref.run_to_halt()
        got = Interpreter(moved)
        got.run_to_halt()
        from repro.isa.registers import RA_REG

        got_regs = got.state.regs.snapshot()
        ref_regs = ref.state.regs.snapshot()
        got_regs[RA_REG] = ref_regs[RA_REG] = 0  # return addresses move
        assert got_regs == ref_regs

    def test_entry_relocated(self):
        program = two_function_program()
        moved = reorder_functions(program, ["leaf", "main"])
        assert moved.entry == moved.functions["main"][0]

    def test_rejects_programs_with_indirect_jumps(self):
        b = ProgramBuilder(name="jmps")
        b.begin_function("main")
        b.ldi(1, 8)
        b.jmp(1)
        b.nop()
        b.halt()
        b.end_function()
        program = b.build(entry="main")
        with pytest.raises(AnalysisError, match="indirect"):
            reorder_functions(program, ["main"])

    def test_rejects_unknown_function(self):
        program = two_function_program()
        with pytest.raises(AnalysisError, match="unknown"):
            reorder_functions(program, ["ghost"])

    def test_labels_follow(self):
        program = two_function_program()
        moved = reorder_functions(program, ["leaf", "main"])
        assert moved.pc_of_label("leaf") == 0
        assert moved.fetch(moved.pc_of_label("leaf")).op is Opcode.LDA


class TestFunctionHeat:
    def test_heat_ranked(self):
        program = two_function_program()
        db = ProfileDatabase()
        leaf_pc = program.functions["leaf"][0]
        for _ in range(3):
            db.add(make_record(pc=leaf_pc,
                               events=Event.RETIRED | Event.ICACHE_MISS))
        db.add(make_record(pc=0, events=Event.RETIRED | Event.ICACHE_MISS))
        heat = function_heat(db, program)
        assert heat[0] == ("leaf", 3)

    def test_layout_order_prefers_hot(self):
        program = two_function_program()
        db = ProfileDatabase()
        leaf_pc = program.functions["leaf"][0]
        db.add(make_record(pc=leaf_pc,
                           events=Event.RETIRED | Event.ICACHE_MISS))
        order = layout_order_from_profile(db, program)
        assert order[0] == "leaf"


class TestClassifyLoads:
    def _db(self, miss_fraction, samples=20):
        db = ProfileDatabase()
        for index in range(samples):
            miss = index < miss_fraction * samples
            events = Event.RETIRED | (Event.DCACHE_MISS if miss
                                      else Event.NONE)
            db.add(make_record(
                pc=0x40, op=Opcode.LD, events=events,
                latencies={"load_issue_to_completion": 80 if miss else 3}))
        return db

    def test_always_hit(self):
        classes = classify_loads(self._db(0.0))
        assert classes[0].category == "hit"

    def test_always_miss(self):
        classes = classify_loads(self._db(1.0))
        assert classes[0].category == "miss"
        assert classes[0].mean_latency == pytest.approx(80)

    def test_bimodal(self):
        classes = classify_loads(self._db(0.5))
        assert classes[0].category == "bimodal"

    def test_min_samples_filter(self):
        classes = classify_loads(self._db(1.0, samples=2), min_samples=5)
        assert classes == []


class TestPageAnalyses:
    def _db(self):
        db = ProfileDatabase(keep_addresses=100)
        # Page 0: hot with D-misses; pages 4,5: DTB misses (contiguous).
        for index in range(6):
            db.add(make_record(pc=0x10, addr=index * 8,
                               events=Event.RETIRED | Event.DCACHE_MISS))
        for page in (4, 5):
            db.add(make_record(pc=0x20, addr=page * 8192,
                               events=Event.RETIRED | Event.DTB_MISS))
        return db

    def test_page_reports_ranked_by_misses(self):
        reports = page_reports(self._db())
        assert reports[0].page == 0
        assert reports[0].dcache_misses == 6

    def test_superpage_candidates_find_contiguous_run(self):
        reports = page_reports(self._db())
        candidates = superpage_candidates(reports, min_run=2)
        assert candidates
        first_page, count, misses = candidates[0]
        assert (first_page, count) == (4, 2)

    def test_requires_addresses(self):
        db = ProfileDatabase()  # keep_addresses=0
        db.add(make_record(addr=8))
        assert page_reports(db) == []
