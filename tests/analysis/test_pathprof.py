"""Tests for path-profile reconstruction (Figure 6 machinery)."""

import pytest

from repro.analysis.pathprof import (PathReconstructor,
                                     run_reconstruction_experiment)
from repro.isa.builder import ProgramBuilder
from repro.isa.interpreter import functional_trace
from repro.isa.opcodes import Opcode
from repro.utils.rng import SamplingRng
from repro.workloads import suite_program


def diamond_loop(iterations=32, guards=0):
    """Loop with one data-dependent branch per iteration (LCG-driven)."""
    b = ProgramBuilder(name="diamond")
    b.begin_function("main")
    b.ldi(1, iterations)
    b.ldi(16, 12345)
    b.ldi(27, 6364136223846793005)
    b.ldi(28, 1442695040888963407)
    for _ in range(guards):
        b.beq(1, "exit")  # zero-trip guard: branches past the loop
        b.lda(6, 6, 1)
    b.label("loop")
    b.mul(16, 16, 27)
    b.add(16, 16, 28)
    b.srl(2, 16, 33)
    b.ldi(3, 1)
    b.and_(2, 2, 3)
    b.bne(2, "odd")
    b.lda(5, 5, 1)
    b.br("join")
    b.label("odd")
    b.lda(5, 5, 2)
    b.label("join")
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.label("exit")
    b.halt()
    b.end_function()
    return b.build(entry="main")


@pytest.fixture(scope="module")
def diamond():
    program = diamond_loop()
    trace = functional_trace(program)
    return program, trace, PathReconstructor(program, trace)


class TestHistories:
    def test_history_before_matches_manual_walk(self, diamond):
        program, trace, recon = diamond
        history = 0
        for index, entry in enumerate(trace):
            assert recon.history_before[index] == history
            if entry.inst.is_conditional:
                history = ((history << 1) | int(entry.taken)) & ((1 << 30) - 1)


class TestActualPath:
    def test_path_ends_at_sample(self, diamond):
        program, trace, recon = diamond
        index = len(trace) // 2
        path = recon.actual_path(index, bits=3, interprocedural=False)
        assert path[-1] == trace[index].pc

    def test_path_contains_requested_branch_count(self, diamond):
        program, trace, recon = diamond
        index = len(trace) - 2
        path = recon.actual_path(index, bits=3, interprocedural=False)
        conditionals = sum(
            1 for pc in path[:-1]
            if program.fetch(pc).is_conditional)
        assert conditionals == 3

    def test_path_matches_trace_suffix(self, diamond):
        program, trace, recon = diamond
        index = len(trace) - 5
        path = recon.actual_path(index, bits=2, interprocedural=False)
        suffix = [e.pc for e in trace[index - len(path) + 1:index + 1]]
        assert list(path) == suffix


class TestHistoryScheme:
    def test_truth_always_among_candidates(self, diamond):
        program, trace, recon = diamond
        for index in range(40, len(trace), 37):
            for bits in (1, 3, 6):
                truth = recon.actual_path(index, bits, False)
                result = recon.consistent_paths(
                    trace[index].pc, recon.history_before[index], bits,
                    False)
                if not result.exploded:
                    assert truth in result.paths

    def test_unguarded_loop_admits_entry_fall_in_path(self, diamond):
        """Without zero-trip guards, the "fell in from the entry" path is
        always consistent: at most two candidates, truth among them."""
        program, trace, recon = diamond
        index = len(trace) - 3  # deep inside steady state
        for bits in (2, 4, 6):
            result = recon.consistent_paths(
                trace[index].pc, recon.history_before[index], bits, False)
            truth = recon.actual_path(index, bits, False)
            assert not result.exploded
            assert truth in result.paths
            assert len(result.paths) >= 2  # never unique without guards
            for other in result.paths:
                if other != truth:
                    assert other[0] == 0  # reaches the program entry

    def test_guarded_loop_reconstructs_uniquely(self):
        """Zero-trip guards make deep-loop reconstruction unique: the
        fall-in path needs not-taken guard bits the real history rarely
        provides."""
        program = diamond_loop(iterations=40, guards=4)
        trace = functional_trace(program)
        recon = PathReconstructor(program, trace)
        successes = 0
        trials = 0
        for index in range(len(trace) - 3, 40, -29):
            bits = 6
            result = recon.consistent_paths(
                trace[index].pc, recon.history_before[index], bits, False)
            truth = recon.actual_path(index, bits, False)
            assert truth in result.paths
            trials += 1
            if result.unique and result.paths[0] == truth:
                successes += 1
        assert successes / trials > 0.5


class TestExecutionCountsScheme:
    def test_greedy_path_is_deterministic(self, diamond):
        program, trace, recon = diamond
        pc = trace[len(trace) - 3].pc
        one = recon.most_likely_path(pc, 4, False)
        two = recon.most_likely_path(pc, 4, False)
        assert one == two

    def test_greedy_follows_hotter_arm(self, diamond):
        """With a biased branch, greedy picks the hot arm every time."""
        b = ProgramBuilder(name="biased")
        b.begin_function("main")
        b.ldi(1, 64)
        b.ldi(16, 99)
        b.ldi(27, 6364136223846793005)
        b.ldi(28, 1442695040888963407)
        b.label("loop")
        b.mul(16, 16, 27)
        b.add(16, 16, 28)
        b.srl(2, 16, 33)
        b.ldi(3, 255)
        b.and_(2, 2, 3)
        b.ldi(3, 16)
        b.cmplt(4, 2, 3)  # taken ~6% of the time
        b.bne(4, "rare")
        b.lda(5, 5, 1)
        b.br("join")
        b.label("rare")
        b.lda(5, 5, 2)
        b.label("join")
        b.lda(1, 1, -1)
        b.bne(1, "loop")
        b.halt()
        b.end_function()
        program = b.build(entry="main")
        trace = functional_trace(program)
        recon = PathReconstructor(program, trace)
        join = program.pc_of_label("join")
        path = recon.most_likely_path(join, 1, False)
        rare = program.pc_of_label("rare")
        assert rare not in path


class TestInterprocedural:
    def _program(self):
        b = ProgramBuilder(name="calls")
        b.begin_function("main")
        b.ldi(1, 16)
        b.ldi(16, 7)
        b.label("loop")
        b.jsr("work", ra=26)
        b.lda(1, 1, -1)
        b.bne(1, "loop")
        b.halt()
        b.end_function()
        b.begin_function("work")
        b.ldi(3, 1)
        b.and_(2, 16, 3)
        b.lda(16, 16, 3)
        b.bne(2, "w_odd")
        b.lda(5, 5, 1)
        b.ret(26)
        b.label("w_odd")
        b.lda(5, 5, 2)
        b.ret(26)
        b.end_function()
        return b.build(entry="main")

    def test_intraprocedural_stops_at_entry(self):
        program = self._program()
        trace = functional_trace(program)
        recon = PathReconstructor(program, trace)
        # Sample inside 'work': intraproc path must stay inside it.
        index = next(i for i in range(len(trace) - 1, 0, -1)
                     if program.function_of_pc(trace[i].pc) == "work")
        path = recon.actual_path(index, bits=8, interprocedural=False)
        assert all(program.function_of_pc(pc) == "work" for pc in path)

    def test_interprocedural_crosses_call(self):
        program = self._program()
        trace = functional_trace(program)
        recon = PathReconstructor(program, trace)
        index = next(i for i in range(len(trace) - 1, 0, -1)
                     if program.function_of_pc(trace[i].pc) == "work")
        path = recon.actual_path(index, bits=8, interprocedural=True)
        functions = {program.function_of_pc(pc) for pc in path}
        assert functions == {"main", "work"}
        # Reconstruction agrees.
        result = recon.consistent_paths(
            trace[index].pc, recon.history_before[index], 8, True)
        assert not result.exploded
        assert path in result.paths

    def test_call_stack_constraint_filters_wrong_call_site(self):
        program = self._program()
        trace = functional_trace(program)
        recon = PathReconstructor(program, trace)
        # Sampling at the instruction after the JSR: backward goes into
        # 'work' via its RETs, and from work's entry it must come back to
        # THIS call site only.
        post_call = None
        for i, e in enumerate(trace):
            if (i > 30 and trace[i - 1].inst.op is Opcode.RET):
                post_call = i
                break
        assert post_call is not None
        truth = recon.actual_path(post_call, bits=4, interprocedural=True)
        result = recon.consistent_paths(
            trace[post_call].pc, recon.history_before[post_call], 4, True)
        assert not result.exploded
        assert truth in result.paths


class TestExperimentDriver:
    def test_runs_on_suite_member(self):
        program = suite_program("compress", scale=1)
        trace = functional_trace(program)
        indices = list(range(200, len(trace) - 1, max(1, len(trace) // 40)))
        results = run_reconstruction_experiment(
            program, trace, history_lengths=(1, 4, 8),
            sample_indices=indices, pair_rng=SamplingRng(5),
            interprocedural=False)
        for bits, rates in results.items():
            for scheme, rate in rates.items():
                assert 0.0 <= rate <= 1.0
        # History bits can only help as length grows... at least the
        # paper's ordering must hold on average at length 8:
        assert (results[8]["history_bits"]
                >= results[8]["execution_counts"] - 0.15)
        assert (results[8]["history_plus_pair"]
                >= results[8]["history_bits"] - 1e-9)
