"""Tests for the ground-truth collector."""

import pytest

from repro.analysis.groundtruth import GroundTruthCollector
from repro.cpu.ooo.core import OutOfOrderCore
from repro.events import Event
from repro.isa.interpreter import Interpreter

from tests.conftest import counting_loop


def collect(program, **options):
    core = OutOfOrderCore(program)
    truth = core.add_probe(GroundTruthCollector(**options))
    core.run()
    return core, truth


def test_retired_counts_match_interpreter(memory_program):
    core, truth = collect(memory_program)
    expected = Interpreter(memory_program).run_to_halt()
    assert truth.total_retired == expected
    per_pc_total = sum(t.retired for t in truth.per_pc.values())
    assert per_pc_total == expected


def test_fetched_partition(memory_program):
    core, truth = collect(memory_program)
    assert truth.total_fetched == truth.total_retired + truth.total_aborted
    for pc, t in truth.per_pc.items():
        assert t.fetched == t.retired + t.aborted


def test_event_counts_present(memory_program):
    _, truth = collect(memory_program)
    misses = sum(t.count_event(Event.DCACHE_MISS)
                 for t in truth.per_pc.values())
    assert misses >= 1  # cold misses on the array


def test_retire_series(tiny_program):
    _, truth = collect(tiny_program, collect_retire_series=True)
    assert sum(truth.retire_series.values()) == truth.total_retired
    ipc = truth.windowed_ipc(window_cycles=10)
    assert ipc
    assert all(v >= 0 for v in ipc)


def test_windowed_ipc_requires_flag(tiny_program):
    _, truth = collect(tiny_program)
    with pytest.raises(ValueError):
        truth.windowed_ipc(30)


def test_exact_wasted_slots(tiny_program):
    core, truth = collect(tiny_program, collect_intervals=True,
                          collect_issue_series=True)
    pc = max(truth.per_pc, key=lambda p: truth.per_pc[p].retired)
    waste = truth.wasted_issue_slots(pc, issue_width=4)
    # waste = available - used; available >= used is not guaranteed per
    # pc... but both are nonnegative and bounded by 4 slots/cycle.
    intervals = truth.intervals[pc]
    available = 4 * sum(end - start for start, end in intervals)
    assert waste <= available


def test_exact_wasted_slots_requires_flags(tiny_program):
    _, truth = collect(tiny_program)
    with pytest.raises(ValueError):
        truth.wasted_issue_slots(0, issue_width=4)


def test_latency_sums_only_retired(memory_program):
    _, truth = collect(memory_program)
    for t in truth.per_pc.values():
        assert t.latency_count == t.retired
