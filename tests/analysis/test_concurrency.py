"""Tests for paired-sample timeline reconstruction and concurrency metrics."""

import pytest

from repro.analysis.concurrency import (PairAnalyzer, PairTimeline,
                                        concurrent_arithmetic,
                                        ipc_variability, issued_while_stalled,
                                        pairwise_ipc_estimate, retired_within,
                                        stage_times, useful_overlap)
from repro.errors import AnalysisError
from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode
from repro.profileme.registers import PairedRecord, ProfileRecord


def record(pc=0x10, op=Opcode.ADD, retired=True, f2m=2, m2d=1, d2i=0,
           i2rr=1, rr2r=2):
    events = Event.RETIRED if retired else (Event.ABORTED | Event.BAD_PATH)
    return ProfileRecord(
        context=0, pc=pc, op=op, addr=None, events=events,
        abort_reason=AbortReason.NONE if retired
        else AbortReason.MISPREDICT_SQUASH,
        history=0, fetch_to_map=f2m, map_to_data_ready=m2d,
        data_ready_to_issue=d2i, issue_to_retire_ready=i2rr,
        retire_ready_to_retire=rr2r, load_issue_to_completion=None,
        fetch_cycle=0, done_cycle=0)


def pair(first, second, intra=4, distance=4):
    return PairedRecord(first=first, second=second, intra_pair_cycles=intra,
                        intra_pair_distance=distance)


class TestStageTimes:
    def test_chains_latencies(self):
        times = stage_times(record(), fetch_offset=10)
        assert times.fetch == 10
        assert times.map == 12
        assert times.data_ready == 13
        assert times.issue == 13
        assert times.retire_ready == 14
        assert times.retire == 16
        assert times.in_progress == (10, 14)

    def test_aborted_has_no_retire(self):
        times = stage_times(record(retired=False), fetch_offset=0)
        assert times.retire is None

    def test_partial_latency_chain(self):
        partial = record()
        partial = ProfileRecord(**{**partial.__dict__, "issue_to_retire_ready": None})
        times = stage_times(partial, 0)
        assert times.issue is not None
        assert times.retire_ready is None
        assert times.in_progress is None


class TestOverlapPredicates:
    def test_useful_overlap_true_when_other_issues_inside(self):
        # First in progress [0, 4); second fetched at 1, issues at 1+3=4?
        # Use intra=0 so second issues at 3 (inside).
        p = pair(record(), record(pc=0x20), intra=0)
        timeline = PairTimeline(p)
        assert useful_overlap(timeline.first, p.second, timeline.second)

    def test_useful_overlap_false_outside_window(self):
        p = pair(record(), record(pc=0x20), intra=50)
        timeline = PairTimeline(p)
        assert not useful_overlap(timeline.first, p.second, timeline.second)

    def test_useful_overlap_requires_retirement(self):
        p = pair(record(), record(pc=0x20, retired=False), intra=0)
        timeline = PairTimeline(p)
        assert not useful_overlap(timeline.first, p.second, timeline.second)

    def test_issued_while_stalled(self):
        # Anchor stalls in the queue for 10 cycles; other issues then.
        anchor = record(d2i=10)
        p = pair(anchor, record(pc=0x20), intra=2)
        timeline = PairTimeline(p)
        assert issued_while_stalled(timeline.first, p.second,
                                    timeline.second)

    def test_retired_within(self):
        p = pair(record(), record(pc=0x20), intra=1)
        timeline = PairTimeline(p)
        assert retired_within(timeline.first, p.second, timeline.second, 10)
        assert not retired_within(timeline.first, p.second, timeline.second,
                                  0)

    def test_concurrent_arithmetic_needs_alu_ops(self):
        load = record(op=Opcode.LD)
        alu = record(pc=0x20, i2rr=5)
        p = pair(alu, record(pc=0x30, i2rr=5), intra=0)
        timeline = PairTimeline(p)
        assert concurrent_arithmetic(p.first, timeline.first, p.second,
                                     timeline.second)
        p2 = pair(load, record(pc=0x30), intra=0)
        timeline2 = PairTimeline(p2)
        assert not concurrent_arithmetic(p2.first, timeline2.first,
                                         p2.second, timeline2.second)

    def test_incomplete_pair_rejected(self):
        with pytest.raises(AnalysisError):
            PairTimeline(pair(record(), None))


class TestPairAnalyzer:
    def test_accumulates_both_roles(self):
        analyzer = PairAnalyzer(mean_interval=100, pair_window=8,
                                issue_width=4)
        analyzer.add(pair(record(pc=0x10), record(pc=0x20), intra=0))
        assert analyzer.per_pc[0x10].appearances == 1
        assert analyzer.per_pc[0x20].appearances == 1
        assert analyzer.pairs_usable == 1

    def test_wasted_slots_formula(self):
        analyzer = PairAnalyzer(mean_interval=100, pair_window=8,
                                issue_width=4)
        # One pair; first has in-progress latency 4, overlap useful.
        analyzer.add(pair(record(pc=0x10), record(pc=0x20), intra=0))
        # L_I = 4, so total slots = 4*4*100/2 = 800; U_I = 1 -> 800.
        assert analyzer.estimated_total_slots(0x10) == pytest.approx(800)
        assert analyzer.estimated_useful_issues(0x10) == pytest.approx(800)
        assert analyzer.wasted_issue_slots(0x10) == pytest.approx(0)

    def test_no_overlap_means_all_wasted(self):
        analyzer = PairAnalyzer(mean_interval=100, pair_window=8,
                                issue_width=4)
        analyzer.add(pair(record(pc=0x10), record(pc=0x20, retired=False),
                          intra=0))
        assert analyzer.wasted_issue_slots(0x10) == pytest.approx(800)

    def test_incomplete_pairs_skipped(self):
        analyzer = PairAnalyzer(mean_interval=100, pair_window=8,
                                issue_width=4)
        analyzer.add(pair(record(), None))
        assert analyzer.pairs_seen == 1
        assert analyzer.pairs_usable == 0

    def test_custom_metric(self):
        analyzer = PairAnalyzer(mean_interval=10, pair_window=4,
                                issue_width=4)
        analyzer.register_metric(
            "both_retired",
            lambda first, second, timeline: int(first.retired
                                                and second.retired))
        analyzer.add(pair(record(), record(pc=0x20)))
        analyzer.add(pair(record(), record(pc=0x30, retired=False)))
        assert analyzer.metric_total("both_retired") == 1

    def test_ranked_by_waste(self):
        analyzer = PairAnalyzer(mean_interval=10, pair_window=4,
                                issue_width=4)
        analyzer.add(pair(record(pc=0x10, i2rr=50),
                          record(pc=0x20, retired=False), intra=0))
        ranked = analyzer.ranked_by_waste(limit=1)
        assert ranked[0][0] == 0x10

    def test_validation(self):
        with pytest.raises(AnalysisError):
            PairAnalyzer(mean_interval=0, pair_window=4, issue_width=4)


class TestIpcHelpers:
    def test_pairwise_ipc(self):
        pairs = [pair(record(), record(pc=0x20), intra=1),
                 pair(record(), record(pc=0x20), intra=100)]
        fraction, usable = pairwise_ipc_estimate(pairs, window_cycles=10,
                                                 issue_width=4)
        assert usable == 2
        assert fraction == pytest.approx(0.5)

    def test_ipc_variability(self):
        stats = ipc_variability([1.0, 2.0, 4.0, 0.0])
        assert stats["max_min_ratio"] == pytest.approx(4.0)
        assert stats["weighted_stddev"] > 0

    def test_ipc_variability_rejects_empty(self):
        with pytest.raises(AnalysisError):
            ipc_variability([0.0, 0.0])
