"""Tests for profile-guided static branch hints."""

import pytest

from repro.analysis.optimize import branch_hints_from_profile
from repro.branch.predictors import BranchPredictor, StaticDirectionPredictor
from repro.cpu.ooo.core import OutOfOrderCore
from repro.harness import run_profiled
from repro.isa.builder import ProgramBuilder
from repro.profileme.unit import ProfileMeConfig


def forward_taken_program(iterations=600):
    """A branch that is heavily taken *forward*: BTFN's worst case."""
    b = ProgramBuilder(name="fwd-taken")
    b.begin_function("main")
    b.ldi(1, iterations)
    b.ldi(16, 321)
    b.ldi(27, 6364136223846793005)
    b.ldi(28, 1442695040888963407)
    b.label("loop")
    b.mul(16, 16, 27)
    b.add(16, 16, 28)
    b.srl(2, 16, 33)
    b.ldi(3, 255)
    b.and_(2, 2, 3)
    b.ldi(3, 230)
    b.cmplt(4, 2, 3)
    b.bne(4, "skip")  # forward branch, taken ~90% of the time
    b.lda(5, 5, 1)
    b.lda(5, 5, 2)
    b.label("skip")
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main")


def _mispredicts(program, direction):
    predictor = BranchPredictor(direction=direction)
    core = OutOfOrderCore(program, predictor=predictor)
    core.run()
    return core.mispredicts


class TestStaticDirectionPredictor:
    def test_btfn_default(self):
        program = forward_taken_program()
        predictor = StaticDirectionPredictor(program)
        loop_bne = program.pc_limit - 8  # backward branch
        forward_bne = next(
            pc for pc, _ in program.listing()
            if program.fetch(pc).is_conditional
            and program.fetch(pc).target > pc)
        assert predictor.predict(loop_bne, 0)  # backward -> taken
        assert not predictor.predict(forward_bne, 0)  # forward -> not

    def test_hints_override(self):
        program = forward_taken_program()
        forward_bne = next(
            pc for pc, _ in program.listing()
            if program.fetch(pc).is_conditional
            and program.fetch(pc).target > pc)
        predictor = StaticDirectionPredictor(program,
                                             hints={forward_bne: True})
        assert predictor.predict(forward_bne, 0)

    def test_hints_ignore_non_branches(self):
        program = forward_taken_program()
        predictor = StaticDirectionPredictor(program, hints={0: True})
        assert predictor.predict(0, 0) is False  # pc 0 is not a branch


class TestProfileGuidedHints:
    def test_hints_reduce_static_mispredicts(self):
        program = forward_taken_program()

        # Profile with the default (gshare) machine.
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=10,
                                                   seed=1))
        hints = branch_hints_from_profile(run.database, program)
        forward_bne = next(
            pc for pc, _ in program.listing()
            if program.fetch(pc).is_conditional
            and program.fetch(pc).target > pc)
        assert hints.get(forward_bne) is True  # profile saw ~90% taken

        btfn = _mispredicts(program,
                            StaticDirectionPredictor(program))
        hinted = _mispredicts(program,
                              StaticDirectionPredictor(program,
                                                       hints=hints))
        # BTFN mispredicts the hot forward branch ~90% of the time;
        # the hint flips that to ~10%.
        assert hinted < 0.45 * btfn

    def test_static_hints_beat_gshare_on_biased_branches(self):
        """An honest surprise: on short runs of heavily biased branches
        (compress-like), profile hints beat gshare, which pays cold-start
        and aliasing costs.  This is why real ISAs grew hint bits."""
        from repro.workloads import suite_program

        program = suite_program("compress", scale=1)
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=25,
                                                   seed=1))
        hints = branch_hints_from_profile(run.database, program)
        hinted = _mispredicts(program,
                              StaticDirectionPredictor(program,
                                                       hints=hints))
        gshare = _mispredicts(program, None)
        assert hinted < gshare

    def test_gshare_beats_static_on_history_patterns(self):
        """Dynamic history wins where directions are *patterned* rather
        than biased: a fixed 4-trip inner loop's exit is perfectly
        predictable from history and unpredictable statically."""
        b = ProgramBuilder(name="patterned")
        b.begin_function("main")
        b.ldi(1, 400)
        b.label("outer")
        b.ldi(2, 4)
        b.label("inner")
        b.lda(3, 3, 1)
        b.lda(2, 2, -1)
        b.bne(2, "inner")  # T T T N repeated: history-predictable
        b.lda(1, 1, -1)
        b.bne(1, "outer")
        b.halt()
        b.end_function()
        program = b.build(entry="main")

        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=10,
                                                   seed=1))
        hints = branch_hints_from_profile(run.database, program)
        hinted = _mispredicts(program,
                              StaticDirectionPredictor(program,
                                                       hints=hints))
        gshare = _mispredicts(program, None)
        assert gshare < 0.5 * hinted
