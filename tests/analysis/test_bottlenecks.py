"""Tests for bottleneck metrics and diagnosis."""

import pytest

from repro.analysis.bottlenecks import (diagnose, instruction_metrics,
                                        rank_agreement, top_bottlenecks)
from repro.analysis.concurrency import PairAnalyzer
from repro.analysis.database import ProfileDatabase
from repro.events import Event
from repro.profileme.registers import PairedRecord

from tests.analysis.test_concurrency import pair, record
from tests.analysis.test_database import make_record


def _database_with(pcs):
    db = ProfileDatabase()
    for pc, latency in pcs:
        db.add(make_record(pc=pc,
                           latencies={"issue_to_retire_ready": latency}))
    return db


class TestInstructionMetrics:
    def test_total_latency_scales_with_interval(self):
        db = _database_with([(0x10, 5)])
        metrics = instruction_metrics(db, mean_interval=100)
        metric = metrics[0]
        # chain: 2 + 1 + 0 + 5 = 8 cycles, one sample, S=100.
        assert metric.total_latency == pytest.approx(800)
        assert metric.wasted_slots is None

    def test_waste_attached_from_pair_analyzer(self):
        db = _database_with([(0x10, 5)])
        analyzer = PairAnalyzer(mean_interval=100, pair_window=8,
                                issue_width=4)
        analyzer.add(pair(record(pc=0x10), record(pc=0x20, retired=False),
                          intra=0))
        metrics = instruction_metrics(db, 100, pair_analyzer=analyzer)
        by_pc = {m.pc: m for m in metrics}
        assert by_pc[0x10].wasted_slots is not None

    def test_aborted_only_pc_has_zero_latency(self):
        db = ProfileDatabase()
        db.add(make_record(pc=0x30, events=Event.ABORTED,
                           latencies={"issue_to_retire_ready": None}))
        metrics = instruction_metrics(db, 100)
        assert metrics[0].total_latency == 0


class TestRanking:
    def test_top_by_latency(self):
        db = _database_with([(0x10, 50), (0x20, 1)])
        metrics = instruction_metrics(db, 10)
        top = top_bottlenecks(metrics, key="total_latency", limit=1)
        assert top[0].pc == 0x10

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            top_bottlenecks([], key="nonsense")

    def test_rank_agreement_detects_divergence(self):
        # Two instructions: latency ranks A > B but waste ranks B > A
        # (A's long in-progress window is fully covered by useful work;
        # B's short window is completely wasted).
        db = _database_with([(0xA, 50), (0xB, 10)])
        analyzer = PairAnalyzer(mean_interval=10, pair_window=200,
                                issue_width=4)
        for _ in range(4):
            analyzer.add(pair(record(pc=0xA, i2rr=5),
                              record(pc=0x99), intra=0))
        for _ in range(4):
            analyzer.add(pair(record(pc=0xB, i2rr=40),
                              record(pc=0x99, retired=False), intra=500))
        metrics = instruction_metrics(db, 10, pair_analyzer=analyzer)
        by_pc = {m.pc: m for m in metrics}
        assert by_pc[0xA].total_latency > by_pc[0xB].total_latency
        assert by_pc[0xA].wasted_slots < by_pc[0xB].wasted_slots
        pearson_r, spearman_r = rank_agreement(metrics)
        assert spearman_r <= 0.0  # rankings disagree


class TestDiagnose:
    def test_orders_by_contribution(self):
        db = ProfileDatabase()
        db.add(make_record(latencies={"issue_to_retire_ready": 40,
                                      "fetch_to_map": 2}))
        contributions, notes = diagnose(db.profile(0x10))
        assert contributions[0][0] == "issue_to_retire_ready"
        assert "execution latency" in contributions[0][2]

    def test_notes_mention_events(self):
        db = ProfileDatabase()
        db.add(make_record(events=Event.RETIRED | Event.DCACHE_MISS))
        _, notes = diagnose(db.profile(0x10))
        assert any("D-cache miss" in note for note in notes)
