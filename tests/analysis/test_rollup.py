"""Tests for the time-bucketed rollup plane of :class:`ProfileDatabase`.

Covers bucket routing by fetch cycle, exponential epoch rollup
(8 aligned buckets -> one coarser epoch), bounded retention with
eviction accounting (``ingested == retained + evicted``), straggler
clamping, the versioned bucketed document (round-trip + legacy load),
and pickling (worker checkpoint blobs carry buckets).
"""

import dataclasses
import pickle

import pytest

from repro.analysis.database import EPOCH_SPANS, ProfileDatabase
from repro.analysis.persistence import (BUCKETED_FORMAT_VERSION,
                                        canonical_json, database_from_dict,
                                        database_to_dict)
from repro.errors import AnalysisError
from repro.events import Event

from tests.analysis.test_database import make_record


def tick_record(tick, pc=0x10, events=Event.RETIRED, latencies=None):
    record = make_record(pc=pc, events=events, latencies=latencies)
    return dataclasses.replace(record, fetch_cycle=tick)


class TestValidation:
    def test_negative_interval_rejected(self):
        with pytest.raises(AnalysisError):
            ProfileDatabase(rollup_interval=-1)

    def test_retention_requires_interval(self):
        with pytest.raises(AnalysisError):
            ProfileDatabase(retain_buckets=4)


class TestBucketRouting:
    def test_samples_land_in_their_interval_bucket(self):
        db = ProfileDatabase(rollup_interval=100)
        db.add(tick_record(5))
        db.add(tick_record(99))
        db.add(tick_record(100))
        db.add(tick_record(250))
        epochs = db.epoch_summaries()
        assert [(e["level"], e["start"], e["span"], e["samples"])
                for e in epochs] == \
            [(0, 0, 100, 2), (0, 100, 100, 1), (0, 200, 100, 1)]
        assert db.bucket_count == 3
        assert db.total_samples == 4

    def test_flat_database_has_no_epochs(self):
        db = ProfileDatabase()
        db.add(make_record())
        assert db.epoch_summaries() == []
        assert db.bucket_count == 0

    def test_straggler_folds_into_covering_bucket(self):
        db = ProfileDatabase(rollup_interval=100)
        db.add(tick_record(50))
        db.add(tick_record(450))
        db.add(tick_record(70))  # late sample for the first bucket
        epochs = db.epoch_summaries()
        assert epochs[0]["samples"] == 2
        assert db.total_samples == 3

    def test_aggregates_match_flat_database(self):
        flat = ProfileDatabase()
        rolled = ProfileDatabase(rollup_interval=50)
        records = [tick_record(tick, pc=0x10 + 8 * (tick % 3),
                               events=Event.RETIRED | Event.DCACHE_MISS,
                               latencies={"fetch_to_map": tick % 7})
                   for tick in range(0, 1200, 13)]
        for record in records:
            flat.add(record)
            rolled.add(record)
        assert rolled.total_samples == flat.total_samples
        assert rolled.pcs() == flat.pcs()
        for pc in flat.pcs():
            assert rolled.profile(pc) == flat.profile(pc)
        assert rolled.top_by_event(Event.DCACHE_MISS) == \
            flat.top_by_event(Event.DCACHE_MISS)


class TestEpochRollup:
    def test_eight_buckets_roll_into_one_coarser_epoch(self):
        db = ProfileDatabase(rollup_interval=100)
        for tick in range(0, 1000, 100):  # ten level-0 buckets
            db.add(tick_record(tick))
        epochs = db.epoch_summaries()
        # The first aligned octet (starts 0..700) rolled into one
        # level-1 epoch spanning 800 cycles; the current coarse block
        # stays at full resolution.
        assert [(e["level"], e["start"], e["span"], e["samples"])
                for e in epochs] == \
            [(1, 0, 800, 8), (0, 800, 100, 1), (0, 900, 100, 1)]
        assert db.total_samples == 10

    def test_level_one_epochs_roll_into_level_two(self):
        interval = 10
        db = ProfileDatabase(rollup_interval=interval)
        level2_span = interval * EPOCH_SPANS[1] * 8
        # Cross the first level-2 boundary: one sample per bucket far
        # enough that every level-1 epoch of the first block closes.
        for tick in range(0, 2 * level2_span, interval):
            db.add(tick_record(tick))
        levels = {e["level"] for e in db.epoch_summaries()}
        assert 2 in levels
        assert sum(e["samples"] for e in db.epoch_summaries()) == \
            db.total_samples

    def test_rollup_preserves_per_pc_aggregates(self):
        db = ProfileDatabase(rollup_interval=100)
        for tick in range(0, 2000, 100):
            db.add(tick_record(tick, pc=0x40,
                               latencies={"fetch_to_map": 4}))
        profile = db.profile(0x40)
        assert profile.samples == 20
        assert profile.latency("fetch_to_map").count == 20
        assert profile.latency("fetch_to_map").mean == 4


class TestRetention:
    def test_oldest_buckets_evicted_past_cap(self):
        db = ProfileDatabase(rollup_interval=100, retain_buckets=3)
        for tick in range(0, 1000, 100):
            db.add(tick_record(tick))
        assert db.bucket_count <= 3
        assert db.evicted_samples > 0
        assert db.ingested_samples == 10
        assert db.total_samples + db.evicted_samples == 10
        assert db.total_samples == \
            sum(e["samples"] for e in db.epoch_summaries())

    def test_current_bucket_is_never_evicted(self):
        db = ProfileDatabase(rollup_interval=100, retain_buckets=1)
        for tick in range(0, 500, 100):
            db.add(tick_record(tick))
        assert db.bucket_count == 1
        assert db.epoch_summaries()[-1]["start"] == 400

    def test_straggler_older_than_horizon_is_clamped_not_dropped(self):
        db = ProfileDatabase(rollup_interval=100, retain_buckets=2)
        for tick in range(0, 1000, 100):
            db.add(tick_record(tick))
        before = db.total_samples
        db.add(tick_record(5))  # its bucket was evicted long ago
        assert db.total_samples == before + 1
        assert db.ingested_samples == 11


class TestMergeBuckets:
    def test_bucketed_merge_aligns_on_boundaries(self):
        a = ProfileDatabase(rollup_interval=100)
        b = ProfileDatabase(rollup_interval=100)
        both = ProfileDatabase(rollup_interval=100)
        ticks_a = [0, 50, 150, 420]
        ticks_b = [20, 160, 300, 430]
        for tick in ticks_a:
            a.add(tick_record(tick))
        for tick in ticks_b:
            b.add(tick_record(tick))
        for tick in sorted(ticks_a + ticks_b):
            both.add(tick_record(tick))
        a.merge(b)
        assert canonical_json(database_to_dict(a)) == \
            canonical_json(database_to_dict(both))

    def test_flat_merges_into_current_bucket(self):
        flat = ProfileDatabase()
        flat.add(make_record(pc=0x80))
        db = ProfileDatabase(rollup_interval=100)
        db.add(tick_record(250, pc=0x10))
        db.merge(flat)
        assert db.total_samples == 2
        assert db.epoch_summaries()[-1]["samples"] == 2
        assert db.samples_at(0x80) == 1

    def test_merge_accumulates_eviction_accounting(self):
        a = ProfileDatabase(rollup_interval=100, retain_buckets=2)
        b = ProfileDatabase(rollup_interval=100, retain_buckets=2)
        for tick in range(0, 800, 100):
            a.add(tick_record(tick))
            b.add(tick_record(tick + 10))
        ingested = a.ingested_samples + b.ingested_samples
        a.merge(b)
        assert a.ingested_samples == ingested


class TestBucketedPersistence:
    def test_flat_document_keeps_version_one(self):
        db = ProfileDatabase()
        db.add(make_record())
        doc = database_to_dict(db)
        assert doc["version"] == 1
        assert "buckets" not in doc

    def test_bucketed_round_trip(self):
        db = ProfileDatabase(rollup_interval=100, retain_buckets=4)
        for tick in range(0, 1200, 70):
            db.add(tick_record(tick, pc=0x10 + 8 * (tick % 2),
                               events=Event.RETIRED | Event.MISPREDICT,
                               latencies={"issue_to_retire_ready": 3}))
        doc = database_to_dict(db)
        assert doc["version"] == BUCKETED_FORMAT_VERSION
        clone = database_from_dict(doc)
        assert clone.rollup_interval == db.rollup_interval
        assert clone.retain_buckets == db.retain_buckets
        assert clone.total_samples == db.total_samples
        assert clone.evicted_samples == db.evicted_samples
        assert clone.epoch_summaries() == db.epoch_summaries()
        for pc in db.pcs():
            assert clone.profile(pc) == db.profile(pc)
        assert canonical_json(database_to_dict(clone)) == \
            canonical_json(doc)

    def test_bucketed_round_trip_keeps_addresses(self):
        db = ProfileDatabase(keep_addresses=2, rollup_interval=100)
        db.add(tick_record(10))
        db.add(make_record(pc=0x10, addr=0x2000,
                           events=Event.RETIRED | Event.DCACHE_MISS))
        clone = database_from_dict(database_to_dict(db))
        assert clone.profile(0x10).addresses == \
            db.profile(0x10).addresses

    def test_rollup_disabled_export_is_byte_identical_to_legacy(self):
        # The hard correctness gate: with rollup off, nothing about the
        # document changed — same keys, same canonical bytes.
        db = ProfileDatabase()
        for tick in range(0, 400, 30):
            db.add(tick_record(tick, pc=0x10 + 8 * (tick % 3)))
        doc = database_to_dict(db)
        assert sorted(doc) == ["format", "keep_addresses", "per_pc",
                               "total_samples", "version"]
        clone = database_from_dict(doc)
        assert canonical_json(database_to_dict(clone)) == \
            canonical_json(doc)


class TestPickling:
    def test_bucketed_database_round_trips_through_pickle(self):
        db = ProfileDatabase(rollup_interval=100, retain_buckets=4)
        for tick in range(0, 900, 60):
            db.add(tick_record(tick, latencies={"fetch_to_map": 2}))
        clone = pickle.loads(pickle.dumps(db))
        assert clone.total_samples == db.total_samples
        assert clone.evicted_samples == db.evicted_samples
        assert clone.epoch_summaries() == db.epoch_summaries()
        assert clone.profile(0x10) == db.profile(0x10)
        # The clone keeps folding correctly (plans are rebuilt lazily).
        clone.add(tick_record(901))
        assert clone.total_samples == db.total_samples + 1
