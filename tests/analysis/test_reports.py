"""Tests for report formatting."""

from repro.analysis.bottlenecks import instruction_metrics
from repro.analysis.reports import (bottleneck_report, format_table,
                                    histogram_ascii, latency_table)
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig

from tests.conftest import counting_loop


def test_format_table_alignment():
    text = format_table(["a", "bbb"], [[1, 2.5], [333, "x"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bbb" in lines[1]
    assert "2.500" in text
    assert "333" in text


def test_histogram_ascii():
    text = histogram_ascii({0: 10, 4: 5, 8: 0})
    assert "#" in text
    lines = text.splitlines()
    assert len(lines) == 3
    assert histogram_ascii({}) == "(no samples)"


def test_latency_table_from_run():
    program = counting_loop(iterations=400)
    run = run_profiled(program,
                       profile=ProfileMeConfig(mean_interval=10, seed=1))
    text = latency_table(run.database, program=program)
    assert "fetch_to_map" in text
    assert "lda" in text


def test_bottleneck_report_from_run():
    program = counting_loop(iterations=600)
    run = run_profiled(program, profile=ProfileMeConfig(
        mean_interval=20, paired=True, pair_window=16, seed=1))
    metrics = instruction_metrics(run.database, 20,
                                  pair_analyzer=run.pair_analyzer)
    text = bottleneck_report(metrics, run.database, program=program)
    assert "pc=" in text
    assert "samples=" in text
