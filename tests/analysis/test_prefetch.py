"""Tests for the PREFETCH instruction and the profile-guided pass."""

import pytest

from repro.analysis.optimize import (detect_stride, insert_instructions,
                                     insert_prefetches, plan_prefetches)
from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.inorder.core import InOrderCore
from repro.errors import AnalysisError
from repro.harness import run_profiled
from repro.isa.builder import ProgramBuilder
from repro.isa.instruction import Instruction
from repro.isa.interpreter import Interpreter
from repro.isa.opcodes import Opcode
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import stall_kernel


class TestPrefetchInstruction:
    def _program(self):
        b = ProgramBuilder(name="pf")
        b.alloc("arr", 64, init=list(range(64)))
        b.begin_function("main")
        b.li_addr(2, "arr")
        b.prefetch(2, 0)
        b.ld(3, 2, 0)
        b.halt()
        b.end_function()
        return b.build(entry="main")

    def test_architecturally_noop(self):
        program = self._program()
        interp = Interpreter(program)
        interp.run_to_halt()
        assert interp.state.regs.read(3) == 0  # arr[0] == 0

    def test_warms_cache_in_ooo_core(self):
        program = self._program()
        core = OutOfOrderCore(program)
        core.run()
        assert core.architectural_registers()[3] == 0
        # The prefetch performed the (only) miss; loads were still
        # counted as references.
        assert core.hierarchy.l1d.accesses >= 2

    def test_inorder_core_executes_prefetch(self):
        program = self._program()
        core = InOrderCore(program)
        core.run()
        assert core.architectural_registers()[3] == 0

    def test_prefetch_never_blocks_retirement(self):
        # A prefetch of an uncached line completes in one cycle.
        b = ProgramBuilder(name="pf-fast")
        b.alloc("arr", 32768)
        b.begin_function("main")
        b.li_addr(2, "arr")
        b.ldi(1, 50)
        b.label("loop")
        b.prefetch(2, 0)
        b.lda(2, 2, 4096)
        b.lda(1, 1, -1)
        b.bne(1, "loop")
        b.halt()
        b.end_function()
        program = b.build(entry="main")
        core = OutOfOrderCore(program)
        cycles = core.run()
        # 200 instructions; with blocking misses this would cost
        # thousands of cycles.
        assert cycles < 1500


class TestInsertInstructions:
    def test_relocates_and_preserves_semantics(self, memory_program):
        ref = Interpreter(memory_program)
        ref.run_to_halt()
        # Insert a NOP after every load.
        insertions = {}
        for pc, _ in memory_program.listing():
            if memory_program.fetch(pc).is_load:
                insertions[pc] = [Instruction(op=Opcode.NOP)]
        moved = insert_instructions(memory_program, insertions)
        assert len(moved) == len(memory_program) + 1  # one static load
        got = Interpreter(moved)
        got.run_to_halt()
        assert got.state.regs.snapshot() == ref.state.regs.snapshot()

    def test_rejects_invalid_pc(self, memory_program):
        with pytest.raises(AnalysisError):
            insert_instructions(memory_program,
                                {99999: [Instruction(op=Opcode.NOP)]})

    def test_rejects_indirect_jumps(self):
        b = ProgramBuilder(name="jmp")
        b.ldi(1, 8)
        b.jmp(1)
        b.halt()
        program = b.build()
        with pytest.raises(AnalysisError, match="indirect"):
            insert_instructions(program, {0: [Instruction(op=Opcode.NOP)]})


class TestStrideDetection:
    def test_detects_unique_updater(self):
        program = stall_kernel("dcache_miss", iterations=10)
        loads = [pc for pc, _ in program.listing()
                 if program.fetch(pc).is_load]
        assert detect_stride(program, loads[0]) == 64

    def test_ambiguous_updater_returns_none(self):
        b = ProgramBuilder(name="ambig")
        b.begin_function("main")
        b.ld(3, 2, 0)
        b.lda(2, 2, 8)
        b.lda(2, 2, 16)
        b.halt()
        b.end_function()
        program = b.build(entry="main")
        assert detect_stride(program, 0) is None


class TestPrefetchPass:
    def _profiled_kernel(self):
        program = stall_kernel("dcache_miss", iterations=400)
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=20, seed=3))
        return program, run

    def test_plans_target_missing_load(self):
        program, run = self._profiled_kernel()
        plans = plan_prefetches(program, run.database, lookahead=6)
        assert len(plans) == 1
        plan = plans[0]
        assert program.fetch(plan.load_pc).is_load
        assert plan.stride == 64
        assert plan.displacement == 6 * 64
        assert plan.miss_fraction > 0.9

    def test_insertion_preserves_results_and_speeds_up(self):
        program, run = self._profiled_kernel()
        plans = plan_prefetches(program, run.database, lookahead=8)
        improved = insert_prefetches(program, plans)

        ref = Interpreter(program)
        ref.run_to_halt()
        got = Interpreter(improved)
        got.run_to_halt()
        assert got.state.regs.snapshot() == ref.state.regs.snapshot()

        before = OutOfOrderCore(program)
        before_cycles = before.run()
        after = OutOfOrderCore(improved)
        after_cycles = after.run()
        assert after_cycles < 0.8 * before_cycles

    def test_no_plans_without_misses(self):
        from tests.conftest import counting_loop

        program = counting_loop(iterations=500)
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=20, seed=3))
        assert plan_prefetches(program, run.database) == []


class TestPlanApplicationStaleness:
    """Regression tests: plans are valid only against the program they
    were computed from, and one program's plans must be applied in a
    single call (PCs shift as instructions are inserted)."""

    def _two_load_program(self):
        b = ProgramBuilder(name="twoloads")
        b.alloc("a", 256)
        b.alloc("b", 256)
        b.begin_function("main")
        b.li_addr(2, "a")
        b.li_addr(4, "b")
        b.ldi(1, 16)
        b.label("loop")
        b.ld(3, 2, 0)
        b.lda(2, 2, 8)
        b.ld(5, 4, 0)
        b.lda(4, 4, 16)
        b.lda(1, 1, -1)
        b.bne(1, "loop")
        b.halt()
        b.end_function()
        return b.build(entry="main")

    def _plans_for(self, program):
        from repro.analysis.optimize import PrefetchPlan, detect_stride

        plans = []
        for index, inst in enumerate(program.instructions):
            if not inst.is_load:
                continue
            pc = index * 4
            stride = detect_stride(program, pc)
            plans.append(PrefetchPlan(load_pc=pc, base_reg=inst.src1,
                                      displacement=inst.imm + 6 * stride,
                                      stride=stride, miss_fraction=1.0))
        return plans

    def test_two_plans_in_same_function_apply_in_one_call(self):
        from repro.analysis.optimize import insert_prefetches_with_map

        program = self._two_load_program()
        plans = self._plans_for(program)
        assert len(plans) == 2
        improved, remap = insert_prefetches_with_map(program, plans)
        # Both prefetches landed immediately after their loads, even
        # though the first insertion shifted the second load's PC.
        for plan in plans:
            assert improved.fetch(remap[plan.load_pc]).is_load
            after = improved.fetch(remap[plan.load_pc] + 4)
            assert after.op is Opcode.PREFETCH
            assert after.src1 == plan.base_reg
        # Architectural results are unchanged.
        ref = Interpreter(program)
        ref.run_to_halt()
        got = Interpreter(improved)
        got.run_to_halt()
        assert got.state.regs.snapshot() == ref.state.regs.snapshot()
        assert got.state.memory.snapshot() == ref.state.memory.snapshot()

    def test_stale_plan_against_relocated_program_is_rejected(self):
        from repro.analysis.optimize import (insert_prefetches,
                                             insert_prefetches_with_map)

        program = self._two_load_program()
        plans = self._plans_for(program)
        # Applying the first plan moves the second load; re-applying the
        # *original* second plan against the new image must fail loudly
        # instead of silently instrumenting the wrong instruction.
        shifted = insert_prefetches(program, plans[:1])
        with pytest.raises(AnalysisError, match="stale prefetch plan"):
            insert_prefetches_with_map(shifted, plans[1:])

    def test_plan_at_invalid_pc_is_rejected(self):
        from repro.analysis.optimize import (PrefetchPlan,
                                             insert_prefetches_with_map)

        program = self._two_load_program()
        bogus = PrefetchPlan(load_pc=program.pc_limit + 64, base_reg=2,
                             displacement=0, stride=8, miss_fraction=1.0)
        with pytest.raises(AnalysisError, match="stale prefetch plan"):
            insert_prefetches_with_map(program, [bogus])

    def test_identical_duplicate_plans_fold(self):
        from repro.analysis.optimize import insert_prefetches_with_map

        program = self._two_load_program()
        plan = self._plans_for(program)[0]
        improved, remap = insert_prefetches_with_map(program, [plan, plan])
        new_pc = remap[plan.load_pc]
        assert improved.fetch(new_pc + 4).op is Opcode.PREFETCH
        # Only one PREFETCH was inserted for the duplicated plan.
        assert len(improved.instructions) == len(program.instructions) + 1
