"""Tests for structural profile aggregation (function/loop rollups)."""

import pytest

from repro.analysis.aggregate import (by_function, by_loop,
                                      hierarchy_report)
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import suite_program

from tests.isa.test_loops import nested_loop_program


@pytest.fixture(scope="module")
def profiled_compress():
    program = suite_program("compress", scale=1)
    run = run_profiled(program,
                       profile=ProfileMeConfig(mean_interval=30, seed=2))
    return program, run


class TestByFunction:
    def test_rollup_is_lossless(self, profiled_compress):
        program, run = profiled_compress
        summaries = by_function(run.database, program)
        assert (sum(s.samples for s in summaries.values())
                == run.database.total_samples)

    def test_hot_phase_dominates(self, profiled_compress):
        program, run = profiled_compress
        summaries = by_function(run.database, program)
        hottest = max(summaries.values(), key=lambda s: s.samples)
        assert hottest.name.startswith("phase_")

    def test_estimated_cycles_scale_with_interval(self, profiled_compress):
        program, run = profiled_compress
        summaries = by_function(run.database, program)
        any_summary = next(iter(summaries.values()))
        assert (any_summary.estimated_cycles(60)
                == 2 * any_summary.estimated_cycles(30))


class TestByLoop:
    def test_rollup_is_lossless(self, profiled_compress):
        program, run = profiled_compress
        summaries = by_loop(run.database, program)
        assert (sum(s.samples for s in summaries.values())
                == run.database.total_samples)

    def test_loop_units_present(self, profiled_compress):
        program, run = profiled_compress
        summaries = by_loop(run.database, program)
        loop_units = [name for name in summaries if "/loop@" in name]
        straightline = [name for name in summaries
                        if name.endswith("/straightline")]
        assert loop_units
        assert straightline

    def test_inner_loop_attribution(self):
        program = nested_loop_program()
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=5, seed=1))
        summaries = by_loop(run.database, program)
        inner_name = "main/loop@%#x" % program.pc_of_label("inner")
        outer_name = "main/loop@%#x" % program.pc_of_label("outer")
        assert inner_name in summaries
        # The inner loop executes 4x as often as the outer-only code.
        assert (summaries[inner_name].samples
                > summaries.get(outer_name,
                                type(summaries[inner_name])("x")).samples)


class TestHierarchyReport:
    def test_report_renders(self, profiled_compress):
        program, run = profiled_compress
        text = hierarchy_report(run.database, program, mean_interval=30)
        assert "By function" in text
        assert "By loop (innermost)" in text
        assert "phase_" in text
