"""Property test: sharded aggregation must be exact.

The profiling service folds sample streams into per-worker/per-shard
databases and merges them later (possibly on another machine, via the
wire document form).  That is only sound if ``ProfileDatabase.merge``
is *exact*: merging N shards of a split sample stream must be
field-for-field identical — sample counts, per-event counts, latency
(count, sum, sum-of-squares) triples, branch-direction counts, and the
capped address lists — to aggregating the whole stream into a single
database.  Hypothesis drives random streams, split points, and address
caps; comparison is over the canonical document form, which covers
every persisted field.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.database import ProfileDatabase
from repro.analysis.persistence import database_from_dict, database_to_dict
from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode
from repro.profileme.registers import PairedRecord, ProfileRecord

_EVENT_CHOICES = (
    Event.RETIRED,
    Event.RETIRED | Event.DCACHE_MISS,
    Event.RETIRED | Event.BRANCH_TAKEN,
    Event.RETIRED | Event.DCACHE_MISS | Event.L2_MISS,
    Event.ABORTED | Event.BAD_PATH,
    Event.ABORTED | Event.MISPREDICT,
)

_latency = st.one_of(st.none(), st.integers(min_value=0, max_value=200))

_records = st.builds(
    ProfileRecord,
    context=st.just(0),
    pc=st.sampled_from([0x10, 0x14, 0x20, 0x40, 0x44]),
    op=st.sampled_from([Opcode.ADD, Opcode.LD, Opcode.BEQ]),
    addr=st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 16)),
    events=st.sampled_from(_EVENT_CHOICES),
    abort_reason=st.just(AbortReason.NONE),
    history=st.integers(min_value=0, max_value=255),
    fetch_to_map=_latency,
    map_to_data_ready=_latency,
    data_ready_to_issue=_latency,
    issue_to_retire_ready=_latency,
    retire_ready_to_retire=_latency,
    load_issue_to_completion=_latency,
    fetch_cycle=st.integers(min_value=0, max_value=10_000),
    done_cycle=st.integers(min_value=0, max_value=10_000),
)

_samples = st.one_of(
    _records,
    st.builds(PairedRecord, first=_records,
              second=st.one_of(st.none(), _records),
              intra_pair_cycles=st.one_of(st.none(),
                                          st.integers(0, 100)),
              intra_pair_distance=st.integers(1, 50)),
)


def _split(stream, cut_points):
    """Split *stream* into contiguous shards at sorted *cut_points*."""
    cuts = sorted(set(min(c, len(stream)) for c in cut_points))
    shards = []
    previous = 0
    for cut in cuts + [len(stream)]:
        shards.append(stream[previous:cut])
        previous = cut
    return shards


@settings(max_examples=60, deadline=None)
@given(stream=st.lists(_samples, max_size=60),
       cut_points=st.lists(st.integers(min_value=0, max_value=60),
                           max_size=4),
       keep_addresses=st.sampled_from([0, 1, 3, 8]))
def test_merging_shards_is_exact(stream, cut_points, keep_addresses):
    single = ProfileDatabase(keep_addresses=keep_addresses)
    for sample in stream:
        single.add(sample)

    merged = ProfileDatabase(keep_addresses=keep_addresses)
    for shard_stream in _split(stream, cut_points):
        shard = ProfileDatabase(keep_addresses=keep_addresses)
        for sample in shard_stream:
            shard.add(sample)
        merged.merge(shard)

    assert database_to_dict(merged) == database_to_dict(single)


@settings(max_examples=30, deadline=None)
@given(stream=st.lists(_samples, max_size=40),
       cut_points=st.lists(st.integers(min_value=0, max_value=40),
                           max_size=3))
def test_merge_through_the_document_form_is_exact(stream, cut_points):
    """Shards serialized, shipped, and deserialized merge identically —
    the wire/document round trip the service relies on."""
    single = ProfileDatabase(keep_addresses=2)
    for sample in stream:
        single.add(sample)

    merged = ProfileDatabase(keep_addresses=2)
    for shard_stream in _split(stream, cut_points):
        shard = ProfileDatabase(keep_addresses=2)
        for sample in shard_stream:
            shard.add(sample)
        merged.merge(database_from_dict(database_to_dict(shard)))

    assert database_to_dict(merged) == database_to_dict(single)
