"""Tests for the per-PC profile database."""

import pytest

from repro.analysis.database import LatencyAggregate, ProfileDatabase
from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode
from repro.profileme.registers import PairedRecord, ProfileRecord


def make_record(pc=0x10, events=Event.RETIRED, addr=None,
                latencies=None, op=Opcode.ADD):
    fields = dict(fetch_to_map=2, map_to_data_ready=1, data_ready_to_issue=0,
                  issue_to_retire_ready=1, retire_ready_to_retire=3,
                  load_issue_to_completion=None)
    fields.update(latencies or {})
    return ProfileRecord(context=0, pc=pc, op=op, addr=addr, events=events,
                         abort_reason=AbortReason.NONE, history=0,
                         fetch_cycle=0, done_cycle=10, **fields)


class TestAggregation:
    def test_counts_and_events(self):
        db = ProfileDatabase()
        db.add(make_record())
        db.add(make_record(events=Event.RETIRED | Event.DCACHE_MISS))
        db.add(make_record(events=Event.ABORTED | Event.BAD_PATH))
        profile = db.profile(0x10)
        assert profile.samples == 3
        assert profile.retired_samples == 2
        assert profile.event_count(Event.DCACHE_MISS) == 1
        assert profile.event_count(Event.ABORTED) == 1
        assert profile.event_fraction(Event.DCACHE_MISS) == pytest.approx(1 / 3)

    def test_latency_streaming_moments(self):
        db = ProfileDatabase()
        for value in (2, 4, 6):
            db.add(make_record(latencies={"fetch_to_map": value}))
        aggregate = db.profile(0x10).latency("fetch_to_map")
        assert aggregate.count == 3
        assert aggregate.mean == 4
        assert aggregate.variance == pytest.approx(8 / 3)

    def test_none_latencies_skipped(self):
        db = ProfileDatabase()
        db.add(make_record(latencies={"issue_to_retire_ready": None}))
        profile = db.profile(0x10)
        assert profile.latency("issue_to_retire_ready").count == 0
        assert profile.latency("fetch_to_map").count == 1

    def test_pair_unpacked_into_both_members(self):
        db = ProfileDatabase()
        pair = PairedRecord(first=make_record(pc=0x10),
                            second=make_record(pc=0x20),
                            intra_pair_cycles=3, intra_pair_distance=5)
        db.add(pair)
        assert db.samples_at(0x10) == 1
        assert db.samples_at(0x20) == 1
        assert db.total_samples == 2

    def test_incomplete_pair(self):
        db = ProfileDatabase()
        db.add(PairedRecord(first=make_record(), second=None,
                            intra_pair_cycles=None,
                            intra_pair_distance=None))
        assert db.total_samples == 1

    def test_branch_direction_profile(self):
        db = ProfileDatabase()
        db.add(make_record(events=Event.RETIRED | Event.BRANCH_TAKEN,
                           op=Opcode.BNE))
        db.add(make_record(op=Opcode.BNE))
        assert db.profile(0x10).taken_count == 1


class TestAddressRetention:
    def test_addresses_capped(self):
        db = ProfileDatabase(keep_addresses=2)
        for index in range(5):
            db.add(make_record(addr=index * 8,
                               events=Event.RETIRED | Event.DCACHE_MISS))
        assert len(db.profile(0x10).addresses) == 2
        addr, dmiss, tmiss = db.profile(0x10).addresses[0]
        assert dmiss and not tmiss

    def test_disabled_by_default(self):
        db = ProfileDatabase()
        db.add(make_record(addr=8))
        assert db.profile(0x10).addresses == []


class TestQueries:
    def test_top_by_event(self):
        db = ProfileDatabase()
        for _ in range(3):
            db.add(make_record(pc=0x10,
                               events=Event.RETIRED | Event.DCACHE_MISS))
        db.add(make_record(pc=0x20,
                           events=Event.RETIRED | Event.DCACHE_MISS))
        top = db.top_by_event(Event.DCACHE_MISS, limit=1)
        assert top == [(0x10, 3)]

    def test_pcs_sorted(self):
        db = ProfileDatabase()
        db.add(make_record(pc=0x20))
        db.add(make_record(pc=0x10))
        assert db.pcs() == [0x10, 0x20]

    def test_missing_pc(self):
        db = ProfileDatabase()
        assert db.profile(0x99) is None
        assert db.samples_at(0x99) == 0


class TestMerge:
    def test_merge_adds_counts_and_latencies(self):
        a = ProfileDatabase()
        b = ProfileDatabase()
        a.add(make_record())
        b.add(make_record())
        b.add(make_record(pc=0x20))
        a.merge(b)
        assert a.samples_at(0x10) == 2
        assert a.samples_at(0x20) == 1
        assert a.total_samples == 3
        assert a.profile(0x10).latency("fetch_to_map").count == 2


class TestTopTieOrder:
    """top_by_event ranks (count desc, pc asc) — deterministic under
    any shard-merge order, so ``repro query top`` output is stable."""

    def test_ties_rank_by_ascending_pc(self):
        db = ProfileDatabase()
        for pc in (0x30, 0x10, 0x20):
            db.add(make_record(pc=pc))
        assert db.top_by_event(Event.RETIRED, limit=3) == \
            [(0x10, 1), (0x20, 1), (0x30, 1)]

    def test_tie_at_the_cut_is_deterministic(self):
        db = ProfileDatabase()
        db.add(make_record(pc=0x50))
        db.add(make_record(pc=0x50))
        for pc in (0x40, 0x20, 0x30):
            db.add(make_record(pc=pc))
        # Three PCs tie at one sample; a limit of 2 keeps the lowest.
        assert db.top_by_event(Event.RETIRED, limit=2) == \
            [(0x50, 2), (0x20, 1)]

    def test_merge_order_does_not_change_ranking(self):
        def shard(pcs):
            db = ProfileDatabase()
            for pc in pcs:
                db.add(make_record(pc=pc))
            return db

        shards = [shard([0x10, 0x30]), shard([0x30, 0x20]),
                  shard([0x20, 0x10])]
        rankings = []
        for order in ((0, 1, 2), (2, 1, 0), (1, 0, 2)):
            merged = ProfileDatabase()
            for i in order:
                merged.merge(shards[i])
            rankings.append(merged.top_by_event(Event.RETIRED, limit=3))
        assert rankings[0] == rankings[1] == rankings[2] == \
            [(0x10, 2), (0x20, 2), (0x30, 2)]
