"""Tests for whole-program cycle accounting."""

import pytest

from repro.analysis.cycles import (event_attribution, format_breakdown,
                                   per_pc_breakdown, program_breakdown)
from repro.analysis.database import ProfileDatabase
from repro.errors import AnalysisError
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import stall_kernel

from tests.analysis.test_database import make_record
from tests.conftest import counting_loop


class TestPerPcBreakdown:
    def test_minimums_subtracted(self):
        db = ProfileDatabase()
        # fetch_to_map == frontend depth, map_to_data_ready == 1: no stall.
        db.add(make_record(latencies={"fetch_to_map": 2,
                                      "map_to_data_ready": 1,
                                      "data_ready_to_issue": 0,
                                      "issue_to_retire_ready": 1}))
        rows = per_pc_breakdown(db, mean_interval=10)
        cycles = rows[0].cycles
        assert cycles["frontend"] == 0.0
        assert cycles["dependences"] == 0.0
        assert cycles["execution"] == 10.0

    def test_stalls_attributed(self):
        db = ProfileDatabase()
        db.add(make_record(latencies={"fetch_to_map": 12,
                                      "map_to_data_ready": 41,
                                      "data_ready_to_issue": 3,
                                      "issue_to_retire_ready": 7,
                                      "retire_ready_to_retire": 9}))
        rows = per_pc_breakdown(db, mean_interval=1)
        cycles = rows[0].cycles
        assert cycles["frontend"] == 10.0
        assert cycles["dependences"] == 40.0
        assert cycles["fu_contention"] == 3.0
        assert cycles["execution"] == 7.0
        assert cycles["retire_wait"] == 9.0
        assert rows[0].total_in_progress == 60.0


class TestProgramBreakdown:
    def test_fractions_sum_to_one(self):
        db = ProfileDatabase()
        for _ in range(5):
            db.add(make_record(latencies={"map_to_data_ready": 21}))
        totals, fractions = program_breakdown(db, mean_interval=100)
        shares = [f for c, f in fractions.items() if f is not None]
        assert sum(shares) == pytest.approx(1.0)
        assert fractions["dependences"] > 0.5

    def test_empty_database_raises(self):
        with pytest.raises(AnalysisError):
            program_breakdown(ProfileDatabase(), 10)

    def test_dep_chain_kernel_is_dependence_bound(self):
        program = stall_kernel("dep_chain", iterations=150)
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=15, seed=1))
        totals, fractions = program_breakdown(run.database, 15)
        assert fractions["dependences"] > 0.4

    def test_fu_kernel_shows_contention(self):
        program = stall_kernel("fu_contention", iterations=150)
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=15, seed=1))
        totals, fractions = program_breakdown(run.database, 15)
        assert fractions["fu_contention"] > 0.1


class TestEventAttribution:
    def test_fractions_of_samples(self):
        from repro.events import Event

        db = ProfileDatabase()
        db.add(make_record(events=Event.RETIRED | Event.DCACHE_MISS))
        db.add(make_record())
        fractions = event_attribution(db)
        assert fractions["dcache_miss"] == pytest.approx(0.5)
        assert fractions["mispredict"] == 0.0


class TestFormatting:
    def test_format_breakdown_text(self):
        program = counting_loop(iterations=400)
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=10, seed=1))
        totals, fractions = program_breakdown(run.database, 10)
        text = format_breakdown(totals, fractions,
                                event_attribution(run.database))
        assert "Where have all the cycles gone?" in text
        assert "dependences" in text
