"""Tests for profile save/load/merge."""

import json
import os

import pytest

from repro.analysis.persistence import (database_from_dict,
                                        database_to_dict, load_database,
                                        load_result, save_database)
from repro.analysis.database import ProfileDatabase
from repro.errors import AnalysisError, PersistenceError
from repro.events import Event
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig

from tests.analysis.test_database import make_record
from tests.conftest import counting_loop


def _populated():
    db = ProfileDatabase(keep_addresses=4)
    db.add(make_record(events=Event.RETIRED | Event.DCACHE_MISS, addr=64))
    db.add(make_record(pc=0x20))
    return db


class TestRoundTrip:
    def test_dict_round_trip(self):
        db = _populated()
        clone = database_from_dict(database_to_dict(db))
        assert clone.total_samples == db.total_samples
        assert clone.pcs() == db.pcs()
        original = db.profile(0x10)
        restored = clone.profile(0x10)
        assert restored.samples == original.samples
        assert restored.event_count(Event.DCACHE_MISS) == 1
        assert (restored.latency("fetch_to_map").mean
                == original.latency("fetch_to_map").mean)
        assert restored.addresses == [(64, True, False)]

    def test_file_round_trip(self, tmp_path):
        db = _populated()
        path = tmp_path / "profile.json"
        save_database(db, str(path))
        clone = load_database(str(path))
        assert clone.total_samples == db.total_samples
        # The file is honest JSON.
        with open(path) as stream:
            data = json.load(stream)
        assert data["format"] == "repro-profile"

    def test_real_run_round_trip(self, tmp_path):
        program = counting_loop(iterations=500)
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=10, seed=1))
        path = tmp_path / "run.json"
        save_database(run.database, str(path))
        clone = load_database(str(path))
        for pc in run.database.pcs():
            assert clone.samples_at(pc) == run.database.samples_at(pc)

    def test_merge_after_load(self, tmp_path):
        db = _populated()
        path = tmp_path / "a.json"
        save_database(db, str(path))
        clone = load_database(str(path))
        clone.merge(db)
        assert clone.samples_at(0x10) == 2 * db.samples_at(0x10)


class TestValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(AnalysisError, match="not a repro profile"):
            database_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self):
        data = database_to_dict(_populated())
        data["version"] = 99
        with pytest.raises(AnalysisError, match="version"):
            database_from_dict(data)

    def test_rejects_unknown_event(self):
        data = database_to_dict(_populated())
        next(iter(data["per_pc"].values()))["events"]["BOGUS"] = 1
        with pytest.raises(AnalysisError, match="unknown event"):
            database_from_dict(data)


class TestFailurePaths:
    """Every load failure mode must raise a typed error, never load
    silently or leak a raw OSError/KeyError/JSONDecodeError."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot read"):
            load_database(str(tmp_path / "nope.json"))
        with pytest.raises(PersistenceError, match="cannot read"):
            load_result(str(tmp_path / "nope.json"))

    def test_unreadable_file(self, tmp_path):
        path = tmp_path / "profile.json"
        save_database(_populated(), str(path))
        path.chmod(0o000)
        try:
            if os.access(str(path), os.R_OK):  # running as root
                pytest.skip("permissions are not enforced for this user")
            with pytest.raises(PersistenceError, match="cannot read"):
                load_database(str(path))
        finally:
            path.chmod(0o644)

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text("{ this is not json")
        with pytest.raises(PersistenceError, match="corrupt"):
            load_database(str(path))
        with pytest.raises(PersistenceError, match="corrupt"):
            load_result(str(path))

    def test_interrupted_write_half_a_document(self, tmp_path):
        # Simulate a crash mid-write: a valid document truncated at
        # half its length is corrupt, not quietly loadable.
        complete = tmp_path / "complete.json"
        save_database(_populated(), str(complete))
        text = complete.read_text()
        partial = tmp_path / "partial.json"
        partial.write_text(text[:len(text) // 2])
        with pytest.raises(PersistenceError, match="corrupt"):
            load_database(str(partial))

    def test_wrong_version(self, tmp_path):
        data = database_to_dict(_populated())
        data["version"] = 99
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(data))
        with pytest.raises(AnalysisError, match="version"):
            load_database(str(path))

    def test_missing_required_field(self):
        data = database_to_dict(_populated())
        del data["total_samples"]
        with pytest.raises(PersistenceError, match="malformed"):
            database_from_dict(data)

    def test_malformed_latency_triple(self):
        data = database_to_dict(_populated())
        next(iter(data["per_pc"].values()))["latencies"] = {
            "fetch_to_map": [1, 2]}  # triple truncated to a pair
        with pytest.raises(PersistenceError, match="malformed"):
            database_from_dict(data)

    def test_non_document_input(self):
        with pytest.raises(AnalysisError, match="not a repro profile"):
            database_from_dict(["not", "a", "dict"])

    def test_result_missing_field(self, tmp_path):
        from repro.analysis.persistence import result_from_dict

        with pytest.raises(PersistenceError, match="malformed"):
            result_from_dict({"format": "repro-session-result",
                              "version": 1, "stats": {}})

    def test_persistence_error_is_an_analysis_error(self):
        # Back-compat: handlers written against AnalysisError keep
        # catching the new typed failures.
        assert issubclass(PersistenceError, AnalysisError)
