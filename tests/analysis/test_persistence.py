"""Tests for profile save/load/merge."""

import json

import pytest

from repro.analysis.persistence import (database_from_dict,
                                        database_to_dict, load_database,
                                        save_database)
from repro.analysis.database import ProfileDatabase
from repro.errors import AnalysisError
from repro.events import Event
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig

from tests.analysis.test_database import make_record
from tests.conftest import counting_loop


def _populated():
    db = ProfileDatabase(keep_addresses=4)
    db.add(make_record(events=Event.RETIRED | Event.DCACHE_MISS, addr=64))
    db.add(make_record(pc=0x20))
    return db


class TestRoundTrip:
    def test_dict_round_trip(self):
        db = _populated()
        clone = database_from_dict(database_to_dict(db))
        assert clone.total_samples == db.total_samples
        assert clone.pcs() == db.pcs()
        original = db.profile(0x10)
        restored = clone.profile(0x10)
        assert restored.samples == original.samples
        assert restored.event_count(Event.DCACHE_MISS) == 1
        assert (restored.latency("fetch_to_map").mean
                == original.latency("fetch_to_map").mean)
        assert restored.addresses == [(64, True, False)]

    def test_file_round_trip(self, tmp_path):
        db = _populated()
        path = tmp_path / "profile.json"
        save_database(db, str(path))
        clone = load_database(str(path))
        assert clone.total_samples == db.total_samples
        # The file is honest JSON.
        with open(path) as stream:
            data = json.load(stream)
        assert data["format"] == "repro-profile"

    def test_real_run_round_trip(self, tmp_path):
        program = counting_loop(iterations=500)
        run = run_profiled(program,
                           profile=ProfileMeConfig(mean_interval=10, seed=1))
        path = tmp_path / "run.json"
        save_database(run.database, str(path))
        clone = load_database(str(path))
        for pc in run.database.pcs():
            assert clone.samples_at(pc) == run.database.samples_at(pc)

    def test_merge_after_load(self, tmp_path):
        db = _populated()
        path = tmp_path / "a.json"
        save_database(db, str(path))
        clone = load_database(str(path))
        clone.merge(db)
        assert clone.samples_at(0x10) == 2 * db.samples_at(0x10)


class TestValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(AnalysisError, match="not a repro profile"):
            database_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self):
        data = database_to_dict(_populated())
        data["version"] = 99
        with pytest.raises(AnalysisError, match="version"):
            database_from_dict(data)

    def test_rejects_unknown_event(self):
        data = database_to_dict(_populated())
        next(iter(data["per_pc"].values()))["events"]["BOGUS"] = 1
        with pytest.raises(AnalysisError, match="unknown event"):
            database_from_dict(data)
