"""Tests for the section 5.1 statistical estimators."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import estimators
from repro.errors import AnalysisError


class TestEstimateCount:
    def test_basic(self):
        assert estimators.estimate_count(10, 100) == 1000

    def test_zero_samples(self):
        assert estimators.estimate_count(0, 100) == 0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            estimators.estimate_count(-1, 100)
        with pytest.raises(AnalysisError):
            estimators.estimate_count(1, 0)

    def test_unbiased_monte_carlo(self):
        """E[kS] equals the true count fN over many sampling runs."""
        rng = random.Random(1)
        interval = 50
        population = 100_000
        fraction = 0.02
        estimates = []
        for _ in range(200):
            k = sum(1 for _ in range(population // interval)
                    if rng.random() < fraction)
            estimates.append(estimators.estimate_count(k, interval))
        mean = sum(estimates) / len(estimates)
        truth = fraction * population
        assert abs(mean / truth - 1.0) < 0.1


class TestCoefficientOfVariation:
    def test_matches_paper_formula(self):
        cv = estimators.coefficient_of_variation(
            total_fetched=10_000, mean_interval=100, fraction=0.1)
        expected = math.sqrt(1 / 10_000) * math.sqrt((100 - 0.1) / 0.1)
        assert cv == pytest.approx(expected)

    def test_approximation_close_for_small_fraction(self):
        exact = estimators.coefficient_of_variation(
            total_fetched=1_000_000, mean_interval=1000, fraction=0.01)
        expected_k = 0.01 * 1_000_000 / 1000
        approx = estimators.approx_coefficient_of_variation(expected_k)
        assert exact == pytest.approx(approx, rel=0.01)

    def test_monte_carlo_agrees(self):
        """Observed spread of kS tracks the predicted cv."""
        rng = random.Random(7)
        interval = 100
        population = 200_000
        fraction = 0.05
        estimates = []
        for _ in range(300):
            k = sum(1 for _ in range(population // interval)
                    if rng.random() < fraction)
            estimates.append(k * interval)
        mean = sum(estimates) / len(estimates)
        var = sum((e - mean) ** 2 for e in estimates) / (len(estimates) - 1)
        observed_cv = math.sqrt(var) / mean
        predicted = estimators.coefficient_of_variation(
            population, interval, fraction)
        assert observed_cv == pytest.approx(predicted, rel=0.25)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            estimators.coefficient_of_variation(100, 10, 0.0)


class TestEnvelope:
    def test_envelope_shrinks_like_sqrt(self):
        assert estimators.relative_error_envelope(100) == pytest.approx(0.1)
        assert estimators.relative_error_envelope(4) == pytest.approx(0.5)

    def test_zero_samples_infinite(self):
        assert estimators.relative_error_envelope(0) == math.inf

    @given(st.integers(min_value=1, max_value=10 ** 6))
    def test_positive_and_decreasing(self, k):
        assert estimators.relative_error_envelope(k) > 0
        assert (estimators.relative_error_envelope(k + 1)
                < estimators.relative_error_envelope(k))


class TestConfidenceInterval:
    def test_contains_estimate(self):
        low, high = estimators.confidence_interval(25, 100)
        assert low <= 2500 <= high

    def test_width_grows_with_interval(self):
        narrow = estimators.confidence_interval(25, 10)
        wide = estimators.confidence_interval(25, 1000)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_zero_samples(self):
        low, high = estimators.confidence_interval(0, 100)
        assert low == 0 and high == 0

    def test_coverage_monte_carlo(self):
        """~95% of CIs should contain the truth."""
        rng = random.Random(3)
        interval = 100
        population = 100_000
        fraction = 0.03
        truth = fraction * population
        covered = 0
        trials = 300
        for _ in range(trials):
            k = sum(1 for _ in range(population // interval)
                    if rng.random() < fraction)
            low, high = estimators.confidence_interval(k, interval)
            if low <= truth <= high:
                covered += 1
        assert covered / trials > 0.85


class TestSamplesNeeded:
    def test_ten_percent_needs_hundred(self):
        assert estimators.samples_needed(0.1) == 100

    def test_one_percent_needs_ten_thousand(self):
        assert estimators.samples_needed(0.01) == 10_000

    def test_validation(self):
        with pytest.raises(AnalysisError):
            estimators.samples_needed(0)


class TestRatioWithinEnvelope:
    def test_perfect_estimates_inside(self):
        pairs = [(100, 100, 25), (200, 200, 25)]
        assert estimators.ratio_within_envelope(pairs) == 1.0

    def test_bad_estimates_outside(self):
        pairs = [(300, 100, 100)]
        assert estimators.ratio_within_envelope(pairs) == 0.0

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            estimators.ratio_within_envelope([])

    def test_all_pairs_filtered_raises(self):
        # Zero/negative actual counts are skipped; if nothing survives,
        # the result must be an error, not a silent 0.0.
        with pytest.raises(AnalysisError):
            estimators.ratio_within_envelope([(10, 0, 4), (10, -1, 4)])
