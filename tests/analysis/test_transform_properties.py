"""Property-based tests: PGO transformations preserve architecture.

The whole PGO loop rests on one invariant: relocated and instrumented
programs are *architecturally equivalent* to the originals — same final
memory, same final registers (modulo return-address registers, which
legitimately hold different code addresses after relocation).  Hypothesis
drives random function permutations and prefetch-insertion sites over
the JMP-free workload suite; a seeded grid checks the same invariant on
the detailed cores, since timing machinery must not change results
either.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.optimize import (PrefetchPlan, detect_stride,
                                     insert_instructions_with_map,
                                     insert_prefetches_with_map,
                                     reorder_functions_with_map)
from repro.cpu.inorder.core import InOrderCore
from repro.cpu.ooo.core import OutOfOrderCore
from repro.isa.instruction import Instruction
from repro.isa.interpreter import Interpreter
from repro.isa.opcodes import Opcode
from repro.isa.relocation import indirect_jump_pcs
from repro.workloads import stall_kernel, suite_program

# Relocatable programs only: JMP workloads are (correctly) refused by
# the validator, which tests/isa/test_relocation.py covers.
_NAMES = ["compress", "ijpeg", "li", "povray", "vortex"]


def _program(name):
    if name.startswith("kernel:"):
        return stall_kernel(name.split(":", 1)[1], iterations=50)
    return suite_program(name, scale=1)


_PROGRAMS = {name: _program(name)
             for name in _NAMES + ["kernel:dcache_miss"]}
assert all(not indirect_jump_pcs(p) for p in _PROGRAMS.values())


def _final_state(program):
    interp = Interpreter(program)
    interp.run_to_halt()
    return interp.state.regs.snapshot(), interp.state.memory.snapshot()


def _assert_state_matches(ref, got, remap):
    """Architectural equivalence up to relocation.

    Return addresses are code addresses: after relocation they differ,
    in registers and wherever the program spilled them to memory — but
    they must differ *exactly by the relocation map*.  Everything else
    must be identical.
    """
    (ref_regs, ref_mem), (got_regs, got_mem) = ref, got
    assert set(got_mem) == set(ref_mem)
    for addr, value in ref_mem.items():
        if got_mem[addr] != value:
            assert got_mem[addr] == remap.get(value), (
                "memory %#x: %r is neither %r nor its relocation"
                % (addr, got_mem[addr], value))
    for reg, value in enumerate(ref_regs):
        if got_regs[reg] != value:
            assert got_regs[reg] == remap.get(value), (
                "r%d: %r is neither %r nor its relocation"
                % (reg, got_regs[reg], value))


def _assert_equivalent(original, transformed, remap):
    _assert_state_matches(_final_state(original),
                          _final_state(transformed), remap)


def _load_pcs(program):
    return [index * 4 for index, inst in enumerate(program.instructions)
            if inst.is_load]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_reordered_functions_retire_the_same_state(data):
    name = data.draw(st.sampled_from(_NAMES))
    program = _PROGRAMS[name]
    order = data.draw(st.permutations(sorted(program.functions)))
    relocated, remap = reorder_functions_with_map(program, list(order))
    _assert_equivalent(program, relocated, remap)
    # The remap is a bijection over instruction PCs + pc_limit.
    assert len(set(remap.values())) == len(remap)
    assert remap[program.pc_limit] == relocated.pc_limit


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_instrumented_programs_retire_the_same_state(data):
    name = data.draw(st.sampled_from(_NAMES))
    program = _PROGRAMS[name]
    loads = _load_pcs(program)
    picks = data.draw(st.lists(st.sampled_from(loads), unique=True,
                               min_size=1, max_size=4))
    insertions = {}
    for pc in picks:
        inst = program.fetch(pc)
        # PREFETCH is architecturally a no-op whatever its address.
        insertions[pc] = [Instruction(op=Opcode.PREFETCH, src1=inst.src1,
                                      imm=inst.imm + 64)]
    instrumented, remap = insert_instructions_with_map(program, insertions)
    assert (len(instrumented.instructions)
            == len(program.instructions) + len(picks))
    _assert_equivalent(program, instrumented, remap)
    for pc in picks:
        assert instrumented.fetch(remap[pc] + 4).op is Opcode.PREFETCH


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_chained_transformations_retire_the_same_state(data):
    name = data.draw(st.sampled_from(_NAMES))
    program = _PROGRAMS[name]
    order = data.draw(st.permutations(sorted(program.functions)))
    relocated, remap = reorder_functions_with_map(program, list(order))
    loads = _load_pcs(relocated)
    picks = data.draw(st.lists(st.sampled_from(loads), unique=True,
                               min_size=0, max_size=3))
    plans = []
    for pc in picks:
        inst = relocated.fetch(pc)
        stride = detect_stride(relocated, pc) or 8
        plans.append(PrefetchPlan(load_pc=pc, base_reg=inst.src1,
                                  displacement=inst.imm + 6 * stride,
                                  stride=stride, miss_fraction=1.0))
    final, delta = insert_prefetches_with_map(relocated, plans)
    chained = {pc: delta[mid] for pc, mid in remap.items()}
    _assert_equivalent(program, final, chained)


@pytest.mark.parametrize("core_cls", [OutOfOrderCore, InOrderCore])
@pytest.mark.parametrize("name", ["compress", "kernel:dcache_miss"])
def test_detailed_cores_agree_on_transformed_programs(core_cls, name):
    program = _PROGRAMS[name]
    order = sorted(program.functions, reverse=True)
    relocated, remap = reorder_functions_with_map(program, order)
    loads = _load_pcs(relocated)[:2]
    insertions = {pc: [Instruction(op=Opcode.PREFETCH,
                                   src1=relocated.fetch(pc).src1,
                                   imm=relocated.fetch(pc).imm)]
                  for pc in loads}
    final, delta = insert_instructions_with_map(relocated, insertions)
    chained = {pc: delta[mid] for pc, mid in remap.items()}

    core = core_cls(final)
    core.run()
    memory = getattr(core, "memory", None)
    if memory is None:  # the in-order core executes via its interpreter
        memory = core._interp.state.memory
    _assert_state_matches(_final_state(program),
                          (core.architectural_registers(),
                           memory.snapshot()), chained)
