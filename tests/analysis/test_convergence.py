"""Tests for the Figure 3 convergence machinery."""

import pytest

from repro.analysis.convergence import (convergence_points,
                                        dcache_miss_property,
                                        envelope_fraction, retired_property,
                                        summarize)
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig

from tests.conftest import counting_loop


@pytest.fixture(scope="module")
def loop_run():
    program = counting_loop(iterations=4000)
    return run_profiled(program,
                        profile=ProfileMeConfig(mean_interval=13, seed=21),
                        collect_truth=True)


def test_points_have_expected_shape(loop_run):
    points = convergence_points(loop_run.database, loop_run.truth, 13,
                                retired_property)
    assert points
    for p in points:
        assert p.actual > 0
        assert p.matching_samples <= p.total_samples
        assert p.estimate == p.matching_samples * 13


def test_estimates_converge_on_hot_instructions(loop_run):
    points = convergence_points(loop_run.database, loop_run.truth, 13,
                                retired_property)
    hot = [p for p in points if p.matching_samples >= 100]
    assert hot, "loop body must accumulate >= 100 samples"
    for p in hot:
        assert abs(p.ratio - 1.0) < 0.35


def test_envelope_fraction_near_two_thirds(loop_run):
    points = convergence_points(loop_run.database, loop_run.truth, 13,
                                retired_property)
    fraction = envelope_fraction(points)
    # Exactly 2/3 needs many independent points; just require the
    # envelope to be meaningful (most estimates inside or near).
    assert fraction >= 0.4


def test_dcache_property_on_memory_program(memory_program):
    run = run_profiled(memory_program,
                       profile=ProfileMeConfig(mean_interval=3, seed=2),
                       collect_truth=True)
    points = convergence_points(run.database, run.truth, 3,
                                dcache_miss_property)
    # The array walk has at least some D-cache misses to estimate.
    assert all(p.actual >= 1 for p in points)


def test_summarize_buckets(loop_run):
    points = convergence_points(loop_run.database, loop_run.truth, 13,
                                retired_property)
    rows = summarize(points, buckets=(1, 10, 100, 1000))
    assert rows
    for row in rows:
        assert 0.0 <= row["envelope_fraction"] <= 1.0
        assert row["points"] >= 1
    # Error shrinks in higher buckets (when both ends populated).
    if len(rows) >= 2:
        assert rows[-1]["mean_abs_error"] <= rows[0]["mean_abs_error"] + 0.05
