"""Tests for pipeline-state reconstruction and conditional concurrency."""

import pytest

from repro.analysis.pipeline_state import (ConcurrencySplit,
                                           PipelineStateEstimator,
                                           conditional_concurrency,
                                           memory_shadow_overlap, stage_at)
from repro.analysis.concurrency import stage_times
from repro.errors import AnalysisError
from repro.harness import run_profiled
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import fig7_three_loops

from tests.analysis.test_concurrency import pair, record


class TestStageAt:
    def test_stage_progression(self):
        times = stage_times(record(f2m=2, m2d=2, d2i=3, i2rr=4, rr2r=5), 0)
        # fetch=0, data_ready=4, issue=7, retire_ready=11, retire=16.
        assert stage_at(times, 0) == "frontend"
        assert stage_at(times, 3) == "frontend"
        assert stage_at(times, 4) == "queue"
        assert stage_at(times, 7) == "execute"
        assert stage_at(times, 10) == "execute"
        assert stage_at(times, 11) == "waiting_retire"
        assert stage_at(times, 15) == "waiting_retire"
        assert stage_at(times, 16) is None

    def test_before_fetch_is_none(self):
        times = stage_times(record(), 10)
        assert stage_at(times, 5) is None

    def test_aborted_truncates(self):
        aborted = record(retired=False)
        times = stage_times(aborted, 0)
        assert stage_at(times, times.retire_ready) is None


class TestPipelineStateEstimator:
    def test_occupancy_from_synthetic_pair(self):
        estimator = PipelineStateEstimator(max_offset=16)
        estimator.add(pair(record(), record(pc=0x20), intra=2))
        profile = estimator.profile()
        assert set(profile) == {"frontend", "queue", "execute",
                                "waiting_retire"}
        # Two anchors were accumulated (each member once).
        assert estimator.anchors == 2
        total = sum(sum(v) for v in profile.values())
        assert total > 0

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            PipelineStateEstimator().profile()

    def test_incomplete_pairs_ignored(self):
        estimator = PipelineStateEstimator()
        estimator.add(pair(record(), None))
        assert estimator.anchors == 0

    def test_real_run_occupancy_sane(self):
        program, _ = fig7_three_loops(iterations=150)
        run = run_profiled(program, profile=ProfileMeConfig(
            mean_interval=30, paired=True, pair_window=64, seed=11))
        estimator = PipelineStateEstimator(max_offset=32)
        for sample in run.pairs:
            estimator.add(sample)
        profile = estimator.profile()
        # Probabilities, so within [0, 1].
        for series in profile.values():
            assert all(0.0 <= v <= 1.0 for v in series)
        # Some occupancy must be observed in frontend and execute.
        assert estimator.mean_occupancy("frontend") > 0.0
        assert estimator.mean_occupancy("execute") > 0.0


class TestConditionalConcurrency:
    def test_default_buckets_hit_vs_miss(self):
        from repro.events import Event
        from repro.isa.opcodes import Opcode
        from repro.profileme.registers import ProfileRecord

        def load(miss, pc=0x10):
            base = record(pc=pc, op=Opcode.LD)
            events = base.events | (Event.DCACHE_MISS if miss
                                    else Event.NONE)
            return ProfileRecord(**{**base.__dict__, "events": events})

        pairs = [
            pair(load(miss=False), record(pc=0x99), intra=0),
            pair(load(miss=True), record(pc=0x99, retired=False), intra=0),
        ]
        buckets = conditional_concurrency(pairs)
        assert set(buckets) == {"hit", "miss"}
        assert buckets["hit"].rate > buckets["miss"].rate

    def test_pc_filter(self):
        pairs = [pair(record(pc=0x10), record(pc=0x99), intra=0)]
        buckets = conditional_concurrency(
            pairs, predicate=lambda r: "all", pcs={0x42})
        assert buckets == {}

    def test_custom_predicate(self):
        pairs = [pair(record(pc=0x10), record(pc=0x99), intra=0)]
        buckets = conditional_concurrency(
            pairs, predicate=lambda r: r.retired)
        assert True in buckets
        assert buckets[True].anchors >= 1


class TestMemoryShadowOverlap:
    def _load_pair(self, completion, intra):
        from repro.isa.opcodes import Opcode
        from repro.profileme.registers import ProfileRecord

        base = record(pc=0x10, op=Opcode.LD)
        anchor = ProfileRecord(**{
            **base.__dict__, "load_issue_to_completion": completion})
        return pair(anchor, record(pc=0x99), intra=intra)

    def test_partner_inside_long_shadow(self):
        from repro.analysis.concurrency import PairTimeline

        p = self._load_pair(completion=80, intra=5)
        timeline = PairTimeline(p)
        assert memory_shadow_overlap(p.first, timeline.first, p.second,
                                     timeline.second)

    def test_partner_outside_short_shadow(self):
        from repro.analysis.concurrency import PairTimeline

        # Hit: shadow of 2 cycles; partner issues at intra+3 >= end.
        p = self._load_pair(completion=2, intra=5)
        timeline = PairTimeline(p)
        assert not memory_shadow_overlap(p.first, timeline.first, p.second,
                                         timeline.second)

    def test_non_load_anchor_never_overlaps(self):
        from repro.analysis.concurrency import PairTimeline

        p = pair(record(pc=0x10), record(pc=0x99), intra=0)
        timeline = PairTimeline(p)
        assert not memory_shadow_overlap(p.first, timeline.first, p.second,
                                         timeline.second)

    def test_shadow_with_miss_events(self):
        from repro.events import Event
        from repro.isa.opcodes import Opcode
        from repro.profileme.registers import ProfileRecord

        base = record(pc=0x10, op=Opcode.LD)
        miss_anchor = ProfileRecord(**{
            **base.__dict__, "load_issue_to_completion": 80,
            "events": base.events | Event.DCACHE_MISS})
        hit_anchor = ProfileRecord(**{
            **base.__dict__, "load_issue_to_completion": 2})
        buckets = conditional_concurrency(
            [pair(miss_anchor, record(pc=0x99), intra=5),
             pair(hit_anchor, record(pc=0x99), intra=5)],
            overlap=memory_shadow_overlap)
        assert buckets["miss"].rate > buckets["hit"].rate
