"""Property tests for the columnar data plane.

Two invariants guard the struct-of-arrays rewrite:

* **Columnar == legacy scalar.**  The columnar fold must be
  record-for-record identical to the straightforward per-record scalar
  aggregation the database used to do (walk the event flags, update a
  per-name latency triple).  The reference implementation is embedded
  here, frozen at the legacy semantics, and compared field-for-field.

* **Rollup commutes with merge.**  Splitting a sample stream across
  shards and merging their bucketed databases must equal bucketing the
  whole stream in one database — ``rollup(a + b) ==
  rollup(a).merge(rollup(b))`` when both sides bucket on the same
  boundaries.  This is what makes sharded continuous ingest exact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.database import (AGGREGATED_EVENTS, ProfileDatabase,
                                     decompose_events)
from repro.analysis.persistence import canonical_json, database_to_dict
from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode
from repro.profileme.registers import LATENCY_FIELDS, ProfileRecord

_EVENT_CHOICES = (
    Event.RETIRED,
    Event.RETIRED | Event.DCACHE_MISS,
    Event.RETIRED | Event.BRANCH_TAKEN,
    Event.RETIRED | Event.BRANCH_TAKEN | Event.MISPREDICT,
    Event.RETIRED | Event.DCACHE_MISS | Event.L2_MISS,
    Event.RETIRED | Event.ICACHE_MISS | Event.ITB_MISS,
    Event.ABORTED | Event.BAD_PATH,
    Event.ABORTED | Event.MISPREDICT,
)

_latency = st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 20))

_records = st.builds(
    ProfileRecord,
    context=st.just(0),
    pc=st.sampled_from([0x10, 0x14, 0x20, 0x40, (1 << 64) - 8]),
    op=st.sampled_from([Opcode.ADD, Opcode.LD, Opcode.BEQ]),
    addr=st.just(None),
    events=st.sampled_from(_EVENT_CHOICES),
    abort_reason=st.just(AbortReason.NONE),
    history=st.just(0),
    fetch_to_map=_latency,
    map_to_data_ready=_latency,
    data_ready_to_issue=_latency,
    issue_to_retire_ready=_latency,
    retire_ready_to_retire=_latency,
    load_issue_to_completion=_latency,
    fetch_cycle=st.integers(min_value=0, max_value=4000),
    done_cycle=st.integers(min_value=0, max_value=4000),
)


def legacy_scalar_fold(records):
    """The pre-columnar reference aggregation: one dict row per pc,
    per-record flag walk, per-name (count, total, total_sq) triples."""
    rows = {}
    for record in records:
        row = rows.get(record.pc)
        if row is None:
            row = rows[record.pc] = {
                "samples": 0, "taken": 0, "events": {}, "latencies": {}}
        row["samples"] += 1
        for flag in decompose_events(record.events):
            row["events"][flag] = row["events"].get(flag, 0) + 1
        if record.events & Event.BRANCH_TAKEN:
            row["taken"] += 1
        for name in LATENCY_FIELDS:
            value = getattr(record, name)
            if value is not None:
                count, total, total_sq = row["latencies"].get(name, (0, 0, 0))
                row["latencies"][name] = (count + 1, total + value,
                                          total_sq + value * value)
    return rows


@settings(max_examples=60, deadline=None)
@given(records=st.lists(_records, max_size=120))
def test_columnar_fold_matches_legacy_scalar_fold(records):
    db = ProfileDatabase()
    for record in records:
        db.add(record)
    reference = legacy_scalar_fold(records)
    assert sorted(db.pcs()) == sorted(reference)
    assert db.total_samples == sum(row["samples"]
                                   for row in reference.values())
    for pc, row in reference.items():
        profile = db.profile(pc)
        assert profile.samples == row["samples"]
        assert profile.taken_count == row["taken"]
        for flag in AGGREGATED_EVENTS:
            assert profile.event_count(flag) == row["events"].get(flag, 0)
        for name in LATENCY_FIELDS:
            aggregate = profile.latency(name)
            assert (aggregate.count, aggregate.total, aggregate.total_sq) \
                == row["latencies"].get(name, (0, 0, 0))


@settings(max_examples=40, deadline=None)
@given(records_a=st.lists(_records, max_size=80),
       records_b=st.lists(_records, max_size=80),
       interval=st.sampled_from([16, 100, 1024]))
def test_rollup_commutes_with_merge(records_a, records_b, interval):
    def bucketed(streams):
        db = ProfileDatabase(rollup_interval=interval)
        for record in sorted(streams, key=lambda r: r.fetch_cycle):
            db.add(record)
        return db

    split = bucketed(records_a)
    split.merge(bucketed(records_b))
    combined = bucketed(records_a + records_b)
    assert canonical_json(database_to_dict(split)) == \
        canonical_json(database_to_dict(combined))


@settings(max_examples=40, deadline=None)
@given(records=st.lists(_records, max_size=120),
       interval=st.sampled_from([16, 100]))
def test_rollup_preserves_totals_against_flat(records, interval):
    flat = ProfileDatabase()
    rolled = ProfileDatabase(rollup_interval=interval)
    for record in sorted(records, key=lambda r: r.fetch_cycle):
        flat.add(record)
        rolled.add(record)
    assert rolled.total_samples == flat.total_samples
    for pc in flat.pcs():
        assert rolled.profile(pc) == flat.profile(pc)
