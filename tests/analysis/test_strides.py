"""Tests for sampled-address stride profiling."""

import pytest

from repro.analysis.optimize import insert_prefetches
from repro.analysis.strides import estimate_strides, plan_prefetches_dynamic
from repro.cpu.functional import FunctionalProfiler
from repro.cpu.ooo.core import OutOfOrderCore
from repro.isa.interpreter import Interpreter
from repro.profileme.unit import ProfileMeConfig
from repro.workloads import stall_kernel


@pytest.fixture(scope="module")
def sampled_kernel():
    """The strided-miss kernel, sampled via the functional fast path."""
    program = stall_kernel("dcache_miss", iterations=600)
    profiler = FunctionalProfiler(
        program, profile=ProfileMeConfig(mean_interval=15, seed=2),
        keep_records=True)
    return program, profiler.run()


class TestEstimateStrides:
    def test_detects_linear_stream(self, sampled_kernel):
        program, run = sampled_kernel
        estimates = estimate_strides(run.records, program=program)
        assert estimates
        top = estimates[0]
        assert program.fetch(top.pc).is_load
        # The kernel strides 64 bytes per 5-instruction iteration.
        assert abs(top.bytes_per_instruction - 64 / 5) < 1.5
        assert top.confidence > 0.8
        assert top.miss_fraction > 0.8

    def test_per_iteration_stride_via_loop_size(self, sampled_kernel):
        program, run = sampled_kernel
        estimates = estimate_strides(run.records, program=program)
        top = estimates[0]
        assert top.stride is not None
        assert 48 <= top.stride <= 80  # true stride 64

    def test_requires_min_samples(self, sampled_kernel):
        program, run = sampled_kernel
        few = estimate_strides(run.records[:3], program=program,
                               min_samples=4)
        assert few == []

    def test_random_stream_low_confidence(self):
        from repro.workloads import classic_kernel

        program, _ = classic_kernel("histogram", items=600, buckets=64)
        profiler = FunctionalProfiler(
            program, profile=ProfileMeConfig(mean_interval=9, seed=3),
            keep_records=True)
        run = profiler.run()
        estimates = estimate_strides(run.records, program=program)
        # The LCG-driven scatter accesses (the heavily sampled ones, in
        # the first loop) must come out low-confidence; the final
        # bucket-count loop is a genuine sequential walk and may not.
        scatter = [e for e in estimates if e.samples >= 20]
        assert scatter
        assert all(e.confidence < 0.6 for e in scatter)


class TestDynamicPrefetchPlanning:
    def test_plans_and_speedup(self, sampled_kernel):
        program, run = sampled_kernel
        plans = plan_prefetches_dynamic(program, run.records,
                                        lookahead_bytes=512)
        assert len(plans) == 1
        improved = insert_prefetches(program, plans)

        ref = Interpreter(program)
        ref.run_to_halt()
        got = Interpreter(improved)
        got.run_to_halt()
        assert got.state.regs.snapshot() == ref.state.regs.snapshot()

        before = OutOfOrderCore(program)
        before_cycles = before.run()
        after = OutOfOrderCore(improved)
        after_cycles = after.run()
        assert after_cycles < 0.8 * before_cycles

    def test_no_plans_for_random_access(self):
        from repro.workloads import classic_kernel

        program, _ = classic_kernel("histogram", items=400, buckets=64)
        profiler = FunctionalProfiler(
            program, profile=ProfileMeConfig(mean_interval=9, seed=3),
            keep_records=True)
        run = profiler.run()
        assert plan_prefetches_dynamic(program, run.records) == []
