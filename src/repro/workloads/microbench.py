"""Microbenchmarks tied to specific paper figures.

* :func:`fig2_loop` — the section 2.2 experiment: a loop containing a
  single (cache-hitting) memory read followed by hundreds of nops, used
  to show where event-counter interrupts attribute D-cache references.
* :func:`fig7_three_loops` — three loops with deliberately different
  useful-concurrency levels, used to show that instruction latency and
  wasted issue slots rank bottlenecks differently.
* :func:`stall kernels <stall_kernel>` — one kernel per Table 1 latency
  register, each provoking a specific stall class.
"""

from repro.errors import ProgramError
from repro.isa.builder import ProgramBuilder


def fig2_loop(iterations=400, nop_count=200):
    """Loop of one load + *nop_count* nops (the Figure 2 microbenchmark).

    The load hits in the D-cache after the first iteration, so the
    D-cache-reference event fires at a precisely known instruction; the
    question Figure 2 asks is which PC the counter interrupt reports.
    Returns (program, load_pc).
    """
    b = ProgramBuilder(name="fig2-loop")
    slot = b.alloc("slot", 1, init=[42])
    b.begin_function("main")
    b.ldi(1, iterations)
    b.li_addr(2, "slot")
    b.label("loop")
    load_pc = b.here
    b.ld(3, 2, 0)  # the single memory read
    b.nop(nop_count)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main"), load_pc


def fig7_three_loops(iterations=300, footprint_words=4096,
                     parallel_factor=4, memory_factor=10):
    """Three consecutive loops with different useful concurrency.

    Figure 7 plots *total* latency accumulated per static instruction, so
    the loops run different iteration counts (the paper's loops likewise
    execute different amounts): the memory loop runs ``memory_factor``
    times as many iterations as the serial one, letting its instructions
    accumulate the largest total latency while wasting the fewest slots
    per cycle — the rank inversion at the heart of the figure.

    * loop A — a serial multiply chain: every instruction depends on the
      previous one, so latencies are long *and* issue slots go to waste;
    * loop B — eight independent add chains: instructions are individually
      fast and the machine stays full (little waste);
    * loop C — line-strided loads over a footprint larger than the L1
      but cached beyond it, with independent FP filler chains: the load
      consumers have by far the longest in-progress latencies, yet the
      filler keeps the issue slots busy, so latency *overstates* the
      waste (the paper's rightmost-triangle observation).

    Returns (program, {"serial": (start_pc, end_pc), "parallel": ...,
    "memory": ...}) so analyses can attribute instructions to loops.
    """
    b = ProgramBuilder(name="fig7-three-loops")
    b.alloc("arr", footprint_words)
    regions = {}
    b.begin_function("main")

    # Loop A: serial dependency chain through the multiplier.
    b.ldi(1, iterations)
    b.ldi(2, 3)
    start = b.here
    b.label("serial")
    for _ in range(4):
        b.mul(2, 2, 2)
        b.lda(2, 2, 1)
    b.lda(1, 1, -1)
    b.bne(1, "serial")
    regions["serial"] = (start, b.here)

    # Loop B: eight independent chains (high useful concurrency).
    b.ldi(1, iterations * parallel_factor)
    for reg in range(4, 12):
        b.ldi(reg, reg)
    start = b.here
    b.label("parallel")
    for reg in range(4, 12):
        b.lda(reg, reg, 1)
    for reg in range(4, 12):
        b.xor(reg, reg, 1 + (reg % 2))
    b.lda(1, 1, -1)
    b.bne(1, "parallel")
    regions["parallel"] = (start, b.here)

    # Loop C: line-strided loads wrapping over the footprint (L1 misses
    # once the footprint exceeds the L1) with independent FP chains that
    # keep issuing useful work while the fills are outstanding.
    b.ldi(1, iterations * memory_factor)
    b.li_addr(2, "arr")
    b.ldi(3, 0)
    b.ldi(14, 0)  # line index
    b.ldi(15, footprint_words * 8 - 1)  # byte-offset wrap mask
    for reg in range(8, 14):
        b.ldi(reg, reg)
    start = b.here
    b.label("memory")
    b.sll(4, 14, 6)  # one 64-byte line per iteration
    b.and_(4, 4, 15)
    b.add(4, 4, 2)
    b.ld(5, 4, 0)
    b.add(3, 3, 5)  # the consumer: waits out the fill
    for reg in range(8, 14):
        b.fadd(reg, reg, reg)  # independent useful work
    b.lda(14, 14, 1)
    b.lda(1, 1, -1)
    b.bne(1, "memory")
    regions["memory"] = (start, b.here)

    b.halt()
    b.end_function()
    return b.build(entry="main"), regions


# ----------------------------------------------------------------------
# Table 1 stall kernels.

_KERNELS = {}


def stall_kernel(name, iterations=200):
    """Build the named Table 1 stall kernel.

    Names: ``map_stall`` (physical-register pressure -> Fetch->Map),
    ``dep_chain`` (data dependences -> Map->Data-ready), ``fu_contention``
    (one multiplier, many multiplies -> Data-ready->Issue), ``dcache_miss``
    (strided misses -> Load-issue->Completion), ``retire_block`` (a slow
    op ahead of fast ones -> Retire-ready->Retire).
    """
    try:
        factory = _KERNELS[name]
    except KeyError:
        raise ProgramError("unknown stall kernel %r (have %s)"
                           % (name, sorted(_KERNELS))) from None
    return factory(iterations)


def _kernel(name):
    def register(factory):
        _KERNELS[name] = factory
        return factory
    return register


def kernel_names():
    return sorted(_KERNELS)


@_kernel("map_stall")
def _map_stall(iterations):
    """More independent in-flight destinations than rename registers."""
    b = ProgramBuilder(name="kernel-map-stall")
    b.begin_function("main")
    b.ldi(1, iterations)
    b.ldi(2, 1)
    b.label("loop")
    # A long-latency chain parks instructions in the window while the
    # following independent ops each consume a physical register.
    b.mul(3, 2, 2)
    b.mul(3, 3, 3)
    b.mul(3, 3, 3)
    for reg in range(4, 28):
        b.lda(reg, 2, reg)
        b.lda(reg, 2, reg + 1)
        b.lda(reg, 2, reg + 2)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main")


@_kernel("dep_chain")
def _dep_chain(iterations):
    """Serial adds: every op waits on its predecessor (Map->Data-ready)."""
    b = ProgramBuilder(name="kernel-dep-chain")
    b.begin_function("main")
    b.ldi(1, iterations)
    b.ldi(2, 7)
    b.label("loop")
    for _ in range(16):
        b.mul(2, 2, 2)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main")


@_kernel("fu_contention")
def _fu_contention(iterations):
    """Independent multiplies fighting over the single IMUL unit.

    Fourteen chains against one multiplier: the issue rate (1/cycle)
    cannot keep up with fourteen data-ready multiplies per seven-cycle
    latency window, so Data-ready->Issue grows with queue pressure.
    """
    b = ProgramBuilder(name="kernel-fu-contention")
    b.begin_function("main")
    b.ldi(1, iterations)
    for reg in range(2, 16):
        b.ldi(reg, reg)
    b.label("loop")
    for reg in range(2, 16):
        b.mul(reg, reg, reg)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main")


@_kernel("dcache_miss")
def _dcache_miss(iterations):
    """Line-strided loads: every access misses (Load-issue->Completion)."""
    b = ProgramBuilder(name="kernel-dcache-miss")
    b.alloc("arr", 65536)
    b.begin_function("main")
    b.ldi(1, iterations)
    b.li_addr(2, "arr")
    b.ldi(3, 0)
    b.label("loop")
    b.ld(4, 2, 0)
    b.add(3, 3, 4)
    b.lda(2, 2, 64)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main")


@_kernel("retire_block")
def _retire_block(iterations):
    """Fast independent ops stuck behind a slow one (Retire-ready->Retire)."""
    b = ProgramBuilder(name="kernel-retire-block")
    b.alloc("arr", 65536)
    b.begin_function("main")
    b.ldi(1, iterations)
    b.li_addr(2, "arr")
    b.label("loop")
    b.ld(3, 2, 0)  # slow: misses
    b.mul(3, 3, 3)  # depends on the load: completes late
    for reg in range(4, 16):
        b.lda(reg, 1, reg)  # fast, independent; wait to retire behind r3
    b.lda(2, 2, 64)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    return b.build(entry="main")
