"""Workloads: figure microbenchmarks and the synthetic SPEC-like suite."""

from repro.workloads.kernels import classic_kernel, classic_kernel_names
from repro.workloads.microbench import (fig2_loop, fig7_three_loops,
                                        kernel_names, stall_kernel)
from repro.workloads.suite import (SUITE_NAMES, suite_program,
                                   suite_programs, suite_spec)
from repro.workloads.synthetic import (PhaseSpec, SyntheticSpec,
                                       build_synthetic)

__all__ = [
    "PhaseSpec",
    "SUITE_NAMES",
    "SyntheticSpec",
    "build_synthetic",
    "classic_kernel",
    "classic_kernel_names",
    "fig2_loop",
    "fig7_three_loops",
    "kernel_names",
    "stall_kernel",
    "suite_program",
    "suite_programs",
    "suite_spec",
]
