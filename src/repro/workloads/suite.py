"""The named synthetic benchmark suite.

Eight programs caricaturing the SPECint95 members the paper traces
(COMPRESS, GCC, GO, IJPEG, LI, PERL, VORTEX) plus POVRAY.  Each spec picks
the branch bias, footprint, call structure and op mix that member is known
for; none claims instruction-level fidelity to the original binaries (see
the substitution table in DESIGN.md).

``suite_programs(scale)`` builds all of them; *scale* multiplies the outer
iteration counts so benchmarks can trade run time for trace length.
"""

from repro.errors import ConfigError
from repro.workloads.synthetic import PhaseSpec, SyntheticSpec, build_synthetic


def _spec(name, seed, outer, phases, footprint, recursion=0, helpers=2):
    return SyntheticSpec(name=name, seed=seed, outer_iterations=outer,
                         phases=tuple(phases), footprint_words=footprint,
                         recursion_depth=recursion, helpers=helpers)


def _specs(scale):
    if scale < 1:
        raise ConfigError("scale must be >= 1")
    return {
        # compress: tight loops, highly biased branches, small footprint.
        "compress": _spec("compress", 101, 12 * scale, [
            PhaseSpec(iterations=60, branch_biases=(230, 25),
                      access="seq", accesses_per_iter=2, mul_ops=0,
                      alu_ops=6),
            PhaseSpec(iterations=30, branch_biases=(200,), access="random",
                      accesses_per_iter=1, alu_ops=4),
        ], footprint=2048),
        # gcc: many phases/functions, mixed branches, frequent calls.
        "gcc": _spec("gcc", 102, 6 * scale, [
            PhaseSpec(iterations=20, branch_biases=(150, 90, 60),
                      access="random", alu_ops=5, call_helper=True),
            PhaseSpec(iterations=16, branch_biases=(128, 170),
                      access="seq", alu_ops=6, call_helper=True,
                      use_switch=True),
            PhaseSpec(iterations=12, branch_biases=(40, 210),
                      access="stride", alu_ops=4, call_helper=True),
            PhaseSpec(iterations=18, branch_biases=(110,),
                      access="random", alu_ops=7),
        ], footprint=16384, helpers=4),
        # go: hard-to-predict branches, switch statements.
        "go": _spec("go", 103, 8 * scale, [
            PhaseSpec(iterations=24, branch_biases=(128, 140, 115),
                      access="random", alu_ops=6, use_switch=True),
            PhaseSpec(iterations=20, branch_biases=(128, 128),
                      access="seq", alu_ops=8),
        ], footprint=8192),
        # ijpeg: loop/multiply heavy, strided walks, predictable branches.
        "ijpeg": _spec("ijpeg", 104, 10 * scale, [
            PhaseSpec(iterations=40, branch_biases=(245,), access="stride",
                      accesses_per_iter=3, mul_ops=3, fp_ops=2, alu_ops=6),
            PhaseSpec(iterations=30, branch_biases=(240,), access="seq",
                      accesses_per_iter=2, mul_ops=2, alu_ops=5),
        ], footprint=32768),
        # li: pointer chasing and recursion, small data.
        "li": _spec("li", 105, 10 * scale, [
            PhaseSpec(iterations=30, branch_biases=(160, 100),
                      access="chase", accesses_per_iter=4, mul_ops=0,
                      alu_ops=3, call_helper=True),
            PhaseSpec(iterations=16, branch_biases=(190,), access="random",
                      alu_ops=4),
        ], footprint=2048, recursion=12),
        # perl: switch-heavy dispatch, calls, hash-like random access.
        "perl": _spec("perl", 106, 8 * scale, [
            PhaseSpec(iterations=22, branch_biases=(150, 120),
                      access="random", accesses_per_iter=2, alu_ops=5,
                      use_switch=True, call_helper=True),
            PhaseSpec(iterations=18, branch_biases=(175,), access="chase",
                      accesses_per_iter=2, alu_ops=4, use_switch=True),
        ], footprint=8192, recursion=6, helpers=3),
        # vortex: big footprint, random access, many calls -> D-miss heavy.
        "vortex": _spec("vortex", 107, 6 * scale, [
            PhaseSpec(iterations=26, branch_biases=(200, 70),
                      access="random", accesses_per_iter=4, alu_ops=5,
                      call_helper=True),
            PhaseSpec(iterations=20, branch_biases=(185,), access="stride",
                      accesses_per_iter=3, alu_ops=4, call_helper=True),
        ], footprint=262144, helpers=3),
        # povray: FP-dominated long dependency chains.
        "povray": _spec("povray", 108, 10 * scale, [
            PhaseSpec(iterations=34, branch_biases=(235,), access="seq",
                      accesses_per_iter=2, mul_ops=2, fp_ops=6, alu_ops=4),
            PhaseSpec(iterations=24, branch_biases=(225,), access="stride",
                      mul_ops=1, fp_ops=4, alu_ops=3),
        ], footprint=16384),
    }


SUITE_NAMES = tuple(sorted(_specs(1)))


def suite_spec(name, scale=1):
    """The :class:`SyntheticSpec` for one suite member."""
    specs = _specs(scale)
    try:
        return specs[name]
    except KeyError:
        raise ConfigError("unknown benchmark %r (have %s)"
                          % (name, ", ".join(sorted(specs)))) from None


def suite_program(name, scale=1):
    """Build one suite member's program."""
    return build_synthetic(suite_spec(name, scale))


def suite_programs(scale=1, names=None):
    """Build several members; returns {name: Program}."""
    return {name: suite_program(name, scale)
            for name in (names or SUITE_NAMES)}
