"""Synthetic SPECint95-like workload generator.

The paper's statistical experiments (Figures 3 and 6, section 6) run over
SPECint95 traces.  Real Alpha binaries are unavailable, so this module
generates programs in the package ISA whose *instruction streams* have the
properties those experiments depend on:

* data-dependent conditional branches with controllable bias, driven by a
  64-bit LCG computed *inside the program* (so outcomes are genuinely
  data-dependent, not compile-time constants);
* loops, multi-function control flow, call/return (including bounded
  recursion), and jump-table switches (indirect JMP);
* memory access patterns — sequential, strided, pseudo-random, and
  pointer-chasing over a linked list — against a configurable footprint;
* mixes of short ALU, long multiply, and FP-class operations.

Each named benchmark in :mod:`repro.workloads.suite` is a
:class:`SyntheticSpec` tuned to caricature one SPECint95 member's
behaviour (branchiness, footprint, call intensity).  DESIGN.md records
this substitution.

Register conventions (within generated programs):
    r16 LCG state      r17 data base        r18 index mask (words)
    r27/r28 LCG const  r29 bias mask (255)  r30 stack pointer
    r20-r23 loop counters, r26/r25 return addresses, r1-r15 scratch.
"""

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.errors import ConfigError
from repro.isa.builder import ProgramBuilder
from repro.utils.rng import SamplingRng

LCG_MULTIPLIER = 6364136223846793005
LCG_INCREMENT = 1442695040888963407

ACCESS_PATTERNS = ("none", "seq", "stride", "random", "chase")


@dataclass(frozen=True)
class PhaseSpec:
    """One phase (inner loop) of a synthetic benchmark."""

    iterations: int = 40
    branch_biases: Tuple[int, ...] = (128,)  # taken prob out of 256
    access: str = "none"
    accesses_per_iter: int = 1
    mul_ops: int = 1
    fp_ops: int = 0
    alu_ops: int = 4
    body_nops: int = 0
    use_switch: bool = False
    call_helper: bool = False
    preamble_guards: int = 2  # guard branches before the loop (see below)

    def __post_init__(self):
        if self.access not in ACCESS_PATTERNS:
            raise ConfigError("unknown access pattern %r" % (self.access,))
        for bias in self.branch_biases:
            if not 0 <= bias <= 256:
                raise ConfigError("branch bias must be in [0, 256]")
        if self.iterations < 1:
            raise ConfigError("phase needs >= 1 iteration")


@dataclass(frozen=True)
class SyntheticSpec:
    """Complete description of one synthetic benchmark."""

    name: str
    seed: int = 1
    outer_iterations: int = 20
    phases: Tuple[PhaseSpec, ...] = (PhaseSpec(),)
    footprint_words: int = 4096  # power of two
    recursion_depth: int = 0  # > 0 adds a recursive call per outer iter
    helpers: int = 2

    def __post_init__(self):
        if self.footprint_words & (self.footprint_words - 1):
            raise ConfigError("footprint_words must be a power of two")
        if self.outer_iterations < 1:
            raise ConfigError("need >= 1 outer iteration")
        if not self.phases:
            raise ConfigError("need >= 1 phase")


class _Generator:
    """Builds one program from a spec."""

    def __init__(self, spec):
        self.spec = spec
        self.rng = SamplingRng(spec.seed).fork("synthetic:" + spec.name)
        self.b = ProgramBuilder(name=spec.name)
        self._shift_cursor = 3
        self._unique = 0

    # -- small emission helpers ---------------------------------------

    def _label(self, stem):
        self._unique += 1
        return "%s_%d" % (stem, self._unique)

    def _lcg_step(self):
        b = self.b
        b.mul(16, 16, 27)
        b.add(16, 16, 28)

    def _next_shift(self):
        # Rotate through shift amounts so branches draw decorrelated bits.
        shift = self._shift_cursor
        self._shift_cursor = 3 + (self._shift_cursor + 7) % 45
        return shift

    def _biased_branch(self, bias):
        """Emit a data-dependent branch taken with probability bias/256."""
        b = self.b
        taken = self._label("taken")
        join = self._label("join")
        b.srl(2, 16, self._next_shift())
        b.and_(2, 2, 29)
        b.ldi(3, bias)
        b.cmplt(4, 2, 3)
        b.bne(4, taken)
        # Not-taken block.
        b.add(5, 5, 2)
        b.xor(6, 6, 2)
        b.br(join)
        b.label(taken)
        b.sub(5, 5, 2)
        b.add(6, 6, 3)
        b.label(join)

    def _address_from_index(self, index_reg):
        """r2 = base + (index & mask) * 8."""
        b = self.b
        b.and_(2, index_reg, 18)
        b.sll(2, 2, 3)
        b.add(2, 2, 17)

    def _memory_access(self, pattern, counter_reg, ordinal):
        b = self.b
        if pattern == "none":
            return
        if pattern == "seq":
            b.add(7, counter_reg, counter_reg)  # 2*i: dense-ish walk
            b.lda(7, 7, ordinal)
            self._address_from_index(7)
            b.ld(8, 2, 0)
            b.add(5, 5, 8)
        elif pattern == "stride":
            b.sll(7, counter_reg, 3)  # stride of 8 words = one line
            b.lda(7, 7, ordinal * 16)
            self._address_from_index(7)
            b.ld(8, 2, 0)
            b.add(5, 5, 8)
        elif pattern == "random":
            b.srl(7, 16, self._next_shift())
            self._address_from_index(7)
            b.ld(8, 2, 0)
            b.add(5, 5, 8)
            # Occasionally store back (read-modify-write mix).
            if ordinal % 2 == 1:
                b.st(5, 2, 0)
        elif pattern == "chase":
            b.ld(9, 9, 0)  # r9 = next pointer (serial chain of loads)
        else:  # pragma: no cover - guarded by PhaseSpec validation
            raise ConfigError("unknown access pattern %r" % (pattern,))

    def _switch(self, cases=4):
        """Emit a jump-table switch over low LCG bits."""
        b = self.b
        table = self._label("table")
        join = self._label("swjoin")
        case_labels = [self._label("case") for _ in range(cases)]
        b.jump_table(table, case_labels)
        b.srl(2, 16, self._next_shift())
        b.ldi(3, cases - 1)
        b.and_(2, 2, 3)
        b.sll(2, 2, 3)
        b.ldi(3, b.address_of(table))
        b.add(2, 2, 3)
        b.ld(3, 2, 0)
        b.jmp(3)
        for index, label in enumerate(case_labels):
            b.label(label)
            b.lda(5, 5, index + 1)
            b.xor(6, 6, 5)
            if index % 2 == 0:
                b.add(6, 6, 2)
            b.br(join)
        b.label(join)

    def _compute_ops(self, phase):
        b = self.b
        for _ in range(phase.mul_ops):
            b.mul(10, 16, 27)
            b.add(5, 5, 10)
        for index in range(phase.fp_ops):
            if index % 3 == 2:
                b.fmul(11, 5, 6)
            else:
                b.fadd(11, 5, 6)
            b.xor(6, 6, 11)
        for index in range(phase.alu_ops):
            if index % 3 == 0:
                b.add(12, 5, 6)
            elif index % 3 == 1:
                b.xor(13, 12, 5)
            else:
                b.or_(14, 13, 12)
        if phase.body_nops:
            b.nop(phase.body_nops)

    # -- functions ------------------------------------------------------

    def _emit_helper(self, index):
        b = self.b
        name = "helper_%d" % index
        b.begin_function(name)
        b.add(5, 5, 6)
        b.mul(10, 5, 27)
        b.xor(6, 6, 10)
        if index % 2 == 0:
            b.srl(7, 16, self._next_shift())
            self._address_from_index(7)
            b.ld(8, 2, 0)
            b.add(5, 5, 8)
        b.ret(25)
        b.end_function()
        return name

    def _emit_recursion(self):
        b = self.b
        b.begin_function("recurse")
        b.bne(1, "recurse_go")
        b.ret(26)
        b.label("recurse_go")
        b.st(26, 30, 0)
        b.st(1, 30, 8)
        b.lda(30, 30, 16)
        b.lda(1, 1, -1)
        b.add(5, 5, 1)
        b.jsr("recurse", ra=26)
        b.lda(30, 30, -16)
        b.ld(1, 30, 8)
        b.ld(26, 30, 0)
        b.ret(26)
        b.end_function()

    def _emit_phase(self, index, phase, helper_names):
        b = self.b
        name = "phase_%d" % index
        save = "save_ra_%d" % index
        b.alloc(save, 1)
        b.begin_function(name)
        b.ldi(3, b.address_of(save))
        b.st(26, 3, 0)
        b.ldi(21, phase.iterations)
        # Preamble guard branches, like the zero-trip checks compilers
        # emit before loops (branch past the loop if the count is zero).
        # They matter for path profiling (Figure 6): a loop head reachable
        # from the function entry without crossing any conditional branch
        # admits a trivially-consistent "fell in from the entry" path on
        # every backward reconstruction, making unique reconstruction
        # impossible.  Real code fronts its loops with guards; each one
        # forces the fall-in path to consume a history bit (not-taken),
        # which the actual in-loop history contradicts half the time.
        exit_label = self._label("pexit")
        for _ in range(phase.preamble_guards):
            b.beq(21, exit_label)
            b.lda(6, 6, 1)
        loop = self._label("ploop")
        b.label(loop)
        self._lcg_step()
        for ordinal, bias in enumerate(phase.branch_biases):
            self._biased_branch(bias)
        for ordinal in range(phase.accesses_per_iter):
            self._memory_access(phase.access, 21, ordinal)
        self._compute_ops(phase)
        if phase.use_switch:
            self._switch()
        if phase.call_helper and helper_names:
            helper = helper_names[index % len(helper_names)]
            b.jsr(helper, ra=25)
        b.lda(21, 21, -1)
        b.bne(21, loop)
        b.label(exit_label)
        b.ldi(3, b.address_of(save))
        b.ld(26, 3, 0)
        b.ret(26)
        b.end_function()
        return name

    # -- whole program ---------------------------------------------------

    def build(self):
        spec = self.spec
        b = self.b

        footprint = b.alloc("footprint", spec.footprint_words,
                            init=[(i * 2654435761) % (1 << 32)
                                  for i in range(min(spec.footprint_words,
                                                     4096))])
        # Pointer-chase chain: a random cycle over the footprint's first
        # 1024 words so every chase load hops unpredictably.
        chase_nodes = min(1024, spec.footprint_words)
        order = list(range(chase_nodes))
        self.rng.shuffle(order)
        chain_init = [0] * chase_nodes
        for here, there in zip(order, order[1:] + order[:1]):
            chain_init[here] = 0  # placeholder; rewritten below
        chase = b.alloc("chase", chase_nodes)
        stack = b.alloc("stack", 256)
        b.alloc("chase_cursor", 1, init=[chase])

        # main --------------------------------------------------------
        b.begin_function("main")
        b.ldi(27, LCG_MULTIPLIER)
        b.ldi(28, LCG_INCREMENT)
        b.ldi(16, spec.seed * 2654435761 + 12345)
        b.ldi(29, 255)
        b.ldi(17, footprint)
        b.ldi(18, spec.footprint_words - 1)
        b.ldi(30, stack)
        b.ldi(5, 1)
        b.ldi(6, 2)
        b.ldi(9, chase)
        b.ldi(20, spec.outer_iterations)
        b.label("outer")
        for index in range(len(spec.phases)):
            b.jsr("phase_%d" % index, ra=26)
        if spec.recursion_depth > 0:
            b.ldi(1, spec.recursion_depth)
            b.jsr("recurse", ra=26)
        b.lda(20, 20, -1)
        b.bne(20, "outer")
        b.halt()
        b.end_function()

        # helpers / recursion / phases ---------------------------------
        helper_names = [self._emit_helper(i) for i in range(spec.helpers)]
        if spec.recursion_depth > 0:
            self._emit_recursion()
        for index, phase in enumerate(spec.phases):
            self._emit_phase(index, phase, helper_names)

        program = b.build(entry="main")
        # Fill in the chase chain now that addresses are fixed.
        for here, there in zip(order, order[1:] + order[:1]):
            program.initial_memory[chase + here * 8] = chase + there * 8
        return program


def build_synthetic(spec):
    """Generate the program described by *spec* (deterministic per seed)."""
    return _Generator(spec).build()
