"""Classic kernel workloads.

Small, well-understood kernels with known bottleneck signatures, used in
examples, tests, and as calibration points: if ProfileMe's analyses can't
diagnose *these*, something is broken.

* ``daxpy``          — streaming FP multiply-add over two arrays;
* ``pointer_chase``  — serial linked-list traversal (latency-bound);
* ``binary_search``  — branchy search with hard-to-predict directions;
* ``matrix_walk``    — row-major vs column-major traversal of a 2-D
                       array (the locality classic; column-major strides
                       by a full row and misses);
* ``reduction``      — tree-style sum with log depth;
* ``histogram``      — data-dependent scatter increments.

Every kernel validates against a Python-side expected result via the
reference interpreter (see tests), so they double as end-to-end checks
of the ISA and builder.
"""

from repro.errors import ProgramError
from repro.isa.builder import ProgramBuilder
from repro.utils.rng import SamplingRng

_KERNELS = {}


def _kernel(name):
    def register(factory):
        _KERNELS[name] = factory
        return factory
    return register


def classic_kernel(name, **kwargs):
    """Build the named classic kernel; see module docstring for names."""
    try:
        factory = _KERNELS[name]
    except KeyError:
        raise ProgramError("unknown kernel %r (have %s)"
                           % (name, ", ".join(sorted(_KERNELS)))) from None
    return factory(**kwargs)


def classic_kernel_names():
    return sorted(_KERNELS)


@_kernel("daxpy")
def daxpy(n=512, a=3):
    """y[i] += a * x[i]; returns (program, expected_checksum_in_r3)."""
    b = ProgramBuilder(name="daxpy")
    xs = [(i * 7 + 1) % 1000 for i in range(n)]
    ys = [(i * 13 + 5) % 1000 for i in range(n)]
    b.alloc("x", n, init=xs)
    b.alloc("y", n, init=ys)
    b.begin_function("main")
    b.ldi(1, n)
    b.li_addr(4, "x")
    b.li_addr(5, "y")
    b.ldi(6, a)
    b.ldi(3, 0)
    b.label("loop")
    b.ld(7, 4, 0)
    b.ld(8, 5, 0)
    b.fmul(9, 7, 6)
    b.fadd(8, 8, 9)
    b.st(8, 5, 0)
    b.add(3, 3, 8)
    b.lda(4, 4, 8)
    b.lda(5, 5, 8)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    expected = sum(y + a * x for x, y in zip(xs, ys))
    return b.build(entry="main"), expected


@_kernel("pointer_chase")
def pointer_chase(nodes=1024, hops=4096, seed=7):
    """Serial traversal of a shuffled singly-linked list.

    Returns (program, expected_final_node_address_in_r3).
    """
    rng = SamplingRng(seed).fork("chase")
    order = list(range(nodes))
    rng.shuffle(order)
    b = ProgramBuilder(name="pointer-chase")
    base = b.alloc("nodes", nodes)
    b.begin_function("main")
    b.ldi(1, hops)
    b.ldi(3, base + order[0] * 8)
    b.label("loop")
    b.ld(3, 3, 0)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    b.halt()
    b.end_function()
    program = b.build(entry="main")
    # Link the shuffled cycle.
    for here, there in zip(order, order[1:] + order[:1]):
        program.initial_memory[base + here * 8] = base + there * 8
    # Expected: the start (order[0]) advances `hops` positions around
    # the cycle order[0] -> order[1] -> ... -> order[0].
    expected = base + order[hops % nodes] * 8
    return program, expected


@_kernel("binary_search")
def binary_search(size=1024, searches=200, seed=3):
    """Repeated binary searches with pseudo-random keys.

    The sorted array holds 2*i at index i; keys are derived from an LCG,
    so branch directions are data-dependent.  Returns (program,
    expected_hit_count_in_r3).
    """
    if size & (size - 1):
        raise ProgramError("size must be a power of two")
    b = ProgramBuilder(name="binary-search")
    values = [2 * i for i in range(size)]
    b.alloc("arr", size, init=values)
    b.begin_function("main")
    b.ldi(20, searches)
    b.ldi(16, seed * 2654435761 + 99)
    b.ldi(27, 6364136223846793005)
    b.ldi(28, 1442695040888963407)
    b.ldi(3, 0)  # hits
    b.label("outer")
    # key = (lcg >> 20) & (2*size - 1)
    b.mul(16, 16, 27)
    b.add(16, 16, 28)
    b.srl(4, 16, 20)
    b.ldi(5, 2 * size - 1)
    b.and_(4, 4, 5)
    # lo = 0, hi = size - 1
    b.ldi(6, 0)
    b.ldi(7, size - 1)
    b.label("search")
    b.cmple(8, 6, 7)
    b.beq(8, "done")  # lo > hi: not found
    b.add(9, 6, 7)
    b.srl(9, 9, 1)  # mid
    b.sll(10, 9, 3)
    b.li_addr(11, "arr")
    b.add(10, 10, 11)
    b.ld(12, 10, 0)  # arr[mid]
    b.cmpeq(13, 12, 4)
    b.bne(13, "hit")
    b.cmplt(13, 12, 4)
    b.beq(13, "go_left")
    b.lda(6, 9, 1)  # lo = mid + 1
    b.br("search")
    b.label("go_left")
    b.lda(7, 9, -1)  # hi = mid - 1
    b.br("search")
    b.label("hit")
    b.lda(3, 3, 1)
    b.label("done")
    b.lda(20, 20, -1)
    b.bne(20, "outer")
    b.halt()
    b.end_function()

    # Python-side expected hit count.
    state = seed * 2654435761 + 99
    hits = 0
    mask = (1 << 64) - 1
    for _ in range(searches):
        state = (state * 6364136223846793005 + 1442695040888963407) & mask
        key = (state >> 20) & (2 * size - 1)
        if key % 2 == 0 and key // 2 < size:
            hits += 1
    return b.build(entry="main"), hits


@_kernel("matrix_walk")
def matrix_walk(rows=64, cols=64, column_major=False, warmup=True):
    """Sum a rows x cols matrix stored row-major or column-major.

    The *iteration space* (and hence all control flow) is identical in
    both variants; only the memory layout changes, so any timing
    difference is pure locality — the textbook stride disaster isolated
    from branch effects.  A linear warmup pass (on by default) brings
    the matrix into the L2 first, so the measured difference is
    steady-state cache behaviour rather than cold-miss cost.  Returns
    (program, expected_sum_in_r3).
    """
    b = ProgramBuilder(name="matrix-walk-%s"
                       % ("col" if column_major else "row"))
    values = [(r * 31 + c * 7) % 251 for r in range(rows)
              for c in range(cols)]
    base = b.alloc("matrix", rows * cols, init=values)
    b.begin_function("main")
    if warmup:
        b.ldi(1, rows * cols // 8)  # one touch per line
        b.ldi(4, base)
        b.label("warm")
        b.ld(9, 4, 0)
        b.lda(4, 4, 64)
        b.lda(1, 1, -1)
        b.bne(1, "warm")
    outer, inner = rows, cols
    # Row-major layout: element (r, c) at r*cols + c; column-major:
    # at c*rows + r.  The walk visits (r, c) in the same order either way.
    stride_inner = rows * 8 if column_major else 8
    stride_outer = 8 if column_major else cols * 8
    b.ldi(3, 0)
    b.ldi(1, outer)
    b.ldi(4, base)
    b.label("outer")
    b.ldi(2, inner)
    b.or_(5, 4, 31)  # r5 = r4 (row/col cursor)
    b.label("inner")
    b.ld(6, 5, 0)
    b.add(3, 3, 6)
    b.lda(5, 5, stride_inner)
    b.lda(2, 2, -1)
    b.bne(2, "inner")
    b.lda(4, 4, stride_outer)
    b.lda(1, 1, -1)
    b.bne(1, "outer")
    b.halt()
    b.end_function()
    return b.build(entry="main"), sum(values)


@_kernel("reduction")
def reduction(n=1024):
    """Pairwise tree reduction over an array (log-depth parallelism).

    Returns (program, expected_sum_in_r3).  Each pass halves the active
    length, adding element i and i + half into slot i.
    """
    if n & (n - 1):
        raise ProgramError("n must be a power of two")
    b = ProgramBuilder(name="reduction")
    values = [(i * 17 + 3) % 509 for i in range(n)]
    base = b.alloc("arr", n, init=values)
    b.begin_function("main")
    b.ldi(1, n // 2)  # half (elements)
    b.label("pass")
    b.ldi(2, 0)  # i
    b.label("inner")
    b.sll(4, 2, 3)
    b.ldi(5, base)
    b.add(4, 4, 5)  # &arr[i]
    b.sll(6, 1, 3)
    b.add(6, 4, 6)  # &arr[i + half]
    b.ld(7, 4, 0)
    b.ld(8, 6, 0)
    b.add(7, 7, 8)
    b.st(7, 4, 0)
    b.lda(2, 2, 1)
    b.sub(9, 2, 1)
    b.blt(9, "inner")  # while i < half
    b.srl(1, 1, 1)
    b.bne(1, "pass")
    b.ldi(5, base)
    b.ld(3, 5, 0)
    b.halt()
    b.end_function()
    return b.build(entry="main"), sum(values)


@_kernel("histogram")
def histogram(items=512, buckets=64, seed=11):
    """LCG-driven scatter increments (data-dependent store addresses).

    Returns (program, expected_nonempty_bucket_count_in_r3).
    """
    if buckets & (buckets - 1):
        raise ProgramError("buckets must be a power of two")
    b = ProgramBuilder(name="histogram")
    base = b.alloc("hist", buckets)
    b.begin_function("main")
    b.ldi(1, items)
    b.ldi(16, seed * 40503 + 1)
    b.ldi(27, 6364136223846793005)
    b.ldi(28, 1442695040888963407)
    b.label("loop")
    b.mul(16, 16, 27)
    b.add(16, 16, 28)
    b.srl(4, 16, 30)
    b.ldi(5, buckets - 1)
    b.and_(4, 4, 5)
    b.sll(4, 4, 3)
    b.ldi(5, base)
    b.add(4, 4, 5)
    b.ld(6, 4, 0)
    b.lda(6, 6, 1)
    b.st(6, 4, 0)
    b.lda(1, 1, -1)
    b.bne(1, "loop")
    # Count non-empty buckets.
    b.ldi(3, 0)
    b.ldi(1, buckets)
    b.ldi(4, base)
    b.label("count")
    b.ld(6, 4, 0)
    b.beq(6, "skip")
    b.lda(3, 3, 1)
    b.label("skip")
    b.lda(4, 4, 8)
    b.lda(1, 1, -1)
    b.bne(1, "count")
    b.halt()
    b.end_function()

    mask = (1 << 64) - 1
    state = seed * 40503 + 1
    counts = [0] * buckets
    for _ in range(items):
        state = (state * 6364136223846793005 + 1442695040888963407) & mask
        counts[(state >> 30) & (buckets - 1)] += 1
    expected = sum(1 for c in counts if c)
    return b.build(entry="main"), expected
