"""Asyncio ingestion server: the always-on half of continuous profiling.

DCPI's daemon accepts sample batches from every CPU, folds them into a
shared on-disk profile database, and serves the analysis tools.
:class:`ProfileServer` is that daemon for this reproduction:

* **Many producers.**  One asyncio TCP server; each connection is a
  producer (a ``repro push`` run, one sweep worker process, a spill
  replay) or a query client — the protocol is the same socket.

* **Bounded queues, explicit backpressure, loss accounting.**  Each
  connection gets a bounded :class:`asyncio.Queue` feeding a folder
  task.  TCP flow control is the smooth backpressure path (the server
  reads frames at folding pace); when a producer still outruns the
  folder, the batch is *dropped and counted* — never buffered without
  bound — mirroring the paper's sampling hardware, which sheds
  selections while the profile registers are busy and exposes the loss
  (``dropped_busy``) so software can calibrate.  Drop counters ride on
  every query response.

* **Shards.**  Ingest folds into ``shards`` databases (connections are
  assigned round-robin), so folding scales and a snapshot can merge
  shards exactly — :meth:`ProfileDatabase.merge` is associative and
  commutative over its counters, so the merged view is independent of
  arrival interleaving (address retention excepted, see docs).

* **Snapshots.**  A background task periodically merges the shards and
  persists the result through :func:`repro.analysis.persistence.
  save_database` (atomic temp-file + rename); a final snapshot is
  written on shutdown.  A crashed server therefore leaves a complete,
  loadable profile no older than one snapshot interval.

The server is single-threaded asyncio; for tests, benchmarks, and
in-process embedding, :class:`ServerThread` runs it on a background
event loop with a blocking start/stop interface.
"""

import asyncio
import dataclasses
import threading
from dataclasses import dataclass

from repro.analysis.database import AGGREGATED_EVENTS, ProfileDatabase
from repro.analysis.persistence import database_from_dict, save_database
from repro.errors import ProtocolError, ServiceError
from repro.events import Event
from repro.service.protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION,
                                    error_frame, ok_frame, read_frame,
                                    record_from_wire, write_frame)


@dataclass
class ServerStats:
    """Ingestion/loss accounting, reported on every query response."""

    connections: int = 0
    batches: int = 0  # accepted (enqueued) sample batches
    records: int = 0  # records folded into a shard
    db_merges: int = 0  # push_db documents merged
    probe_pushes: int = 0  # probe-registry reading sets accepted
    dropped_batches: int = 0  # batches shed at a full queue
    dropped_records: int = 0  # records inside those batches
    replay_dropped: int = 0  # batches producers discarded on spill replay
    queries: int = 0
    protocol_errors: int = 0
    snapshots: int = 0

    def loss(self):
        return {"dropped_batches": self.dropped_batches,
                "dropped_records": self.dropped_records}


class ProfileServer:
    """Continuous-profiling ingestion + query server."""

    def __init__(self, host="127.0.0.1", port=0, shards=1, queue_size=64,
                 keep_addresses=0, snapshot_path=None,
                 snapshot_interval=30.0, max_frame_bytes=MAX_FRAME_BYTES,
                 fold_delay=0.0):
        """*queue_size*: batches buffered per connection before drops
        begin.  *fold_delay*: artificial per-batch folding cost in
        seconds — the overload knob the backpressure tests and
        ``bench_service_ingest.py`` turn to make producers outrun the
        folder deterministically.
        """
        if shards < 1:
            raise ServiceError("shards must be >= 1, got %d" % shards)
        if queue_size < 1:
            raise ServiceError("queue_size must be >= 1, got %d" % queue_size)
        self.host = host
        self.port = port
        self.queue_size = queue_size
        self.keep_addresses = keep_addresses
        self.snapshot_path = snapshot_path
        self.snapshot_interval = snapshot_interval
        self.max_frame_bytes = max_frame_bytes
        self.fold_delay = fold_delay
        self.shards = [ProfileDatabase(keep_addresses=keep_addresses)
                       for _ in range(shards)]
        self.stats = ServerStats()
        self._next_shard = 0
        self._shard_lag = [0] * shards  # enqueued-but-unfolded payloads
        self._server = None
        self._snapshot_task = None
        self._probe_registry = None  # built lazily (probe_registry())

    # ------------------------------------------------------------------
    # Introspection.

    def probe_registry(self):
        """The server's own ``service.*`` probe subtree, built lazily.

        ``service.<stat>`` mirrors every :class:`ServerStats` counter;
        ``service.shard<i>.samples`` / ``service.shard<i>.lag`` expose
        per-shard fold progress and backlog.  Served by the ``probes``
        query, so `repro probes list --address` works against a live
        server.
        """
        if self._probe_registry is None:
            from repro.probes.registry import ProbeRegistry
            self._probe_registry = ProbeRegistry()
            self._register_probes(self._probe_registry)
        return self._probe_registry

    def _register_probes(self, registry):
        stats = self.stats
        for stats_field in dataclasses.fields(ServerStats):
            registry.register(
                "service.%s" % stats_field.name,
                lambda f=stats_field.name: getattr(stats, f),
                kind="counter", unit="events",
                description="ServerStats.%s" % stats_field.name)
        for index in range(len(self.shards)):
            registry.register(
                "service.shard%d.samples" % index,
                lambda i=index: self.shards[i].total_samples,
                kind="counter", unit="samples",
                description="samples folded into shard %d" % index)
            registry.register(
                "service.shard%d.lag" % index,
                lambda i=index: self._shard_lag[i],
                kind="gauge", unit="payloads",
                description="payloads enqueued for shard %d but not yet "
                            "folded" % index)

    # ------------------------------------------------------------------
    # Lifecycle.

    async def start(self):
        """Bind and start accepting; resolves the ephemeral port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.snapshot_path and self.snapshot_interval > 0:
            self._snapshot_task = asyncio.ensure_future(self._snapshot_loop())
        return self

    async def serve_forever(self):
        await self._server.serve_forever()

    async def stop(self):
        """Stop accepting, cancel the snapshot loop, write a final one."""
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            try:
                await self._snapshot_task
            except asyncio.CancelledError:
                pass
            self._snapshot_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.snapshot_path:
            self.write_snapshot()

    # ------------------------------------------------------------------
    # Aggregation views.

    def merged_database(self):
        """All shards folded into one database (the query/export view).

        Batches accepted but not yet folded are *not* visible; a client
        that needs read-your-writes sends ``sync`` first (the query CLI
        and :meth:`ProfileClient.drain` do).
        """
        merged = ProfileDatabase(keep_addresses=self.keep_addresses)
        for shard in self.shards:
            merged.merge(shard)
        return merged

    def write_snapshot(self):
        save_database(self.merged_database(), self.snapshot_path)
        self.stats.snapshots += 1

    async def _snapshot_loop(self):
        while True:
            await asyncio.sleep(self.snapshot_interval)
            self.write_snapshot()

    # ------------------------------------------------------------------
    # Per-connection ingest.

    async def _handle_connection(self, reader, writer):
        self.stats.connections += 1
        queue = asyncio.Queue(maxsize=self.queue_size)
        shard_index = self._next_shard % len(self.shards)
        shard = self.shards[shard_index]
        self._next_shard += 1
        folder = asyncio.ensure_future(
            self._fold(queue, shard, shard_index))
        try:
            if await self._handshake(reader, writer):
                await self._serve_frames(reader, writer, queue, shard_index)
            # Clean EOF/bye: fold whatever was accepted before parting.
            await queue.join()
        except (ProtocolError, ConnectionError) as exc:
            self.stats.protocol_errors += 1
            await self._try_send(writer, error_frame(str(exc)))
        finally:
            folder.cancel()
            try:
                await folder
            except asyncio.CancelledError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(self, reader, writer):
        frame = await read_frame(reader, self.max_frame_bytes)
        if frame is None:
            return False
        if frame.get("kind") != "hello":
            raise ProtocolError("expected hello, got %r" % (frame.get("kind"),))
        if frame.get("version") != PROTOCOL_VERSION:
            await self._try_send(writer, error_frame(
                "protocol version %r unsupported (server speaks %d)"
                % (frame.get("version"), PROTOCOL_VERSION)))
            return False
        await write_frame(writer, ok_frame(version=PROTOCOL_VERSION))
        return True

    async def _serve_frames(self, reader, writer, queue, shard_index):
        while True:
            frame = await read_frame(reader, self.max_frame_bytes)
            if frame is None:
                return
            kind = frame.get("kind")
            if kind == "push":
                await self._ingest_push(writer, queue, frame, shard_index)
            elif kind == "push_db":
                # Aggregates are precious (one document may stand for a
                # whole cached sweep run): block rather than shed.
                database = database_from_dict(frame.get("database"))
                await queue.put(("db", database))
                self._shard_lag[shard_index] += 1
                await write_frame(writer, ok_frame(**self.stats.loss()))
            elif kind == "probe_push":
                await self._ingest_probe_push(writer, queue, frame,
                                              shard_index)
            elif kind == "sync":
                await queue.join()
                await write_frame(writer, ok_frame(**self.stats.loss()))
            elif kind == "report":
                # Producer-side losses the server never saw happen
                # (spill-replay discards); folded into the shared stats
                # so `repro query stats` shows end-to-end loss.
                counters = frame.get("counters") or {}
                self.stats.replay_dropped += int(
                    counters.get("replay_dropped", 0))
            elif kind == "query":
                self.stats.queries += 1
                await write_frame(writer, self._query(
                    frame.get("command"), frame.get("params") or {}))
            elif kind == "bye":
                return
            else:
                raise ProtocolError("unknown frame kind %r" % (kind,))

    async def _ingest_push(self, writer, queue, frame, shard_index):
        # Decode before enqueueing so a malformed record is the sender's
        # error, not a silent folder crash.
        samples = [record_from_wire(item)
                   for item in frame.get("records") or []]
        dropped = False
        try:
            queue.put_nowait(("push", samples))
            self._shard_lag[shard_index] += 1
            self.stats.batches += 1
        except asyncio.QueueFull:
            dropped = True
            self.stats.dropped_batches += 1
            self.stats.dropped_records += len(samples)
        if frame.get("sync"):
            await write_frame(writer, ok_frame(dropped=dropped,
                                               **self.stats.loss()))

    async def _ingest_probe_push(self, writer, queue, frame, shard_index):
        """Shed-don't-block, exactly like sample pushes: a probe reading
        is one point on a trend line, cheaper to lose than to let an
        overloaded folder stall the producing simulation."""
        readings = frame.get("readings")
        if not isinstance(readings, dict):
            raise ProtocolError("probe_push needs a readings object")
        tick = int(frame.get("tick", 0))
        dropped = False
        try:
            queue.put_nowait(("probes", (tick, readings)))
            self._shard_lag[shard_index] += 1
            self.stats.probe_pushes += 1
        except asyncio.QueueFull:
            dropped = True
            self.stats.dropped_batches += 1
        if frame.get("sync"):
            await write_frame(writer, ok_frame(dropped=dropped,
                                               **self.stats.loss()))

    async def _fold(self, queue, shard, shard_index):
        while True:
            kind, payload = await queue.get()
            try:
                if self.fold_delay:
                    await asyncio.sleep(self.fold_delay)
                if kind == "push":
                    for sample in payload:
                        shard.add(sample)
                    self.stats.records += len(payload)
                elif kind == "probes":
                    tick, readings = payload
                    shard.add_probe_readings(readings, tick)
                else:
                    shard.merge(payload)
                    self.stats.db_merges += 1
            finally:
                self._shard_lag[shard_index] -= 1
                queue.task_done()

    async def _try_send(self, writer, frame):
        try:
            await write_frame(writer, frame)
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Queries (all answered from the merged shard view).

    def _query(self, command, params):
        try:
            if command == "stats":
                return self._query_stats()
            if command == "top":
                return self._query_top(params)
            if command == "latency":
                return self._query_latency(params)
            if command == "convergence":
                return self._query_convergence(params)
            if command == "export":
                return ok_frame(database=self.merged_database().to_dict(),
                                **self.stats.loss())
            if command == "probes":
                return self._query_probes(params)
        except (KeyError, TypeError, ValueError) as exc:
            return error_frame("bad query parameters: %s" % (exc,))
        return error_frame("unknown query command %r" % (command,))

    def _query_stats(self):
        return ok_frame(
            stats=dataclasses.asdict(self.stats),
            shards=[shard.total_samples for shard in self.shards],
            total_samples=sum(s.total_samples for s in self.shards),
            static_instructions=len(self.merged_database().per_pc),
            **self.stats.loss())

    def _query_probes(self, params):
        """The server's own registry snapshot plus streamed series.

        ``probes`` answers two questions at once: what the *server*
        looks like right now (``service.*`` snapshot), and what the
        producers have been streaming (per-probe ``ProbeSeries``
        aggregates merged across shards, same wire shape as the
        document form: [count, total, min, max, last, last_tick]).
        """
        import fnmatch

        pattern = params.get("pattern") or None
        registry = self.probe_registry()
        registry.invalidate()
        series = self.merged_database().probes
        if pattern and pattern != "*":
            series = {name: s for name, s in series.items()
                      if fnmatch.fnmatchcase(name, pattern)}
        return ok_frame(
            probes=registry.snapshot(pattern, refresh=True),
            series={name: [s.count, s.total, s.minimum, s.maximum,
                           s.last, s.last_tick]
                    for name, s in series.items()},
            **self.stats.loss())

    def _event_flag(self, name):
        try:
            flag = Event[name]
        except KeyError:
            raise ValueError("unknown event %r (one of %s)"
                             % (name, ", ".join(e.name
                                                for e in AGGREGATED_EVENTS)))
        return flag

    def _query_top(self, params):
        flag = self._event_flag(params.get("event", "RETIRED"))
        limit = int(params.get("limit", 10))
        merged = self.merged_database()
        return ok_frame(
            event=flag.name,
            top=[[pc, count] for pc, count in merged.top_by_event(flag, limit)],
            total_samples=merged.total_samples,
            **self.stats.loss())

    def _query_latency(self, params):
        pc = int(params["pc"])
        profile = self.merged_database().profile(pc)
        if profile is None:
            return ok_frame(pc=pc, found=False, **self.stats.loss())
        return ok_frame(
            pc=pc, found=True, samples=profile.samples,
            latencies={name: [agg.count, agg.total, agg.total_sq]
                       for name, agg in profile.latencies.items()},
            **self.stats.loss())

    def _query_convergence(self, params):
        """Per-hot-PC statistical maturity: the 1/sqrt(k) error envelope.

        The section 5.1 estimator's relative error for a PC with k
        matching samples is ~1/sqrt(k); a continuously-profiled fleet
        watches this shrink to decide when a profile is actionable.
        """
        from repro.analysis.estimators import relative_error_envelope

        flag = self._event_flag(params.get("event", "RETIRED"))
        limit = int(params.get("limit", 10))
        merged = self.merged_database()
        rows = []
        for pc, count in merged.top_by_event(flag, limit):
            rows.append({"pc": pc, "samples": count,
                         "envelope": (relative_error_envelope(count)
                                      if count else None)})
        return ok_frame(event=flag.name, convergence=rows,
                        total_samples=merged.total_samples,
                        **self.stats.loss())


# ----------------------------------------------------------------------
# Background-thread embedding (tests, benchmarks, in-process use).


class ServerThread:
    """Run a :class:`ProfileServer` on a background event loop.

    ``start()`` blocks until the port is bound (or raises the startup
    error); ``stop()`` shuts the loop down and joins the thread.  Usable
    as a context manager.
    """

    def __init__(self, **kwargs):
        self.server = ProfileServer(**kwargs)
        self._thread = None
        self._loop = None
        self._stop_event = None
        self._ready = threading.Event()
        self._error = None

    @property
    def address(self):
        return "%s:%d" % (self.server.host, self.server.port)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()

    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise ServiceError("profile server did not start in time")
        if self._error is not None:
            raise ServiceError("profile server failed to start: %s"
                               % (self._error,))
        return self.server.host, self.server.port

    def stop(self):
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def _run(self):
        try:
            asyncio.run(self._main())
        except Exception as exc:  # startup failures surface in start()
            self._error = exc
            self._ready.set()

    async def _main(self):
        self._loop = asyncio.get_event_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await self.server.stop()
