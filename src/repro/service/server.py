"""Asyncio ingestion server: the always-on half of continuous profiling.

DCPI's daemon accepts sample batches from every CPU, folds them into a
shared on-disk profile database, and serves the analysis tools.
:class:`ProfileServer` is that daemon for this reproduction:

* **Many producers.**  One asyncio TCP server; each connection is a
  producer (a ``repro push`` run, one sweep worker process, a spill
  replay) or a query client — the protocol is the same socket, in
  either wire version (v1 JSON or v2 binary frames; the version is
  negotiated per connection at hello, and the server decodes both frame
  encodings on any connection, so mixed spill replays just work).

* **Worker processes.**  The event loop only reads frames, routes, and
  accounts; the CPU-heavy decode+fold runs in one dedicated worker
  process per shard (:mod:`repro.service.workers`), fed over bounded
  queues.  A crashed worker is detected, restarted from its last
  checkpoint, and everything un-checkpointed is accounted as dropped —
  never double-counted.  ``workers=False`` folds inline on the event
  loop instead (same :class:`~repro.service.fold.ShardFolder`, same
  results) for single-core embedding.

* **Bounded queues, explicit backpressure, loss accounting.**  TCP flow
  control is the smooth backpressure path; when a producer still
  outruns the folder, the batch is *dropped and counted* — never
  buffered without bound — mirroring the paper's sampling hardware,
  which sheds selections while the profile registers are busy and
  exposes the loss (``dropped_busy``) so software can calibrate.  Drop
  counters ride on every query response.

* **Shards.**  Connections are assigned to shard workers round-robin;
  a query merges the shard databases exactly —
  :meth:`ProfileDatabase.merge` is associative and commutative over its
  counters, so the merged view is independent of arrival interleaving
  (address retention excepted, see docs).

* **Snapshots.**  A background task periodically collects the shards
  and persists the merge through :func:`repro.analysis.persistence.
  save_database` (atomic temp-file + rename); a final snapshot is
  written on shutdown.  A crashed server therefore leaves a complete,
  loadable profile no older than one snapshot interval.

For tests, benchmarks, and in-process embedding, :class:`ServerThread`
runs the server on a background event loop with a blocking start/stop
interface.
"""

import asyncio
import dataclasses
import threading
from dataclasses import dataclass

from repro.analysis.database import AGGREGATED_EVENTS, ProfileDatabase
from repro.analysis.persistence import database_from_dict, save_database
from repro.errors import ProtocolError, ServiceError
from repro.events import Event
from repro.service.protocol import (MAX_FRAME_BYTES, PROTOCOL_V2,
                                    SUPPORTED_VERSIONS, _sample_count,
                                    decode_probe_payload, error_frame,
                                    negotiate_version, ok_frame, read_frame,
                                    record_from_wire, write_frame)
from repro.service.workers import make_workers, worker_pid


@dataclass
class ServerStats:
    """Ingestion/loss accounting, reported on every query response.

    Parent-owned counters are live; worker-owned ones (``records``,
    ``dropped_*``, ``fold_errors``, ``worker_restarts``) are refreshed
    from the shard workers whenever a barrier or query touches them.
    """

    connections: int = 0
    batches: int = 0  # accepted (enqueued) sample batches
    records: int = 0  # records folded into a shard
    db_merges: int = 0  # push_db documents merged
    probe_pushes: int = 0  # probe-registry reading sets accepted
    dropped_batches: int = 0  # batches shed (full queue or worker crash)
    dropped_records: int = 0  # records inside those batches
    replay_dropped: int = 0  # batches producers discarded on spill replay
    queries: int = 0
    protocol_errors: int = 0
    fold_errors: int = 0  # accepted frames whose payload failed to fold
    worker_restarts: int = 0
    snapshots: int = 0
    evicted_samples: int = 0  # samples aged out by bucket retention

    def loss(self):
        return {"dropped_batches": self.dropped_batches,
                "dropped_records": self.dropped_records}


class ProfileServer:
    """Continuous-profiling ingestion + query server."""

    def __init__(self, host="127.0.0.1", port=0, shards=1, queue_size=64,
                 keep_addresses=0, snapshot_path=None,
                 snapshot_interval=30.0, max_frame_bytes=MAX_FRAME_BYTES,
                 fold_delay=0.0, workers=True, rollup_interval=0,
                 retain_buckets=0):
        """*queue_size*: batches buffered per shard before drops begin.
        *fold_delay*: artificial per-batch folding cost in seconds — the
        overload knob the backpressure tests and
        ``bench_service_ingest.py`` turn to make producers outrun the
        folder deterministically.  *workers*: fold in dedicated worker
        processes (the production shape); False folds inline on the
        event loop.  *rollup_interval*/*retain_buckets*: per-shard
        time-bucketed rollup and bounded retention (see
        :class:`~repro.analysis.database.ProfileDatabase`); evictions
        are accounted per shard and reported on every stats query.
        """
        if shards < 1:
            raise ServiceError("shards must be >= 1, got %d" % shards)
        if queue_size < 1:
            raise ServiceError("queue_size must be >= 1, got %d" % queue_size)
        if rollup_interval < 0:
            raise ServiceError("rollup_interval must be >= 0, got %d"
                               % rollup_interval)
        if retain_buckets < 0:
            raise ServiceError("retain_buckets must be >= 0, got %d"
                               % retain_buckets)
        if retain_buckets and not rollup_interval:
            raise ServiceError("retain_buckets requires --rollup-interval")
        self.host = host
        self.port = port
        self.shard_count = shards
        self.queue_size = queue_size
        self.keep_addresses = keep_addresses
        self.rollup_interval = rollup_interval
        self.retain_buckets = retain_buckets
        self.snapshot_path = snapshot_path
        self.snapshot_interval = snapshot_interval
        self.max_frame_bytes = max_frame_bytes
        self.fold_delay = fold_delay
        self.use_worker_processes = workers
        self.stats = ServerStats()
        self.workers = []  # created in start() (they need the loop)
        self._next_shard = 0
        self._server = None
        self._snapshot_task = None
        self._probe_registry = None  # built lazily (probe_registry())

    # ------------------------------------------------------------------
    # Introspection.

    def probe_registry(self):
        """The server's own ``service.*`` probe subtree, built lazily.

        ``service.<stat>`` mirrors every :class:`ServerStats` counter;
        ``service.shard<i>.samples`` / ``service.shard<i>.lag`` expose
        per-shard fold progress and backlog, and ``service.worker<i>.*``
        the per-worker delivery stats (lag, drops, restarts, folded
        records, fold errors).  Served by the ``probes`` query, so
        `repro probes list --address` works against a live server.
        """
        if self._probe_registry is None:
            from repro.probes.registry import ProbeRegistry
            self._probe_registry = ProbeRegistry()
            self._register_probes(self._probe_registry)
        return self._probe_registry

    def _register_probes(self, registry):
        for stats_field in dataclasses.fields(ServerStats):
            registry.register(
                "service.%s" % stats_field.name,
                lambda f=stats_field.name: self._stat_value(f),
                kind="counter", unit="events",
                description="ServerStats.%s" % stats_field.name)
        for index in range(self.shard_count):
            registry.register(
                "service.shard%d.samples" % index,
                lambda i=index: self._worker(i).total_samples,
                kind="counter", unit="samples",
                description="samples folded into shard %d" % index)
            registry.register(
                "service.shard%d.lag" % index,
                lambda i=index: self._worker(i).queue_depth(),
                kind="gauge", unit="payloads",
                description="payloads enqueued for shard %d but not yet "
                            "folded" % index)
            registry.register(
                "service.shard%d.buckets" % index,
                lambda i=index: self._worker(i).bucket_count,
                kind="gauge", unit="buckets",
                description="live rollup buckets held by shard %d" % index)
            registry.register(
                "service.shard%d.evicted_samples" % index,
                lambda i=index: self._worker(i).evicted_samples,
                kind="counter", unit="samples",
                description="samples aged out of shard %d by bucket "
                            "retention" % index)
            for name, reader, kind in (
                    ("lag", lambda w: w.queue_depth(), "gauge"),
                    ("records", lambda w: w.counters["records"], "counter"),
                    ("dropped_batches", lambda w: w.dropped_batches,
                     "counter"),
                    ("dropped_records", lambda w: w.dropped_records,
                     "counter"),
                    ("fold_errors", lambda w: w.fold_error_batches,
                     "counter"),
                    ("restarts", lambda w: w.restarts, "counter")):
                registry.register(
                    "service.worker%d.%s" % (index, name),
                    lambda i=index, r=reader: r(self._worker(i)),
                    kind=kind, unit="events",
                    description="shard worker %d %s" % (index, name))

    def _worker(self, index):
        if not self.workers:
            raise ServiceError("server not started")
        return self.workers[index]

    def worker_pids(self):
        """OS pids of the shard workers (None entries when inline)."""
        return [worker_pid(worker) for worker in self.workers]

    def _stat_value(self, name):
        if name in ("records", "dropped_batches", "dropped_records",
                    "fold_errors", "worker_restarts", "evicted_samples"):
            self._refresh_stats()
        return getattr(self.stats, name)

    def _refresh_stats(self):
        """Pull the worker-owned counters into the stats dataclass."""
        workers = self.workers
        self.stats.records = sum(w.counters["records"] for w in workers)
        self.stats.dropped_batches = sum(w.dropped_batches for w in workers)
        self.stats.dropped_records = sum(w.dropped_records for w in workers)
        self.stats.fold_errors = sum(w.fold_error_batches for w in workers)
        self.stats.worker_restarts = sum(w.restarts for w in workers)
        self.stats.evicted_samples = sum(w.evicted_samples for w in workers)

    def _loss(self):
        self._refresh_stats()
        return self.stats.loss()

    # ------------------------------------------------------------------
    # Lifecycle.

    async def start(self):
        """Bind, spawn the shard workers, start accepting."""
        loop = asyncio.get_event_loop()
        self.workers = make_workers(
            self.shard_count, workers=self.use_worker_processes,
            keep_addresses=self.keep_addresses, queue_size=self.queue_size,
            fold_delay=self.fold_delay, loop=loop,
            rollup_interval=self.rollup_interval,
            retain_buckets=self.retain_buckets)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.snapshot_path and self.snapshot_interval > 0:
            self._snapshot_task = asyncio.ensure_future(self._snapshot_loop())
        return self

    async def serve_forever(self):
        await self._server.serve_forever()

    async def stop(self):
        """Stop accepting, write a final snapshot, stop the workers."""
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            try:
                await self._snapshot_task
            except asyncio.CancelledError:
                pass
            self._snapshot_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.snapshot_path:
            await self.write_snapshot()
        for worker in self.workers:
            await worker.stop()

    # ------------------------------------------------------------------
    # Aggregation views.

    async def collect_database(self):
        """All shards folded into one database (the query/export view).

        A full barrier: every batch accepted before this call is folded
        and visible in the result.
        """
        databases = await asyncio.gather(
            *(worker.snap_retry() for worker in self.workers))
        self._refresh_stats()
        # The merged view aligns shard buckets on (level, start); it
        # never re-evicts (the shards already enforced retention).
        merged = ProfileDatabase(keep_addresses=self.keep_addresses,
                                 rollup_interval=self.rollup_interval)
        for database in databases:
            merged.merge(database)
        return merged, databases

    async def write_snapshot(self):
        merged, _ = await self.collect_database()
        save_database(merged, self.snapshot_path)
        self.stats.snapshots += 1

    async def _snapshot_loop(self):
        while True:
            await asyncio.sleep(self.snapshot_interval)
            await self.write_snapshot()

    # ------------------------------------------------------------------
    # Per-connection ingest.

    async def _handle_connection(self, reader, writer):
        self.stats.connections += 1
        worker = self.workers[self._next_shard % len(self.workers)]
        self._next_shard += 1
        try:
            if await self._handshake(reader, writer):
                await self._serve_frames(reader, writer, worker)
        except (ProtocolError, ConnectionError) as exc:
            self.stats.protocol_errors += 1
            await self._try_send(writer, error_frame(str(exc)))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(self, reader, writer):
        frame = await read_frame(reader, self.max_frame_bytes)
        if frame is None:
            return False
        if frame.get("kind") != "hello":
            raise ProtocolError("expected hello, got %r"
                                % (frame.get("kind"),))
        version = negotiate_version(frame.get("version"))
        if version is None:
            await self._try_send(writer, error_frame(
                "protocol version %r unsupported (server speaks %s)"
                % (frame.get("version"),
                   ", ".join(str(v) for v in SUPPORTED_VERSIONS))))
            return False
        await write_frame(writer, ok_frame(version=version))
        return True

    async def _serve_frames(self, reader, writer, worker):
        while True:
            frame = await read_frame(reader, self.max_frame_bytes)
            if frame is None:
                return
            kind = frame.get("kind")
            if kind == "push":
                await self._ingest_push(writer, worker, frame)
            elif kind == "push_db":
                await self._ingest_push_db(writer, worker, frame)
            elif kind == "probe_push":
                await self._ingest_probe_push(writer, worker, frame)
            elif kind == "sync":
                # Barrier: ack only after everything this connection's
                # shard accepted has folded (FIFO queue => superset of
                # this connection's own batches).
                await worker.snap_retry()
                await write_frame(writer, ok_frame(**self._loss()))
            elif kind == "report":
                # Producer-side losses the server never saw happen
                # (spill-replay discards); folded into the shared stats
                # so `repro query stats` shows end-to-end loss.
                counters = frame.get("counters") or {}
                self.stats.replay_dropped += int(
                    counters.get("replay_dropped", 0))
            elif kind == "query":
                self.stats.queries += 1
                await write_frame(writer, await self._query(
                    frame.get("command"), frame.get("params") or {}))
            elif kind == "bye":
                return
            else:
                raise ProtocolError("unknown frame kind %r" % (kind,))

    async def _ingest_push(self, writer, worker, frame):
        if frame.get("version") == PROTOCOL_V2:
            # Binary frame: CRC already verified, payload not yet
            # decoded — that happens in the worker.  The header's record
            # count is what a shed or crashed payload costs.
            records = int(frame.get("count", 0))
            command = ("payload", frame["payload"], records)
        else:
            # v1 JSON: decode before enqueueing so a malformed record is
            # the sender's error, not a folder crash.
            samples = [record_from_wire(item)
                       for item in frame.get("records") or []]
            records = _sample_count(samples)
            command = ("samples", samples, records)
        accepted = worker.offer(command, batches=1, records=records)
        if accepted:
            self.stats.batches += 1
        if frame.get("sync"):
            await write_frame(writer, ok_frame(dropped=not accepted,
                                               **self._loss()))

    async def _ingest_push_db(self, writer, worker, frame):
        # Aggregates are precious (one document may stand for a whole
        # cached sweep run): block rather than shed.
        document = frame.get("database")
        try:
            parsed = database_from_dict(document)
        except Exception as exc:
            raise ProtocolError("push_db document does not parse: %s"
                                % (exc,)) from exc
        await worker.put_blocking(("db", document), batches=1,
                                  records=parsed.total_samples)
        self.stats.db_merges += 1
        await write_frame(writer, ok_frame(**self._loss()))

    async def _ingest_probe_push(self, writer, worker, frame):
        """Shed-don't-block, exactly like sample pushes: a probe reading
        is one point on a trend line, cheaper to lose than to let an
        overloaded folder stall the producing simulation."""
        if frame.get("version") == PROTOCOL_V2:
            command = ("probe_payload", frame["payload"])
        else:
            readings = frame.get("readings")
            if not isinstance(readings, dict):
                raise ProtocolError("probe_push needs a readings object")
            command = ("probes", int(frame.get("tick", 0)), readings)
        accepted = worker.offer(command, batches=1, records=0)
        if accepted:
            self.stats.probe_pushes += 1
        if frame.get("sync"):
            await write_frame(writer, ok_frame(dropped=not accepted,
                                               **self._loss()))

    async def _try_send(self, writer, frame):
        try:
            await write_frame(writer, frame)
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Queries (all answered from the merged shard view, after a fold
    # barrier, so a query sees everything accepted before it).

    async def _query(self, command, params):
        try:
            if command == "stats":
                return await self._query_stats()
            if command == "top":
                return await self._query_top(params)
            if command == "latency":
                return await self._query_latency(params)
            if command == "convergence":
                return await self._query_convergence(params)
            if command == "epochs":
                return await self._query_epochs(params)
            if command == "export":
                merged, _ = await self.collect_database()
                return ok_frame(database=merged.to_dict(),
                                **self.stats.loss())
            if command == "probes":
                return await self._query_probes(params)
        except (KeyError, TypeError, ValueError) as exc:
            return error_frame("bad query parameters: %s" % (exc,))
        return error_frame("unknown query command %r" % (command,))

    async def _query_stats(self):
        merged, databases = await self.collect_database()
        return ok_frame(
            stats=dataclasses.asdict(self.stats),
            shards=[database.total_samples for database in databases],
            shard_evicted=[database.evicted_samples
                           for database in databases],
            total_samples=merged.total_samples,
            evicted_samples=merged.evicted_samples,
            static_instructions=len(merged.per_pc),
            **self.stats.loss())

    async def _query_epochs(self, params):
        """Rollup-bucket state of the merged view: one row per live
        bucket/epoch, oldest first, optionally clipped to a
        ``[since, until)`` tick range."""
        since = params.get("since")
        until = params.get("until")
        limit = params.get("limit")
        merged, databases = await self.collect_database()
        epochs = merged.epoch_summaries()
        if since is not None:
            since = int(since)
            epochs = [row for row in epochs
                      if row["start"] + row["span"] > since]
        if until is not None:
            until = int(until)
            epochs = [row for row in epochs if row["start"] < until]
        if limit is not None:
            limit = int(limit)
            if limit < 1:
                raise ValueError("limit must be >= 1, got %d" % limit)
            epochs = epochs[-limit:]  # the newest buckets matter most
        return ok_frame(
            epochs=epochs,
            rollup_interval=self.rollup_interval,
            retain_buckets=self.retain_buckets,
            total_samples=merged.total_samples,
            evicted_samples=merged.evicted_samples,
            shard_evicted=[database.evicted_samples
                           for database in databases],
            **self.stats.loss())

    async def _query_probes(self, params):
        """The server's own registry snapshot plus streamed series.

        ``probes`` answers two questions at once: what the *server*
        looks like right now (``service.*`` snapshot), and what the
        producers have been streaming (per-probe ``ProbeSeries``
        aggregates merged across shards, same wire shape as the
        document form: [count, total, min, max, last, last_tick]).
        """
        import fnmatch

        pattern = params.get("pattern") or None
        merged, _ = await self.collect_database()
        registry = self.probe_registry()
        registry.invalidate()
        series = merged.probes
        if pattern and pattern != "*":
            series = {name: s for name, s in series.items()
                      if fnmatch.fnmatchcase(name, pattern)}
        return ok_frame(
            probes=registry.snapshot(pattern, refresh=True),
            series={name: [s.count, s.total, s.minimum, s.maximum,
                           s.last, s.last_tick]
                    for name, s in series.items()},
            **self.stats.loss())

    def _event_flag(self, name):
        try:
            flag = Event[name]
        except KeyError:
            raise ValueError("unknown event %r (one of %s)"
                             % (name, ", ".join(e.name
                                                for e in AGGREGATED_EVENTS)))
        return flag

    async def _query_top(self, params):
        flag = self._event_flag(params.get("event", "RETIRED"))
        limit = int(params.get("limit", 10))
        merged, _ = await self.collect_database()
        return ok_frame(
            event=flag.name,
            top=[[pc, count]
                 for pc, count in merged.top_by_event(flag, limit)],
            total_samples=merged.total_samples,
            **self.stats.loss())

    async def _query_latency(self, params):
        pc = int(params["pc"])
        merged, _ = await self.collect_database()
        profile = merged.profile(pc)
        if profile is None:
            return ok_frame(pc=pc, found=False, **self.stats.loss())
        return ok_frame(
            pc=pc, found=True, samples=profile.samples,
            latencies={name: [agg.count, agg.total, agg.total_sq]
                       for name, agg in profile.latencies.items()},
            **self.stats.loss())

    async def _query_convergence(self, params):
        """Per-hot-PC statistical maturity: the 1/sqrt(k) error envelope.

        The section 5.1 estimator's relative error for a PC with k
        matching samples is ~1/sqrt(k); a continuously-profiled fleet
        watches this shrink to decide when a profile is actionable.
        """
        from repro.analysis.estimators import relative_error_envelope

        flag = self._event_flag(params.get("event", "RETIRED"))
        limit = int(params.get("limit", 10))
        merged, _ = await self.collect_database()
        rows = []
        for pc, count in merged.top_by_event(flag, limit):
            rows.append({"pc": pc, "samples": count,
                         "envelope": (relative_error_envelope(count)
                                      if count else None)})
        return ok_frame(event=flag.name, convergence=rows,
                        total_samples=merged.total_samples,
                        **self.stats.loss())


# ----------------------------------------------------------------------
# Background-thread embedding (tests, benchmarks, in-process use).


class ServerThread:
    """Run a :class:`ProfileServer` on a background event loop.

    ``start()`` blocks until the port is bound (or raises the startup
    error); ``stop()`` shuts the loop down and joins the thread.  Usable
    as a context manager.
    """

    def __init__(self, **kwargs):
        self.server = ProfileServer(**kwargs)
        self._thread = None
        self._loop = None
        self._stop_event = None
        self._ready = threading.Event()
        self._error = None

    @property
    def address(self):
        return "%s:%d" % (self.server.host, self.server.port)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()

    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise ServiceError("profile server did not start in time")
        if self._error is not None:
            raise ServiceError("profile server failed to start: %s"
                               % (self._error,))
        return self.server.host, self.server.port

    def stop(self):
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def _run(self):
        try:
            asyncio.run(self._main())
        except Exception as exc:  # startup failures surface in start()
            self._error = exc
            self._ready.set()

    async def _main(self):
        self._loop = asyncio.get_event_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await self.server.stop()
