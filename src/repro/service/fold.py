"""Shard folding: wire payloads -> :class:`ProfileDatabase` aggregates.

One :class:`ShardFolder` owns one shard's database.  It is the single
fold implementation behind both deployment shapes of the server — the
dedicated worker processes of :mod:`repro.service.workers` and the
inline (in-event-loop) fallback — so the two cannot drift.

**The fast path.**  A v2 push payload keeps each record's *signature*
(opcode, abort reason, events, context, history, addr, latencies — see
:mod:`repro.service.protocol`) as a contiguous byte span after the
delta-coded pc/timestamps.  The database aggregates per ``(pc, events,
latencies)``, and real sample streams repeat a small set of signatures
per pc (the same static instruction keeps taking the same cache misses
and latencies), so instead of decoding every record and walking all
event flags and latency registers per sample, the folder counts ``(pc,
signature-bytes)`` pairs in a dict and folds each distinct pair into
the database *once per flush*, multiplying by its count.  A signature
is fully decoded (and therefore validated) the first time it is seen;
after that a repeated sample costs three varint decodes, one slice, and
one dict increment.

**Atomicity.**  A payload folds entirely or not at all: counts are
staged in per-call scratch and merged only after the whole payload has
parsed, so a payload that is corrupt halfway through (valid CRC can
still carry a malformed record — e.g. a truncated varint or an unknown
opcode ordinal) raises one :class:`ProtocolError` and leaves the
database untouched.  The caller accounts the drop using the frame
header's record count, which is exactly what did not get folded.

**Exactness.**  The fold is plain integer arithmetic — ``samples += n``
and ``total_sq += n * v * v`` is the same integer as ``n`` repetitions
of ``add_record`` — so a flushed folder's database is field-for-field
identical to one built record-by-record, and exports stay byte-identical
(canonical JSON) across the fused, inline, and in-process paths.  When
the shard retains effective addresses (``keep_addresses > 0``) the fast
path is disabled entirely: address retention is capped per pc in arrival
order, which multiplication cannot reproduce.
"""

from repro.analysis.database import (LatencyAggregate, PcProfile,
                                     ProfileDatabase, decompose_events)
from repro.errors import ProtocolError
from repro.events import Event
from repro.profileme.registers import LATENCY_FIELDS
from repro.service.protocol import (_decode_sample_v2, _sv_decode,
                                    _uv_decode, decode_probe_payload,
                                    decode_push_payload)

# Distinct (pc, signature) pairs held between flushes.  Bounds memory
# under adversarial streams where every record has a fresh signature;
# ordinary streams flush far below this.
DEFAULT_MEMO_LIMIT = 65536

_TAG_RECORD = 0


def _decode_signature(signature):
    """Validate + decode one signature span to fold-ready form.

    Returns ``(event flags tuple, latency (name, value) tuple, taken)``.
    Raises :class:`ProtocolError` on any malformation — unknown
    ordinals, truncation, or trailing bytes.
    """
    if len(signature) < 3:
        raise ProtocolError("truncated record header")
    from repro.service.protocol import _ABORTS, _OPCODES

    if signature[0] > len(_OPCODES):
        raise ProtocolError("unknown opcode ordinal %d" % (signature[0],))
    if signature[1] >= len(_ABORTS):
        raise ProtocolError("unknown abort-reason ordinal %d"
                            % (signature[1],))
    presence = signature[2]
    events, offset = _uv_decode(signature, 3)
    _, offset = _uv_decode(signature, offset)  # context
    _, offset = _uv_decode(signature, offset)  # history
    if presence & 0x01:
        _, offset = _sv_decode(signature, offset)  # addr
    latencies = []
    for bit, name in enumerate(LATENCY_FIELDS):
        if presence & (1 << (bit + 1)):
            value, offset = _uv_decode(signature, offset)
            latencies.append((name, value))
    if offset != len(signature):
        raise ProtocolError("record length mismatch: %d bytes left over"
                            % (len(signature) - offset,))
    return (decompose_events(events), tuple(latencies),
            bool(events & Event.BRANCH_TAKEN))


class ShardFolder:
    """Folds wire traffic for one shard into its profile database."""

    def __init__(self, keep_addresses=0, memo_limit=DEFAULT_MEMO_LIMIT):
        self.database = ProfileDatabase(keep_addresses=keep_addresses)
        self.payloads_folded = 0  # fold calls that fully succeeded
        self._memo_limit = memo_limit
        self._counts = {}  # (pc, signature bytes) -> pending sample count
        self._signatures = {}  # signature bytes -> _decode_signature(...)

    # ------------------------------------------------------------------
    # Folding.

    def fold_payload(self, payload):
        """Fold one v2 push payload; returns the record count folded."""
        if self.database.keep_addresses:
            return self.fold_samples(decode_push_payload(payload))
        uv_decode, sv_decode = _uv_decode, _sv_decode
        signatures = self._signatures
        staged = {}
        fresh = {}
        extras = []
        count, offset = uv_decode(payload, 0)
        state = [0, 0]
        folded = 0
        end_of_data = len(payload)
        for _ in range(count):
            try:
                tag = payload[offset]
            except IndexError:
                raise ProtocolError("truncated batch (missing sample tag)") \
                    from None
            if tag == _TAG_RECORD:
                offset += 1
                length, offset = uv_decode(payload, offset)
                end = offset + length
                if end > end_of_data:
                    raise ProtocolError(
                        "truncated record (claims %d bytes past the frame "
                        "end)" % (end - end_of_data,))
                delta, offset = sv_decode(payload, offset)
                pc = state[0] = state[0] + delta
                delta, offset = sv_decode(payload, offset)
                state[1] += delta
                _, offset = sv_decode(payload, offset)  # done-cycle delta
                signature = payload[offset:end]
                key = (pc, signature)
                pending = staged.get(key)
                if pending is None:
                    # First sight (this payload): make sure the
                    # signature is decodable before it can be counted.
                    if signature not in signatures \
                            and signature not in fresh:
                        fresh[signature] = _decode_signature(signature)
                    staged[key] = 1
                else:
                    staged[key] = pending + 1
                offset = end
                folded += 1
            else:
                sample, offset = _decode_sample_v2(payload, offset, state)
                extras.append(sample)
        if offset != end_of_data:
            raise ProtocolError("push payload has %d trailing bytes"
                                % (end_of_data - offset,))
        # The whole payload parsed: commit.
        signatures.update(fresh)
        counts = self._counts
        for key, pending in staged.items():
            counts[key] = counts.get(key, 0) + pending
        database = self.database
        for sample in extras:
            before = database.total_samples
            database.add(sample)
            folded += database.total_samples - before
        if len(counts) > self._memo_limit:
            self.flush()
        self.payloads_folded += 1
        return folded

    def fold_samples(self, samples):
        """Fold already-decoded sample objects (the v1 path)."""
        database = self.database
        before = database.total_samples
        for sample in samples:
            database.add(sample)
        self.payloads_folded += 1
        return database.total_samples - before

    def fold_probe_payload(self, payload):
        """Fold one v2 probe_push payload."""
        readings, tick = decode_probe_payload(payload)
        self.database.add_probe_readings(readings, tick)
        self.payloads_folded += 1
        return len(readings)

    def fold_probe_readings(self, readings, tick):
        self.database.add_probe_readings(readings, tick)
        self.payloads_folded += 1
        return len(readings)

    def merge_document(self, document):
        """Merge a pushed ``repro-profile`` document into the shard."""
        other = ProfileDatabase.from_dict(document)
        self.flush()
        self.database.merge(other)
        self.payloads_folded += 1
        return other.total_samples

    def merge_database(self, other):
        self.flush()
        self.database.merge(other)

    # ------------------------------------------------------------------
    # Flushing.

    def flush(self):
        """Apply pending (pc, signature) counts to the database."""
        counts = self._counts
        if not counts:
            return
        database = self.database
        per_pc = database.per_pc
        signatures = self._signatures
        total = 0
        for (pc, signature), n in counts.items():
            flags, latencies, taken = signatures[signature]
            profile = per_pc.get(pc)
            if profile is None:
                profile = per_pc[pc] = PcProfile(pc=pc)
            profile.samples += n
            events = profile.events
            for flag in flags:
                events[flag] = events.get(flag, 0) + n
            if latencies:
                profile_latencies = profile.latencies
                for name, value in latencies:
                    aggregate = profile_latencies.get(name)
                    if aggregate is None:
                        aggregate = profile_latencies[name] \
                            = LatencyAggregate()
                    aggregate.count += n
                    aggregate.total += n * value
                    aggregate.total_sq += n * value * value
            if taken:
                profile.taken_count += n
            total += n
        database.total_samples += total
        counts.clear()
        if len(signatures) > self._memo_limit:
            signatures.clear()

    def snapshot_database(self):
        """Flush and return the shard database (live object, not a copy)."""
        self.flush()
        return self.database
