"""Shard folding: wire payloads -> :class:`ProfileDatabase` aggregates.

One :class:`ShardFolder` owns one shard's database.  It is the single
fold implementation behind both deployment shapes of the server — the
dedicated worker processes of :mod:`repro.service.workers` and the
inline (in-event-loop) fallback — so the two cannot drift.

**The fast path.**  A v2 push payload keeps each record's *signature*
(opcode, abort reason, events, context, history, addr, latencies — see
:mod:`repro.service.protocol`) as a contiguous byte span after the
delta-coded pc/timestamps.  The database aggregates per ``(pc, events,
latencies)``, and real sample streams repeat a small set of signatures
per pc (the same static instruction keeps taking the same cache misses
and latencies), so instead of decoding every record and walking all
event flags and latency registers per sample, the folder counts
``(rollup bucket, pc, signature-bytes)`` triples in a dict and folds
each distinct triple into the database's columns *once per flush*,
multiplying by its count.  A signature
is fully decoded (and therefore validated) the first time it is seen;
after that a repeated sample costs three varint decodes, one slice, and
one dict increment.

**Atomicity.**  A payload folds entirely or not at all: counts are
staged in per-call scratch and merged only after the whole payload has
parsed, so a payload that is corrupt halfway through (valid CRC can
still carry a malformed record — e.g. a truncated varint or an unknown
opcode ordinal) raises one :class:`ProtocolError` and leaves the
database untouched.  The caller accounts the drop using the frame
header's record count, which is exactly what did not get folded.

**Exactness.**  The fold is plain integer arithmetic — ``samples += n``
and ``total_sq += n * v * v`` is the same integer as ``n`` repetitions
of ``add_record`` — so a flushed folder's database is field-for-field
identical to one built record-by-record, and exports stay byte-identical
(canonical JSON) across the fused, inline, and in-process paths.  When
the shard retains effective addresses (``keep_addresses > 0``) the fast
path is disabled entirely: address retention is capped per pc in arrival
order, which multiplication cannot reproduce.
"""

from repro.analysis.database import ProfileDatabase
from repro.errors import ProtocolError
from repro.profileme.registers import LATENCY_FIELDS
from repro.service.protocol import (_decode_sample_v2, _sv_decode,
                                    _uv_decode, decode_probe_payload,
                                    decode_push_payload)

# Distinct (pc, signature) pairs held between flushes.  Bounds memory
# under adversarial streams where every record has a fresh signature;
# ordinary streams flush far below this.
DEFAULT_MEMO_LIMIT = 65536

_TAG_RECORD = 0


def _decode_signature(signature):
    """Validate + decode one signature span to fold-ready form.

    Returns ``(events bit-field, ((latency column, value), ...))`` —
    exactly the arguments of
    :meth:`~repro.analysis.database.ProfileDatabase.fold_signature`, so
    a flush resolves each memoized signature straight to the database's
    interned column-increment plan.  Raises :class:`ProtocolError` on
    any malformation — unknown ordinals, truncation, or trailing bytes.
    """
    if len(signature) < 3:
        raise ProtocolError("truncated record header")
    from repro.service.protocol import _ABORTS, _OPCODES

    if signature[0] > len(_OPCODES):
        raise ProtocolError("unknown opcode ordinal %d" % (signature[0],))
    if signature[1] >= len(_ABORTS):
        raise ProtocolError("unknown abort-reason ordinal %d"
                            % (signature[1],))
    presence = signature[2]
    events, offset = _uv_decode(signature, 3)
    _, offset = _uv_decode(signature, offset)  # context
    _, offset = _uv_decode(signature, offset)  # history
    if presence & 0x01:
        _, offset = _sv_decode(signature, offset)  # addr
    latencies = []
    for column in range(len(LATENCY_FIELDS)):
        if presence & (1 << (column + 1)):
            value, offset = _uv_decode(signature, offset)
            latencies.append((column, value))
    if offset != len(signature):
        raise ProtocolError("record length mismatch: %d bytes left over"
                            % (len(signature) - offset,))
    return events, tuple(latencies)


class ShardFolder:
    """Folds wire traffic for one shard into its profile database."""

    def __init__(self, keep_addresses=0, memo_limit=DEFAULT_MEMO_LIMIT,
                 rollup_interval=0, retain_buckets=0):
        self.database = ProfileDatabase(keep_addresses=keep_addresses,
                                        rollup_interval=rollup_interval,
                                        retain_buckets=retain_buckets)
        self.payloads_folded = 0  # fold calls that fully succeeded
        self._memo_limit = memo_limit
        # (bucket tick, pc, signature bytes) -> pending sample count;
        # the bucket tick is the record's rollup-bucket start (0 with
        # rollup disabled), so memoized repeats land in the right bucket.
        self._counts = {}
        self._signatures = {}  # signature bytes -> _decode_signature(...)

    # ------------------------------------------------------------------
    # Folding.

    def fold_payload(self, payload):
        """Fold one v2 push payload; returns the record count folded."""
        if self.database.keep_addresses:
            return self.fold_samples(decode_push_payload(payload))
        uv_decode, sv_decode = _uv_decode, _sv_decode
        signatures = self._signatures
        staged = {}
        fresh = {}
        extras = []
        count, offset = uv_decode(payload, 0)
        state = [0, 0]
        folded = 0
        end_of_data = len(payload)
        interval = self.database.rollup_interval
        for _ in range(count):
            try:
                tag = payload[offset]
            except IndexError:
                raise ProtocolError("truncated batch (missing sample tag)") \
                    from None
            if tag == _TAG_RECORD:
                offset += 1
                # The header varints are inlined for their single-byte
                # fast path (steady-state streams delta-code to one
                # byte); multi-byte values take the full decoder.  This
                # loop runs per record on the ingest hot path — the
                # call overhead of three decoder invocations per record
                # is the difference between being fold-bound and
                # decode-bound.
                try:
                    byte = payload[offset]
                    if byte < 0x80:
                        length = byte
                        offset += 1
                    else:
                        length, offset = uv_decode(payload, offset)
                    end = offset + length
                    if end > end_of_data:
                        raise ProtocolError(
                            "truncated record (claims %d bytes past the "
                            "frame end)" % (end - end_of_data,))
                    byte = payload[offset]
                    if byte < 0x80:
                        pc = state[0] = \
                            state[0] + ((byte >> 1) ^ -(byte & 1))
                        offset += 1
                    else:
                        delta, offset = sv_decode(payload, offset)
                        pc = state[0] = state[0] + delta
                    byte = payload[offset]
                    if byte < 0x80:
                        tick = state[1] = \
                            state[1] + ((byte >> 1) ^ -(byte & 1))
                        offset += 1
                    else:
                        delta, offset = sv_decode(payload, offset)
                        tick = state[1] = state[1] + delta
                    if payload[offset] < 0x80:  # done-cycle delta, unused
                        offset += 1
                    else:
                        _, offset = sv_decode(payload, offset)
                except IndexError:
                    raise ProtocolError("truncated varint (frame ends "
                                        "mid-value)") from None
                signature = payload[offset:end]
                if interval:
                    key = (tick - tick % interval, pc, signature)
                else:
                    key = (0, pc, signature)
                pending = staged.get(key)
                if pending is None:
                    # First sight (this payload): make sure the
                    # signature is decodable before it can be counted.
                    if signature not in signatures \
                            and signature not in fresh:
                        fresh[signature] = _decode_signature(signature)
                    staged[key] = 1
                else:
                    staged[key] = pending + 1
                offset = end
                folded += 1
            else:
                sample, offset = _decode_sample_v2(payload, offset, state)
                extras.append(sample)
        if offset != end_of_data:
            raise ProtocolError("push payload has %d trailing bytes"
                                % (end_of_data - offset,))
        # The whole payload parsed: commit.
        signatures.update(fresh)
        counts = self._counts
        for key, pending in staged.items():
            counts[key] = counts.get(key, 0) + pending
        database = self.database
        for sample in extras:
            before = database.total_samples
            database.add(sample)
            folded += database.total_samples - before
        if len(counts) > self._memo_limit:
            self.flush()
        self.payloads_folded += 1
        return folded

    def fold_samples(self, samples):
        """Fold already-decoded sample objects (the v1 path)."""
        database = self.database
        before = database.total_samples
        for sample in samples:
            database.add(sample)
        self.payloads_folded += 1
        return database.total_samples - before

    def fold_probe_payload(self, payload):
        """Fold one v2 probe_push payload."""
        readings, tick = decode_probe_payload(payload)
        self.database.add_probe_readings(readings, tick)
        self.payloads_folded += 1
        return len(readings)

    def fold_probe_readings(self, readings, tick):
        self.database.add_probe_readings(readings, tick)
        self.payloads_folded += 1
        return len(readings)

    def merge_document(self, document):
        """Merge a pushed ``repro-profile`` document into the shard."""
        other = ProfileDatabase.from_dict(document)
        self.flush()
        self.database.merge(other)
        self.payloads_folded += 1
        return other.total_samples

    def merge_database(self, other):
        self.flush()
        self.database.merge(other)

    # ------------------------------------------------------------------
    # Flushing.

    def flush(self):
        """Apply pending (bucket, pc, signature) counts to the database.

        Each distinct signature resolves once to an events bit-field and
        latency column plan; the fold then writes straight into the
        database's columns, multiplied by the pending count.
        """
        counts = self._counts
        if not counts:
            return
        fold_signature = self.database.fold_signature
        signatures = self._signatures
        for (tick, pc, signature), n in counts.items():
            events, latencies = signatures[signature]
            fold_signature(pc, n, events, latencies, tick=tick)
        counts.clear()
        if len(signatures) > self._memo_limit:
            signatures.clear()

    def snapshot_database(self):
        """Flush and return the shard database (live object, not a copy)."""
        self.flush()
        return self.database
