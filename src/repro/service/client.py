"""Client transport: ship ProfileMe samples to a profile server.

The producer side of the service.  :class:`ProfileClient` is a blocking
(sync) transport — profiling sinks run inside simulation processes and
sweep workers, where an event loop would be in the way — with the fault
tolerance a continuous profiler needs:

* **Retry with backoff.**  A failed send reconnects and retries with
  exponential backoff; after the retry budget the client opens a short
  *cooldown* window during which pushes skip straight to the spill path,
  so an unreachable server costs a long profiling run microseconds per
  batch, not ``retries * backoff`` each.

* **Local spill.**  With a *spill_path*, batches that cannot be
  delivered are appended to a local file as raw wire frames; the next
  successful connection replays them first (oldest first), so samples
  survive server restarts.  A partial trailing frame (the producer died
  mid-append) is discarded on replay — the spill loses at most one
  batch, exactly like an interrupted snapshot loses at most one
  interval — and every such discard is counted (``replay_dropped``)
  and reported to the server, which folds it into the stats that
  ``repro query stats`` shows.  Without a spill path, undeliverable
  batches are *dropped
  and counted* (``lost_batches``) — profiling must never take down the
  workload it profiles.

* **Read-your-writes.**  :meth:`drain` is a barrier: it returns only
  after every batch this connection delivered has been folded
  server-side, carrying the server's drop accounting back.

:class:`ServiceSink` adapts the client to the
:class:`~repro.profileme.driver.ProfileMeDriver` sink interface: it
batches records and ships them per *batch_size*, making ``repro sweep
--push`` stream live samples from every worker process into one server.
"""

import os
import socket
import time
from dataclasses import dataclass

from repro.errors import ProtocolError, ServiceError
from repro.service.protocol import (DEFAULT_WIRE_VERSION, MAX_FRAME_BYTES,
                                    PROTOCOL_VERSION, check_ok, encode_frame,
                                    encode_probe_frame, epoch_range_params,
                                    hello_frame, parse_address,
                                    plan_push_frames, push_db_frame,
                                    query_frame, recv_frame, report_frame,
                                    send_frame, split_frames, sync_frame)


@dataclass
class ClientStats:
    """Producer-side delivery accounting."""

    sent_batches: int = 0
    sent_records: int = 0
    retries: int = 0
    spilled_batches: int = 0
    replayed_batches: int = 0
    replay_dropped: int = 0  # spilled batches discarded during replay
    lost_batches: int = 0  # undeliverable and no spill file configured
    dropped_reports: int = 0  # replay-drop report frames that never went out
    close_errors: int = 0  # socket close() failures during disconnect


class ProfileClient:
    """Blocking transport speaking the profiling-service protocol."""

    def __init__(self, address, timeout=10.0, retries=3, backoff=0.05,
                 cooldown=1.0, spill_path=None, wire=DEFAULT_WIRE_VERSION,
                 max_frame_bytes=MAX_FRAME_BYTES):
        """*wire*: protocol version to request at the handshake (v2
        binary by default).  A server that refuses it downgrades this
        client to v1 JSON for the rest of its life — old servers keep
        working, new ones get the compact encoding.  *max_frame_bytes*:
        push batches are split client-side so no frame exceeds this.
        """
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.cooldown = cooldown
        self.spill_path = spill_path
        self.wire = wire  # sticky: downgraded to v1 on a version refusal
        self.max_frame_bytes = max_frame_bytes
        self.stats = ClientStats()
        self._sock = None
        self._down_until = 0.0

    # ------------------------------------------------------------------
    # Connection management.

    def _connect(self):
        for _ in range(2):  # second pass only after a v1 downgrade
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
            try:
                send_frame(sock, hello_frame(version=self.wire))
                check_ok(recv_frame(sock), "handshake")
            except ProtocolError as exc:
                sock.close()
                if self.wire != PROTOCOL_VERSION \
                        and "version" in str(exc).lower():
                    # The server refused our wire version; everyone
                    # speaks v1 JSON, so fall back and reconnect.
                    self.wire = PROTOCOL_VERSION
                    continue
                raise
            except Exception:
                sock.close()
                raise
            self._sock = sock
            self._down_until = 0.0
            self._replay_spill()
            return
        raise ProtocolError("handshake failed after version downgrade")

    def _settle_wire(self):
        """The wire version to encode with, after trying to negotiate.

        Encoding happens client-side before the send, so the version
        must be settled *first*: connect (and possibly downgrade) once
        here, rather than discovering mid-push that frames were encoded
        for a version the server refuses.  An unreachable server leaves
        the requested version in place — its frames spill locally and
        replay verbatim, which this server family accepts on any
        connection (the decoder dispatches per frame).
        """
        if self._sock is None and time.monotonic() >= self._down_until:
            try:
                self._connect()
            except (OSError, ProtocolError):
                self._disconnect()
        return self.wire

    def _ensure_connected(self):
        if self._sock is None:
            self._connect()
        return self._sock

    def _disconnect(self):
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                # Nothing in flight is lost (sends either completed or
                # already took the spill path), but a close that fails
                # leaks the descriptor until GC — count it so a client
                # stuck in a close-fail loop is visible in the stats.
                self.stats.close_errors += 1
            self._sock = None

    def close(self):
        self._disconnect()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # ------------------------------------------------------------------
    # Resilient push path.

    def push(self, samples):
        """Ship one batch of samples, fire-and-forget.

        The batch is encoded in the negotiated wire version and split
        into as many frames as the frame-size cap requires (almost
        always one).  Returns True if every frame went out on the
        socket, False if any was spilled (or lost with no spill file).
        """
        samples = list(samples)
        if not samples:
            return True
        delivered = True
        for frame, count in plan_push_frames(
                samples, version=self._settle_wire(),
                max_bytes=self.max_frame_bytes):
            delivered = self._send_resilient(frame, records=count) \
                and delivered
        return delivered

    def push_database(self, document):
        """Ship a whole ``repro-profile`` document for server-side merge."""
        return self._send_resilient(encode_frame(push_db_frame(document)),
                                    records=0, await_reply=True)

    def push_probes(self, readings, tick):
        """Ship one probe-registry reading set, fire-and-forget.

        Same resilience as :meth:`push` — a reading that cannot be
        delivered is spilled (or counted lost), never raises into the
        simulation streaming it.
        """
        if not readings:
            return True
        return self._send_resilient(
            encode_probe_frame(readings, tick, version=self._settle_wire()),
            records=0)

    def _send_resilient(self, frame_bytes, records=0, await_reply=False):
        if time.monotonic() >= self._down_until:
            for attempt in range(self.retries + 1):
                try:
                    sock = self._ensure_connected()
                    sock.sendall(frame_bytes)
                    if await_reply:
                        check_ok(recv_frame(sock), "push_db")
                    self.stats.sent_batches += 1
                    self.stats.sent_records += records
                    return True
                except (OSError, ProtocolError):
                    self._disconnect()
                    if attempt < self.retries:
                        self.stats.retries += 1
                        time.sleep(self.backoff * (2 ** attempt))
            self._down_until = time.monotonic() + self.cooldown
        if self.spill_path is not None:
            with open(self.spill_path, "ab") as stream:
                stream.write(frame_bytes)
            self.stats.spilled_batches += 1
        else:
            self.stats.lost_batches += 1
        return False

    def _replay_spill(self):
        """Re-send spilled frames over the fresh connection, then truncate.

        Runs inside :meth:`_connect`, so the frames go out before any
        new traffic — delivery order stays oldest-first.  Raises on
        socket failure (the caller's retry loop owns recovery; the spill
        file is only truncated after every frame went out).
        """
        if self.spill_path is None or not os.path.exists(self.spill_path):
            return
        with open(self.spill_path, "rb") as stream:
            data = stream.read()
        if not data:
            return
        frames, clean_length = split_frames(data, strict=False)
        self._sock.sendall(data[:clean_length])
        os.truncate(self.spill_path, 0)
        self.stats.replayed_batches += len(frames)
        if clean_length < len(data):
            # A torn or corrupt frame (producer died mid-append) ends
            # the salvageable prefix; everything past it is discarded.
            # That discard used to vanish without a trace — now it is
            # one counted, reported drop event (>= 1 batch lost).
            self._report_replay_dropped(1)

    def _report_replay_dropped(self, batches):
        self.stats.replay_dropped += batches
        try:
            self._sock.sendall(encode_frame(report_frame(
                replay_dropped=batches)))
        except OSError:
            # The local replay_dropped counter still records the loss,
            # but the server never learned of it — its drop accounting
            # undercounts until a later report lands.  Count the
            # swallowed report frame instead of dropping it silently.
            self.stats.dropped_reports += 1

    # ------------------------------------------------------------------
    # Synchronous request/response.

    def _request(self, frame, context):
        sock = self._ensure_connected()
        try:
            send_frame(sock, frame)
            reply = recv_frame(sock)
        except OSError as exc:
            self._disconnect()
            raise ServiceError("%s: connection to %s:%d failed: %s"
                               % (context, self.host, self.port, exc)) from exc
        return check_ok(reply, context)

    def drain(self):
        """Barrier: block until every accepted batch has been folded.

        Returns the server's ok frame, which carries the loss accounting
        (``dropped_batches`` / ``dropped_records``).
        """
        return self._request(sync_frame(), "drain")

    def query(self, command, **params):
        """Run one query command; returns the server's ok frame."""
        return self._request(query_frame(command, **params),
                             "query %s" % command)

    def epochs(self, since=None, until=None, limit=None):
        """Query the server's rollup-bucket state (``epochs``).

        Parameters are validated client-side
        (:func:`~repro.service.protocol.epoch_range_params`); the reply
        carries one row per live bucket/epoch plus the retention
        accounting.
        """
        return self.query("epochs",
                          **epoch_range_params(since, until, limit))


class ServiceSink:
    """A :class:`ProfileMeDriver` sink that streams records to a server.

    Buffers *batch_size* samples per push frame (wire efficiency), and
    on :meth:`close` flushes, drains the server, and disconnects —
    after ``close()`` returns, every delivered sample is visible to
    queries.
    """

    def __init__(self, client, batch_size=256):
        if isinstance(client, (str, tuple)):
            client = ProfileClient(client)
        self.client = client
        self.batch_size = batch_size
        self._buffer = []

    def add(self, sample):
        self._buffer.append(sample)
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def flush(self):
        if self._buffer:
            self.client.push(self._buffer)
            self._buffer = []

    def close(self, drain=True):
        self.flush()
        info = None
        if drain:
            try:
                info = self.client.drain()
            except (ServiceError, ProtocolError):
                info = None  # server gone: samples are spilled/counted
        self.client.close()
        return info
