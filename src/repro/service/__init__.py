"""Continuous-profiling service: the DCPI-daemon half of the paper.

Four layers (see ``docs/architecture.md`` — "Profiling service"):

* :mod:`repro.service.protocol` — versioned, length-prefixed JSON wire
  protocol; exact record serialization;
* :mod:`repro.service.server` — asyncio ingestion server with bounded
  per-connection queues, drop accounting, shards, atomic snapshots;
* :mod:`repro.service.client` — blocking producer transport with
  retry/backoff and a local spill file, plus the driver sink;
* the ``repro serve`` / ``repro push`` / ``repro query`` CLI commands
  (``repro.tools.cli``) and the ``SessionSpec.push_to`` hook.
"""

from repro.service.client import ClientStats, ProfileClient, ServiceSink
from repro.service.protocol import (PROTOCOL_VERSION, record_from_wire,
                                    record_to_wire)
from repro.service.server import ProfileServer, ServerStats, ServerThread

__all__ = [
    "PROTOCOL_VERSION",
    "ClientStats",
    "ProfileClient",
    "ProfileServer",
    "ServerStats",
    "ServerThread",
    "ServiceSink",
    "record_from_wire",
    "record_to_wire",
]
