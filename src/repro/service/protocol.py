"""Wire protocol for the continuous-profiling service.

DCPI's daemon receives interrupt-delivered sample batches from every CPU
and folds them into a shared profile database; this module is the wire
format that plays the same role between :class:`~repro.service.client.
ProfileClient` producers and the :class:`~repro.service.server.
ProfileServer`.

**Framing.**  A frame is a 4-byte big-endian length prefix followed by
that many bytes of UTF-8 JSON (one object).  Frames above
``MAX_FRAME_BYTES`` are refused — a garbage length prefix must not make
a peer allocate gigabytes.  The same framing is used in both directions
and in the client's spill file, so a spill replay is nothing more than
re-sending stored frames.

**Versioning.**  Every conversation opens with a ``hello`` frame
carrying :data:`PROTOCOL_VERSION`; the server refuses mismatches before
any samples flow.  Record payloads additionally ride inside versioned
documents wherever they touch disk (``repro-profile``, see
:mod:`repro.analysis.persistence`).

**Messages** (``kind`` field):

========== ============ ==============================================
kind        direction    meaning
========== ============ ==============================================
hello       c -> s       version handshake; server replies ok/error
push        c -> s       one batch of sample records (fire-and-forget
                         unless ``sync`` is set, then the server acks
                         with its drop accounting)
push_db     c -> s       a whole ``repro-profile`` document to merge
                         (how cached sweep results and multiprogrammed
                         sessions enter the service)
probe_push  c -> s       one probe-registry reading set (name -> value
                         at a cycle tick), folded into per-shard
                         ``ProbeSeries`` aggregates

sync        c -> s       barrier: ack only after every batch already
                         accepted on this connection has been folded
report      c -> s       producer-side loss counters (fire-and-forget),
                         e.g. batches a spill replay had to discard;
                         folded into the server's stats
query       c -> s       read command (top/latency/stats/convergence/
                         export); server replies ok with the data
ok / error  s -> c       responses
========== ============ ==============================================

Record serialization round-trips :class:`ProfileRecord`,
:class:`PairedRecord`, and :class:`GroupRecord` exactly — every field,
including ``None`` latencies and off-path records with no opcode — so a
database folded server-side from wire records is field-for-field
identical to one folded in-process from the original objects.
"""

import json
import struct

from repro.errors import ProtocolError
from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode
from repro.profileme.registers import (GroupRecord, LATENCY_FIELDS,
                                       PairedRecord, ProfileRecord)

PROTOCOL_VERSION = 1
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


# ----------------------------------------------------------------------
# Record <-> wire (JSON-safe dicts).


def record_to_wire(sample):
    """Serialize a single/paired/group sample to a JSON-safe dict."""
    if isinstance(sample, PairedRecord):
        return {
            "t": "pair",
            "first": _single_to_wire(sample.first),
            "second": (_single_to_wire(sample.second)
                       if sample.second is not None else None),
            "cycles": sample.intra_pair_cycles,
            "distance": sample.intra_pair_distance,
        }
    if isinstance(sample, GroupRecord):
        return {
            "t": "group",
            "records": [_single_to_wire(r) if r is not None else None
                        for r in sample.records],
            "offsets": list(sample.fetch_offsets),
            "distances": list(sample.distances),
        }
    return _single_to_wire(sample)


def record_from_wire(data):
    """Rebuild a sample from :func:`record_to_wire` output."""
    try:
        tag = data.get("t")
        if tag == "pair":
            second = data["second"]
            return PairedRecord(
                first=_single_from_wire(data["first"]),
                second=(_single_from_wire(second)
                        if second is not None else None),
                intra_pair_cycles=data["cycles"],
                intra_pair_distance=data["distance"])
        if tag == "group":
            return GroupRecord(
                records=tuple(_single_from_wire(r) if r is not None else None
                              for r in data["records"]),
                fetch_offsets=tuple(data["offsets"]),
                distances=tuple(data["distances"]))
        if tag == "record":
            return _single_from_wire(data)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ProtocolError("malformed wire record: %s" % (exc,)) from exc
    raise ProtocolError("unknown record tag %r" % (tag,))


def _single_to_wire(record):
    return {
        "t": "record",
        "context": record.context,
        "pc": record.pc,
        "op": record.op.name if record.op is not None else None,
        "addr": record.addr,
        "events": int(record.events),
        "abort": record.abort_reason.name,
        "history": record.history,
        "lat": [getattr(record, name) for name in LATENCY_FIELDS],
        "fetch_cycle": record.fetch_cycle,
        "done_cycle": record.done_cycle,
    }


def _single_from_wire(data):
    try:
        latencies = dict(zip(LATENCY_FIELDS, data["lat"]))
        if len(data["lat"]) != len(LATENCY_FIELDS):
            raise ProtocolError("expected %d latency registers, got %d"
                                % (len(LATENCY_FIELDS), len(data["lat"])))
        op = data["op"]
        return ProfileRecord(
            context=data["context"],
            pc=data["pc"],
            op=Opcode[op] if op is not None else None,
            addr=data["addr"],
            events=Event(data["events"]),
            abort_reason=AbortReason[data["abort"]],
            history=data["history"],
            fetch_cycle=data["fetch_cycle"],
            done_cycle=data["done_cycle"],
            **latencies)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("malformed wire record: %s" % (exc,)) from exc


# ----------------------------------------------------------------------
# Framing.


def encode_frame(obj):
    """Serialize one message to its length-prefixed wire bytes."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError("frame of %d bytes exceeds the %d-byte limit"
                            % (len(body), MAX_FRAME_BYTES))
    return _HEADER.pack(len(body)) + body


def _decode_body(body):
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("frame body is not JSON: %s" % (exc,)) from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame body must be a JSON object, got %s"
                            % (type(obj).__name__,))
    return obj


def split_frames(data, strict=True):
    """Parse a byte buffer into (decoded frames, clean prefix length).

    Used to replay a spill file: trailing bytes past the last complete
    frame (an append interrupted mid-write) are reported, not raised, so
    a crashed producer's spill loses at most its final partial frame.

    With ``strict=False``, corruption (an oversized length prefix or an
    undecodable body — e.g. frames appended *after* a torn one, so the
    stream framing is lost) also stops the parse instead of raising:
    the caller gets every frame before the damage plus the clean prefix
    length, and can see from ``clean_length < len(data)`` that bytes
    were unsalvageable.
    """
    frames = []
    offset = 0
    while offset + _HEADER.size <= len(data):
        (length,) = _HEADER.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            if strict:
                raise ProtocolError(
                    "frame of %d bytes exceeds the %d-byte limit"
                    % (length, MAX_FRAME_BYTES))
            break
        end = offset + _HEADER.size + length
        if end > len(data):
            break
        try:
            frames.append(_decode_body(data[offset + _HEADER.size:end]))
        except ProtocolError:
            if strict:
                raise
            break
        offset = end
    return frames, offset


async def read_frame(reader, max_bytes=MAX_FRAME_BYTES):
    """Read one frame from an asyncio stream; None on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError("frame of %d bytes exceeds the %d-byte limit"
                            % (length, max_bytes))
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _decode_body(body)


async def write_frame(writer, obj):
    """Write one frame to an asyncio stream and drain."""
    writer.write(encode_frame(obj))
    await writer.drain()


def send_frame(sock, obj):
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(obj))


def recv_frame(sock, max_bytes=MAX_FRAME_BYTES):
    """Read one frame from a blocking socket; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError("frame of %d bytes exceeds the %d-byte limit"
                            % (length, max_bytes))
    return _decode_body(_recv_exact(sock, length))


def _recv_exact(sock, count, allow_eof=False):
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            if allow_eof and not data:
                return None
            raise ProtocolError("connection closed mid-frame")
        data += chunk
    return data


# ----------------------------------------------------------------------
# Message constructors / helpers.


def hello_frame():
    return {"kind": "hello", "version": PROTOCOL_VERSION}


def push_frame(samples, sync=False):
    """A batch of samples; *sync* requests a per-batch ack."""
    frame = {"kind": "push",
             "records": [record_to_wire(sample) for sample in samples]}
    if sync:
        frame["sync"] = True
    return frame


def push_db_frame(document):
    """A whole ``repro-profile`` document for the server to merge."""
    return {"kind": "push_db", "database": document}


def probe_push_frame(readings, tick, sync=False):
    """One streamed probe-registry reading set at cycle *tick*.

    *readings* is ``{probe name: value}`` straight from
    ``ProbeRegistry.read_all``; the server folds it into its shards'
    :class:`~repro.analysis.database.ProbeSeries` aggregates so probe
    trends land in the profiling database alongside the samples.
    """
    frame = {"kind": "probe_push", "tick": int(tick),
             "readings": dict(readings)}
    if sync:
        frame["sync"] = True
    return frame


def sync_frame():
    return {"kind": "sync"}


def report_frame(**counters):
    """Producer-side loss counters, e.g. ``replay_dropped=1``."""
    return {"kind": "report", "counters": counters}


def query_frame(command, **params):
    return {"kind": "query", "command": command, "params": params}


def ok_frame(**data):
    frame = {"kind": "ok"}
    frame.update(data)
    return frame


def error_frame(message):
    return {"kind": "error", "message": message}


def check_ok(frame, context):
    """Raise :class:`ProtocolError` unless *frame* is an ok response."""
    if frame is None:
        raise ProtocolError("%s: connection closed before a reply" % context)
    if frame.get("kind") == "error":
        raise ProtocolError("%s: server said: %s"
                            % (context, frame.get("message")))
    if frame.get("kind") != "ok":
        raise ProtocolError("%s: unexpected reply kind %r"
                            % (context, frame.get("kind")))
    return frame


def parse_address(address):
    """Parse ``host:port`` (or a ``(host, port)`` pair) to (host, port)."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    text = str(address)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ProtocolError("address must be host:port, got %r" % (text,))
    try:
        return host, int(port)
    except ValueError:
        raise ProtocolError("bad port in address %r" % (text,)) from None
