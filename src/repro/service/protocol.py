"""Wire protocol for the continuous-profiling service.

DCPI's daemon receives interrupt-delivered sample batches from every CPU
and folds them into a shared profile database; this module is the wire
format that plays the same role between :class:`~repro.service.client.
ProfileClient` producers and the :class:`~repro.service.server.
ProfileServer`.

**Framing.**  A frame is a 4-byte big-endian length prefix followed by
that many bytes of body.  Two body encodings share the framing and are
distinguished by the first body byte:

* ``{`` (0x7B) — **protocol v1**: the body is one UTF-8 JSON object.
* :data:`V2_MAGIC` (0xB2) — **protocol v2**: a struct-packed binary
  frame (see below).  0xB2 is not valid leading UTF-8 JSON, so the two
  encodings can be interleaved on one connection (and in one spill
  file) without ambiguity.

Frames above ``MAX_FRAME_BYTES`` are refused on *both* sides: a garbage
length prefix must not make a peer allocate gigabytes, and
:func:`encode_push_frames` splits oversized batches client-side so a
producer never emits a frame the server would refuse.  The same framing
is used in both directions and in the client's spill file, so a spill
replay is nothing more than re-sending stored frames.

**Versioning.**  Every conversation opens with a JSON ``hello`` frame
carrying the client's preferred version; the server answers with the
highest version both sides speak (its ok frame's ``version`` field) and
refuses versions it does not know.  Version 1 peers exchange JSON
everywhere; version 2 peers pack the two bulk ingest messages (``push``
and ``probe_push``) into binary frames while control traffic (hello,
sync, query, replies) stays JSON.  The server decodes both body
encodings on every connection regardless of the negotiated version, so
v1 JSON clients, v2 binary clients, and mixed spill replays all fold
into the same database.

**Binary frame layout (v2).**  After the 4-byte length prefix::

    offset  size  field
    0       1     V2_MAGIC (0xB2)
    1       1     frame type (1 = push, 2 = probe_push)
    2       1     flags (bit 0: sync — request a per-frame ack)
    3       4     CRC-32 of the payload (zlib.crc32, big-endian)
    7       4     record count (big-endian; drop accounting without
                  decoding the payload)
    11      -     payload

The CRC is verified before any payload byte is interpreted, so a
corrupted frame is one typed :class:`ProtocolError` (and one accounted
drop), never a crash or a silently wrong fold.

**Payload encoding (v2 push).**  ``uvarint count`` followed by *count*
samples.  Varints are LEB128 (7 data bits per byte, little-endian
groups, high bit = continuation); signed values use zigzag
(``n >= 0 -> 2n``, ``n < 0 -> -2n - 1``) so small deltas of either sign
stay short and arbitrary-precision Python ints (64-bit wrap-around
deltas included) survive exactly.  Each sample opens with a tag byte
(0 = single record, 1 = paired record, 2 = group record).  A single
record is::

    uvarint  length of the remainder of this record
    svarint  pc delta from the previous record in the batch (batch
             state starts at 0; members of pairs/groups participate in
             the same chain, in encode order)
    svarint  fetch_cycle delta from the previous record's fetch_cycle
    svarint  done_cycle delta from this record's own fetch_cycle
    -- signature (everything the profile database folds) --
    byte     opcode (0 = none/off-path, else Opcode index + 1)
    byte     abort reason (AbortReason index)
    byte     presence (bit 0: addr, bits 1..6: the six Table 1
             latency registers in LATENCY_FIELDS order)
    uvarint  events bit-field
    uvarint  context
    uvarint  history
    svarint  addr                  (only if present)
    uvarint  each present latency  (LATENCY_FIELDS order)

The length prefix lets a decoder skip a record in O(1), and the
signature — the suffix that excludes the per-sample timestamps — is a
stable byte string for "same static instruction, same event/latency
outcome", which the server's fold fast path counts by ``(pc,
signature)`` instead of re-aggregating field by field (see
:mod:`repro.service.fold`).

A paired record is ``first record, byte second-present, [second
record], byte presence (bit 0: intra_pair_cycles, bit 1:
intra_pair_distance), [svarint cycles], [svarint distance]``.  A group
record is ``uvarint n, n * (byte present + [record]), n * (byte present
+ [svarint fetch_offset]), uvarint d, d * svarint distance``.

**Payload encoding (v2 probe_push)**: ``svarint tick, uvarint count``,
then per reading ``uvarint name-length, name UTF-8, value`` where a
value is one tag byte — 0 none, 1 int (svarint), 2 float (8-byte
big-endian double), 3 str (uvarint length + UTF-8), 4 true, 5 false.

**Messages** (``kind`` field; v2 binary frames decode to the same
shapes, with the undecoded payload under ``payload``):

========== ============ ==============================================
kind        direction    meaning
========== ============ ==============================================
hello       c -> s       version handshake; server replies ok/error
push        c -> s       one batch of sample records (fire-and-forget
                         unless ``sync`` is set, then the server acks
                         with its drop accounting)
push_db     c -> s       a whole ``repro-profile`` document to merge
                         (how cached sweep results and multiprogrammed
                         sessions enter the service)
probe_push  c -> s       one probe-registry reading set (name -> value
                         at a cycle tick), folded into per-shard
                         ``ProbeSeries`` aggregates

sync        c -> s       barrier: ack only after every batch already
                         accepted on this connection has been folded
report      c -> s       producer-side loss counters (fire-and-forget),
                         e.g. batches a spill replay had to discard;
                         folded into the server's stats
query       c -> s       read command (top/latency/stats/convergence/
                         export); server replies ok with the data
ok / error  s -> c       responses
========== ============ ==============================================

Record serialization round-trips :class:`ProfileRecord`,
:class:`PairedRecord`, and :class:`GroupRecord` exactly — every field,
including ``None`` latencies and off-path records with no opcode — in
both protocol versions, so a database folded server-side from wire
records is field-for-field identical to one folded in-process from the
original objects.
"""

import json
import struct
import zlib

from repro.errors import ProtocolError
from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode
from repro.profileme.registers import (GroupRecord, LATENCY_FIELDS,
                                       PairedRecord, ProfileRecord)

PROTOCOL_VERSION = 1  # the JSON protocol (kept for v1 peers)
PROTOCOL_V2 = 2  # binary push/probe_push frames
SUPPORTED_VERSIONS = (PROTOCOL_VERSION, PROTOCOL_V2)
DEFAULT_WIRE_VERSION = PROTOCOL_V2
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")

# v2 binary frame envelope (after the length prefix).
V2_MAGIC = 0xB2
FRAME_PUSH = 1
FRAME_PROBE_PUSH = 2
FLAG_SYNC = 0x01
_V2_HEADER = struct.Struct(">BBBII")  # magic, type, flags, crc32, count

# Wire ordinals for the two enums (definition order is the v2 format).
_OPCODES = tuple(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}
_ABORTS = tuple(AbortReason)
_ABORT_INDEX = {reason: i for i, reason in enumerate(_ABORTS)}

_TAG_RECORD = 0
_TAG_PAIR = 1
_TAG_GROUP = 2

_VAL_NONE = 0
_VAL_INT = 1
_VAL_FLOAT = 2
_VAL_STR = 3
_VAL_TRUE = 4
_VAL_FALSE = 5

_F64 = struct.Struct(">d")


# ----------------------------------------------------------------------
# Varints: LEB128 unsigned, zigzag signed.  Python ints are unbounded,
# so 64-bit wrap-around deltas (pc 2**64-1 -> 0) are just large varints.


def _uv_encode(out, value):
    """Append *value* (non-negative int) to bytearray *out* as LEB128."""
    if value < 0:
        raise ProtocolError("unsigned wire field cannot be negative: %r"
                            % (value,))
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _sv_encode(out, value):
    """Append *value* (any int) as a zigzag LEB128 varint."""
    _uv_encode(out, value * 2 if value >= 0 else -value * 2 - 1)


def _uv_decode(data, offset):
    """Read one LEB128 varint; returns (value, next offset)."""
    try:
        byte = data[offset]
    except IndexError:
        raise ProtocolError("truncated varint (frame ends mid-value)") \
            from None
    offset += 1
    if byte < 0x80:
        return byte, offset
    result = byte & 0x7F
    shift = 7
    while True:
        try:
            byte = data[offset]
        except IndexError:
            raise ProtocolError("truncated varint (frame ends mid-value)") \
                from None
        offset += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, offset
        shift += 7


def _sv_decode(data, offset):
    value, offset = _uv_decode(data, offset)
    return (value >> 1) ^ -(value & 1), offset


# ----------------------------------------------------------------------
# Record <-> wire v1 (JSON-safe dicts).


def record_to_wire(sample):
    """Serialize a single/paired/group sample to a JSON-safe dict."""
    if isinstance(sample, PairedRecord):
        return {
            "t": "pair",
            "first": _single_to_wire(sample.first),
            "second": (_single_to_wire(sample.second)
                       if sample.second is not None else None),
            "cycles": sample.intra_pair_cycles,
            "distance": sample.intra_pair_distance,
        }
    if isinstance(sample, GroupRecord):
        return {
            "t": "group",
            "records": [_single_to_wire(r) if r is not None else None
                        for r in sample.records],
            "offsets": list(sample.fetch_offsets),
            "distances": list(sample.distances),
        }
    return _single_to_wire(sample)


def record_from_wire(data):
    """Rebuild a sample from :func:`record_to_wire` output."""
    try:
        tag = data.get("t")
        if tag == "pair":
            second = data["second"]
            return PairedRecord(
                first=_single_from_wire(data["first"]),
                second=(_single_from_wire(second)
                        if second is not None else None),
                intra_pair_cycles=data["cycles"],
                intra_pair_distance=data["distance"])
        if tag == "group":
            return GroupRecord(
                records=tuple(_single_from_wire(r) if r is not None else None
                              for r in data["records"]),
                fetch_offsets=tuple(data["offsets"]),
                distances=tuple(data["distances"]))
        if tag == "record":
            return _single_from_wire(data)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ProtocolError("malformed wire record: %s" % (exc,)) from exc
    raise ProtocolError("unknown record tag %r" % (tag,))


def _single_to_wire(record):
    return {
        "t": "record",
        "context": record.context,
        "pc": record.pc,
        "op": record.op.name if record.op is not None else None,
        "addr": record.addr,
        "events": int(record.events),
        "abort": record.abort_reason.name,
        "history": record.history,
        "lat": [getattr(record, name) for name in LATENCY_FIELDS],
        "fetch_cycle": record.fetch_cycle,
        "done_cycle": record.done_cycle,
    }


def _single_from_wire(data):
    try:
        latencies = dict(zip(LATENCY_FIELDS, data["lat"]))
        if len(data["lat"]) != len(LATENCY_FIELDS):
            raise ProtocolError("expected %d latency registers, got %d"
                                % (len(LATENCY_FIELDS), len(data["lat"])))
        op = data["op"]
        return ProfileRecord(
            context=data["context"],
            pc=data["pc"],
            op=Opcode[op] if op is not None else None,
            addr=data["addr"],
            events=Event(data["events"]),
            abort_reason=AbortReason[data["abort"]],
            history=data["history"],
            fetch_cycle=data["fetch_cycle"],
            done_cycle=data["done_cycle"],
            **latencies)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("malformed wire record: %s" % (exc,)) from exc


# ----------------------------------------------------------------------
# Record <-> wire v2 (struct-packed, delta/varint).


def _encode_single_v2(out, record, state):
    """Append one record; *state* is the [prev_pc, prev_fetch] chain."""
    body = bytearray()
    try:
        _sv_encode(body, record.pc - state[0])
        state[0] = record.pc
        fetch = record.fetch_cycle
        _sv_encode(body, fetch - state[1])
        state[1] = fetch
        _sv_encode(body, record.done_cycle - fetch)
        op = record.op
        body.append(0 if op is None else _OPCODE_INDEX[op] + 1)
        body.append(_ABORT_INDEX[record.abort_reason])
        presence = 0
        addr = record.addr
        if addr is not None:
            presence |= 0x01
        latencies = []
        for bit, name in enumerate(LATENCY_FIELDS):
            value = getattr(record, name)
            if value is not None:
                presence |= 1 << (bit + 1)
                latencies.append(value)
        body.append(presence)
        _uv_encode(body, int(record.events))
        _uv_encode(body, record.context)
        _uv_encode(body, record.history)
        if addr is not None:
            _sv_encode(body, addr)
        for value in latencies:
            _uv_encode(body, value)
    except (TypeError, KeyError, AttributeError) as exc:
        raise ProtocolError("record not encodable as wire v2: %s"
                            % (exc,)) from exc
    _uv_encode(out, len(body))
    out += body


def _decode_single_v2(data, offset, state):
    """Decode one record encoded by :func:`_encode_single_v2`."""
    length, offset = _uv_decode(data, offset)
    end = offset + length
    if end > len(data):
        raise ProtocolError("truncated record (claims %d bytes past the "
                            "frame end)" % (end - len(data),))
    delta, offset = _sv_decode(data, offset)
    pc = state[0] = state[0] + delta
    delta, offset = _sv_decode(data, offset)
    fetch = state[1] = state[1] + delta
    delta, offset = _sv_decode(data, offset)
    done = fetch + delta
    try:
        op_byte = data[offset]
        abort_byte = data[offset + 1]
        presence = data[offset + 2]
    except IndexError:
        raise ProtocolError("truncated record header") from None
    offset += 3
    if op_byte > len(_OPCODES):
        raise ProtocolError("unknown opcode ordinal %d" % (op_byte,))
    if abort_byte >= len(_ABORTS):
        raise ProtocolError("unknown abort-reason ordinal %d" % (abort_byte,))
    events, offset = _uv_decode(data, offset)
    context, offset = _uv_decode(data, offset)
    history, offset = _uv_decode(data, offset)
    addr = None
    if presence & 0x01:
        addr, offset = _sv_decode(data, offset)
    latencies = {}
    for bit, name in enumerate(LATENCY_FIELDS):
        if presence & (1 << (bit + 1)):
            latencies[name], offset = _uv_decode(data, offset)
    record = ProfileRecord(
        context=context, pc=pc,
        op=None if op_byte == 0 else _OPCODES[op_byte - 1],
        addr=addr,
        events=Event(events),
        abort_reason=_ABORTS[abort_byte],
        history=history,
        fetch_cycle=fetch, done_cycle=done,
        fetch_to_map=latencies.get("fetch_to_map"),
        map_to_data_ready=latencies.get("map_to_data_ready"),
        data_ready_to_issue=latencies.get("data_ready_to_issue"),
        issue_to_retire_ready=latencies.get("issue_to_retire_ready"),
        retire_ready_to_retire=latencies.get("retire_ready_to_retire"),
        load_issue_to_completion=latencies.get("load_issue_to_completion"))
    if offset != end:
        raise ProtocolError("record length mismatch: %d bytes left over"
                            % (end - offset,))
    return record, end


def _encode_sample_v2(out, sample, state):
    if isinstance(sample, PairedRecord):
        out.append(_TAG_PAIR)
        _encode_single_v2(out, sample.first, state)
        if sample.second is not None:
            out.append(1)
            _encode_single_v2(out, sample.second, state)
        else:
            out.append(0)
        presence = ((0x01 if sample.intra_pair_cycles is not None else 0)
                    | (0x02 if sample.intra_pair_distance is not None else 0))
        out.append(presence)
        if sample.intra_pair_cycles is not None:
            _sv_encode(out, sample.intra_pair_cycles)
        if sample.intra_pair_distance is not None:
            _sv_encode(out, sample.intra_pair_distance)
        return
    if isinstance(sample, GroupRecord):
        out.append(_TAG_GROUP)
        _uv_encode(out, len(sample.records))
        for record in sample.records:
            if record is None:
                out.append(0)
            else:
                out.append(1)
                _encode_single_v2(out, record, state)
        if len(sample.fetch_offsets) != len(sample.records):
            raise ProtocolError("group has %d records but %d fetch offsets"
                                % (len(sample.records),
                                   len(sample.fetch_offsets)))
        for value in sample.fetch_offsets:
            if value is None:
                out.append(0)
            else:
                out.append(1)
                _sv_encode(out, value)
        _uv_encode(out, len(sample.distances))
        for value in sample.distances:
            _sv_encode(out, value)
        return
    out.append(_TAG_RECORD)
    _encode_single_v2(out, sample, state)


def _decode_sample_v2(data, offset, state):
    try:
        tag = data[offset]
    except IndexError:
        raise ProtocolError("truncated batch (missing sample tag)") from None
    offset += 1
    if tag == _TAG_RECORD:
        return _decode_single_v2(data, offset, state)
    if tag == _TAG_PAIR:
        first, offset = _decode_single_v2(data, offset, state)
        try:
            has_second = data[offset]
        except IndexError:
            raise ProtocolError("truncated pair") from None
        offset += 1
        second = None
        if has_second:
            second, offset = _decode_single_v2(data, offset, state)
        try:
            presence = data[offset]
        except IndexError:
            raise ProtocolError("truncated pair") from None
        offset += 1
        cycles = distance = None
        if presence & 0x01:
            cycles, offset = _sv_decode(data, offset)
        if presence & 0x02:
            distance, offset = _sv_decode(data, offset)
        return PairedRecord(first=first, second=second,
                            intra_pair_cycles=cycles,
                            intra_pair_distance=distance), offset
    if tag == _TAG_GROUP:
        count, offset = _uv_decode(data, offset)
        records = []
        for _ in range(count):
            try:
                present = data[offset]
            except IndexError:
                raise ProtocolError("truncated group") from None
            offset += 1
            if present:
                record, offset = _decode_single_v2(data, offset, state)
                records.append(record)
            else:
                records.append(None)
        offsets = []
        for _ in range(count):
            try:
                present = data[offset]
            except IndexError:
                raise ProtocolError("truncated group") from None
            offset += 1
            if present:
                value, offset = _sv_decode(data, offset)
                offsets.append(value)
            else:
                offsets.append(None)
        dcount, offset = _uv_decode(data, offset)
        distances = []
        for _ in range(dcount):
            value, offset = _sv_decode(data, offset)
            distances.append(value)
        return GroupRecord(records=tuple(records),
                           fetch_offsets=tuple(offsets),
                           distances=tuple(distances)), offset
    raise ProtocolError("unknown sample tag %d" % (tag,))


def encode_push_payload(samples):
    """Encode a batch of samples to v2 payload bytes."""
    out = bytearray()
    _uv_encode(out, len(samples))
    state = [0, 0]
    for sample in samples:
        _encode_sample_v2(out, sample, state)
    return bytes(out)


def decode_push_payload(payload):
    """Decode a v2 push payload back into sample objects."""
    count, offset = _uv_decode(payload, 0)
    state = [0, 0]
    samples = []
    for _ in range(count):
        sample, offset = _decode_sample_v2(payload, offset, state)
        samples.append(sample)
    if offset != len(payload):
        raise ProtocolError("push payload has %d trailing bytes"
                            % (len(payload) - offset,))
    return samples


def encode_probe_payload(readings, tick):
    """Encode one probe-registry reading set to v2 payload bytes."""
    out = bytearray()
    _sv_encode(out, int(tick))
    _uv_encode(out, len(readings))
    for name, value in readings.items():
        encoded = str(name).encode("utf-8")
        _uv_encode(out, len(encoded))
        out += encoded
        if value is None:
            out.append(_VAL_NONE)
        elif value is True:
            out.append(_VAL_TRUE)
        elif value is False:
            out.append(_VAL_FALSE)
        elif isinstance(value, int):
            out.append(_VAL_INT)
            _sv_encode(out, value)
        elif isinstance(value, float):
            out.append(_VAL_FLOAT)
            out += _F64.pack(value)
        elif isinstance(value, str):
            encoded = value.encode("utf-8")
            out.append(_VAL_STR)
            _uv_encode(out, len(encoded))
            out += encoded
        else:
            raise ProtocolError("probe value %r is not wire-encodable"
                                % (value,))
    return bytes(out)


def decode_probe_payload(payload):
    """Decode v2 probe payload bytes; returns (readings dict, tick)."""
    tick, offset = _sv_decode(payload, 0)
    count, offset = _uv_decode(payload, offset)
    readings = {}
    for _ in range(count):
        length, offset = _uv_decode(payload, offset)
        end = offset + length
        if end > len(payload):
            raise ProtocolError("truncated probe name")
        try:
            name = bytes(payload[offset:end]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("probe name is not UTF-8: %s"
                                % (exc,)) from exc
        offset = end
        try:
            tag = payload[offset]
        except IndexError:
            raise ProtocolError("truncated probe value") from None
        offset += 1
        if tag == _VAL_NONE:
            value = None
        elif tag == _VAL_TRUE:
            value = True
        elif tag == _VAL_FALSE:
            value = False
        elif tag == _VAL_INT:
            value, offset = _sv_decode(payload, offset)
        elif tag == _VAL_FLOAT:
            if offset + 8 > len(payload):
                raise ProtocolError("truncated probe float")
            (value,) = _F64.unpack_from(payload, offset)
            offset += 8
        elif tag == _VAL_STR:
            length, offset = _uv_decode(payload, offset)
            end = offset + length
            if end > len(payload):
                raise ProtocolError("truncated probe string")
            try:
                value = bytes(payload[offset:end]).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ProtocolError("probe string is not UTF-8: %s"
                                    % (exc,)) from exc
            offset = end
        else:
            raise ProtocolError("unknown probe value tag %d" % (tag,))
        readings[name] = value
    if offset != len(payload):
        raise ProtocolError("probe payload has %d trailing bytes"
                            % (len(payload) - offset,))
    return readings, tick


# ----------------------------------------------------------------------
# Framing.


def encode_frame(obj):
    """Serialize one JSON message to its length-prefixed wire bytes."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError("frame of %d bytes exceeds the %d-byte limit"
                            % (len(body), MAX_FRAME_BYTES))
    return _HEADER.pack(len(body)) + body


def encode_binary_frame(frame_type, payload, count, sync=False):
    """Wrap v2 *payload* bytes in the binary envelope + length prefix."""
    body_len = _V2_HEADER.size + len(payload)
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError("frame of %d bytes exceeds the %d-byte limit"
                            % (body_len, MAX_FRAME_BYTES))
    header = _V2_HEADER.pack(V2_MAGIC, frame_type,
                             FLAG_SYNC if sync else 0,
                             zlib.crc32(payload) & 0xFFFFFFFF, count)
    return _HEADER.pack(body_len) + header + payload


def _sample_count(samples):
    """Records inside a batch, counting every pair/group member."""
    total = 0
    for sample in samples:
        if isinstance(sample, PairedRecord):
            total += 1 if sample.second is None else 2
        elif isinstance(sample, GroupRecord):
            total += sum(1 for r in sample.records if r is not None)
        else:
            total += 1
    return total


def plan_push_frames(samples, sync=False, version=DEFAULT_WIRE_VERSION,
                     max_bytes=MAX_FRAME_BYTES):
    """Encode a batch as ``(frame bytes, top-level sample count)`` pairs.

    The 16 MiB frame cap used to be enforced only on decode, so a
    producer pushing one giant batch had it refused server-side; now the
    batch is split client-side (recursively halved) until every frame
    fits under *max_bytes*.  The per-frame counts let the sender keep
    its delivery accounting exact when a split frame spills or is lost.
    A single sample too large for a frame raises — there is no smaller
    unit to split into.
    """
    samples = list(samples)
    if version == PROTOCOL_V2:
        frame = encode_binary_frame(FRAME_PUSH, encode_push_payload(samples),
                                    _sample_count(samples), sync=sync) \
            if _fits_v2(samples, max_bytes) else None
    else:
        frame = _encode_v1_push(samples, sync, max_bytes)
    if frame is not None:
        return [(frame, len(samples))]
    if len(samples) <= 1:
        raise ProtocolError("a single sample exceeds the %d-byte frame "
                            "limit; it cannot be split" % (max_bytes,))
    middle = len(samples) // 2
    return (plan_push_frames(samples[:middle], sync=sync, version=version,
                             max_bytes=max_bytes)
            + plan_push_frames(samples[middle:], sync=sync, version=version,
                               max_bytes=max_bytes))


def encode_push_frames(samples, sync=False, version=DEFAULT_WIRE_VERSION,
                       max_bytes=MAX_FRAME_BYTES):
    """Like :func:`plan_push_frames`, returning only the frame bytes."""
    return [frame for frame, _ in plan_push_frames(
        samples, sync=sync, version=version, max_bytes=max_bytes)]


def _fits_v2(samples, max_bytes):
    # Encode once to learn the size; the caller re-encodes only when the
    # batch must be split, which is the rare path.
    payload = encode_push_payload(samples)
    return _V2_HEADER.size + len(payload) <= max_bytes


def _encode_v1_push(samples, sync, max_bytes):
    body = json.dumps(push_frame(samples, sync=sync),
                      separators=(",", ":")).encode("utf-8")
    if len(body) > max_bytes:
        return None
    return _HEADER.pack(len(body)) + body


def encode_probe_frame(readings, tick, sync=False,
                       version=DEFAULT_WIRE_VERSION):
    """One probe_push frame in the requested wire version."""
    if version == PROTOCOL_V2:
        return encode_binary_frame(FRAME_PROBE_PUSH,
                                   encode_probe_payload(readings, tick),
                                   len(readings), sync=sync)
    return encode_frame(probe_push_frame(readings, tick, sync=sync))


def _decode_binary_body(body):
    if len(body) < _V2_HEADER.size:
        raise ProtocolError("binary frame of %d bytes is shorter than its "
                            "%d-byte header" % (len(body), _V2_HEADER.size))
    magic, frame_type, flags, crc, count = _V2_HEADER.unpack_from(body)
    payload = body[_V2_HEADER.size:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ProtocolError("binary frame CRC mismatch (corrupt payload)")
    if frame_type == FRAME_PUSH:
        kind = "push"
    elif frame_type == FRAME_PROBE_PUSH:
        kind = "probe_push"
    else:
        raise ProtocolError("unknown binary frame type %d" % (frame_type,))
    return {"kind": kind, "version": PROTOCOL_V2, "count": count,
            "payload": payload, "sync": bool(flags & FLAG_SYNC)}


def _decode_body(body):
    if body and body[0] == V2_MAGIC:
        return _decode_binary_body(body)
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("frame body is not JSON: %s" % (exc,)) from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame body must be a JSON object, got %s"
                            % (type(obj).__name__,))
    return obj


def split_frames(data, strict=True):
    """Parse a byte buffer into (decoded frames, clean prefix length).

    Used to replay a spill file: trailing bytes past the last complete
    frame (an append interrupted mid-write) are reported, not raised, so
    a crashed producer's spill loses at most its final partial frame.

    With ``strict=False``, corruption (an oversized length prefix or an
    undecodable body — e.g. frames appended *after* a torn one, so the
    stream framing is lost) also stops the parse instead of raising:
    the caller gets every frame before the damage plus the clean prefix
    length, and can see from ``clean_length < len(data)`` that bytes
    were unsalvageable.
    """
    frames = []
    offset = 0
    while offset + _HEADER.size <= len(data):
        (length,) = _HEADER.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            if strict:
                raise ProtocolError(
                    "frame of %d bytes exceeds the %d-byte limit"
                    % (length, MAX_FRAME_BYTES))
            break
        end = offset + _HEADER.size + length
        if end > len(data):
            break
        try:
            frames.append(_decode_body(data[offset + _HEADER.size:end]))
        except ProtocolError:
            if strict:
                raise
            break
        offset = end
    return frames, offset


async def read_frame(reader, max_bytes=MAX_FRAME_BYTES):
    """Read one frame from an asyncio stream; None on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError("frame of %d bytes exceeds the %d-byte limit"
                            % (length, max_bytes))
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _decode_body(body)


async def write_frame(writer, obj):
    """Write one frame to an asyncio stream and drain."""
    writer.write(encode_frame(obj))
    await writer.drain()


def send_frame(sock, obj):
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(obj))


def recv_frame(sock, max_bytes=MAX_FRAME_BYTES):
    """Read one frame from a blocking socket; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError("frame of %d bytes exceeds the %d-byte limit"
                            % (length, max_bytes))
    return _decode_body(_recv_exact(sock, length))


def _recv_exact(sock, count, allow_eof=False):
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            if allow_eof and not data:
                return None
            raise ProtocolError("connection closed mid-frame")
        data += chunk
    return data


# ----------------------------------------------------------------------
# Message constructors / helpers.


def hello_frame(version=PROTOCOL_VERSION):
    return {"kind": "hello", "version": version}


def negotiate_version(requested):
    """The version the server will speak for a client's hello, or None.

    The answer is the client's requested version when the server knows
    it (a v1 client stays on JSON); unknown versions are refused.
    """
    return requested if requested in SUPPORTED_VERSIONS else None


def push_frame(samples, sync=False):
    """A v1 (JSON) batch of samples; *sync* requests a per-batch ack."""
    frame = {"kind": "push",
             "records": [record_to_wire(sample) for sample in samples]}
    if sync:
        frame["sync"] = True
    return frame


def push_db_frame(document):
    """A whole ``repro-profile`` document for the server to merge."""
    return {"kind": "push_db", "database": document}


def probe_push_frame(readings, tick, sync=False):
    """One streamed probe-registry reading set at cycle *tick* (v1 JSON).

    *readings* is ``{probe name: value}`` straight from
    ``ProbeRegistry.read_all``; the server folds it into its shards'
    :class:`~repro.analysis.database.ProbeSeries` aggregates so probe
    trends land in the profiling database alongside the samples.
    """
    frame = {"kind": "probe_push", "tick": int(tick),
             "readings": dict(readings)}
    if sync:
        frame["sync"] = True
    return frame


def sync_frame():
    return {"kind": "sync"}


def report_frame(**counters):
    """Producer-side loss counters, e.g. ``replay_dropped=1``."""
    return {"kind": "report", "counters": counters}


def query_frame(command, **params):
    return {"kind": "query", "command": command, "params": params}


def epoch_range_params(since=None, until=None, limit=None):
    """Validate + normalize the ``epochs`` query's parameter set.

    *since*/*until* bound the bucket tick range ``[since, until)``;
    *limit* keeps only the newest N buckets.  Raises
    :class:`ProtocolError` on non-integer values, an empty range
    (``since >= until``), or ``limit < 1`` — client-side, so malformed
    queries never reach the server.
    """
    params = {}
    try:
        if since is not None:
            params["since"] = int(since)
        if until is not None:
            params["until"] = int(until)
        if limit is not None:
            params["limit"] = int(limit)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("epoch range parameters must be integers: %s"
                            % (exc,)) from None
    if "since" in params and "until" in params \
            and params["since"] >= params["until"]:
        raise ProtocolError("empty epoch range: since %d >= until %d"
                            % (params["since"], params["until"]))
    if "limit" in params and params["limit"] < 1:
        raise ProtocolError("limit must be >= 1, got %d" % params["limit"])
    return params


def ok_frame(**data):
    frame = {"kind": "ok"}
    frame.update(data)
    return frame


def error_frame(message):
    return {"kind": "error", "message": message}


def check_ok(frame, context):
    """Raise :class:`ProtocolError` unless *frame* is an ok response."""
    if frame is None:
        raise ProtocolError("%s: connection closed before a reply" % context)
    if frame.get("kind") == "error":
        raise ProtocolError("%s: server said: %s"
                            % (context, frame.get("message")))
    if frame.get("kind") != "ok":
        raise ProtocolError("%s: unexpected reply kind %r"
                            % (context, frame.get("kind")))
    return frame


def parse_address(address):
    """Parse ``host:port`` (or a ``(host, port)`` pair) to (host, port)."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    text = str(address)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ProtocolError("address must be host:port, got %r" % (text,))
    try:
        return host, int(port)
    except ValueError:
        raise ProtocolError("bad port in address %r" % (text,)) from None
