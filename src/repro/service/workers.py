"""Shard workers: folding off the event loop, into dedicated processes.

PR 3's server folded samples inside the asyncio event loop, so at high
ingest rates the fold competed with frame reading for the same
interpreter.  Here each shard gets a dedicated **worker process** fed
over a bounded ``multiprocessing.Queue``; the event loop only reads
frames, routes payloads, and accounts — the CPU-heavy decode+fold runs
in :class:`~repro.service.fold.ShardFolder` inside the worker.

Topology (one per shard)::

    event loop ── bounded mp.Queue ──> worker process (ShardFolder)
        ^                                   │
        └── reader thread <── result pipe ──┘

* **Commands** flow parent -> worker through the queue, in FIFO order:
  fold commands (``payload``/``samples``/``probe_payload``/``probes``/
  ``db``) and ``snap`` barrier tokens.  The queue is bounded: a full
  queue sheds the command at the parent (*accounted*, never buffered
  without bound), except documents/aggregates which block instead.

* **Replies** flow worker -> parent through the pipe; a daemon reader
  thread per worker hands them to the event loop with
  ``call_soon_threadsafe``.  A ``snap`` reply is the worker's whole
  state — counters plus its pickled shard database — and doubles as the
  **checkpoint** for crash recovery.

* **Crash recovery without double-counting.**  The parent keeps, per
  worker, the last checkpoint and a backlog of commands enqueued since
  it.  When the reader thread sees the pipe close (worker killed, OOM,
  or crashed), the parent counts the whole backlog as dropped, restarts
  the process seeded from the checkpoint, and resets the sequence
  numbers.  Because the queue is FIFO and the checkpoint is a barrier
  token, "everything after the last checkpoint" is *exactly* the set of
  records whose effect on the database was lost — folded-but-not-yet-
  checkpointed work is discarded with the dead process's memory, so it
  is accounted as dropped, and re-seeding from the checkpoint cannot
  replay anything twice.  Exports after a crash therefore remain
  byte-identical to an in-process fold of (everything checkpointed +
  everything folded after the restart).

:class:`LocalShardWorker` implements the same interface on an
``asyncio.Queue`` + task in the event loop (no processes) — the inline
fallback for single-core embedding and a differential partner for
tests; both run the identical :class:`ShardFolder`, so they cannot
disagree on fold results.
"""

import asyncio
import multiprocessing
import os
import pickle
import queue as queue_module
import threading
import time

from repro.errors import ProtocolError, ServiceError
from repro.service.fold import ShardFolder

_COUNTER_NAMES = ("records", "batches_folded", "db_merges", "probe_pushes",
                  "fold_errors")


class WorkerRestarted(ServiceError):
    """A barrier was interrupted by the worker dying; retry reaches the
    restarted worker."""


def _fresh_counters():
    return {name: 0 for name in _COUNTER_NAMES}


def _apply_fold_command(folder, counters, command, fold_delay):
    """Execute one fold command; shared by both worker flavours."""
    if fold_delay:
        time.sleep(fold_delay)
    op = command[0]
    if op == "payload":
        counters["records"] += folder.fold_payload(command[1])
        counters["batches_folded"] += 1
    elif op == "samples":
        counters["records"] += folder.fold_samples(command[1])
        counters["batches_folded"] += 1
    elif op == "probe_payload":
        folder.fold_probe_payload(command[1])
        counters["probe_pushes"] += 1
    elif op == "probes":
        folder.fold_probe_readings(command[2], command[1])
        counters["probe_pushes"] += 1
    elif op == "db":
        folder.merge_document(command[1])
        counters["db_merges"] += 1
    else:
        raise ProtocolError("unknown worker command %r" % (op,))


def _worker_main(command_queue, result_conn, keep_addresses, fold_delay,
                 seed_blob, rollup_interval=0, retain_buckets=0):
    """Worker process entry point: fold until told to stop."""
    folder = ShardFolder(keep_addresses=keep_addresses,
                         rollup_interval=rollup_interval,
                         retain_buckets=retain_buckets)
    counters = _fresh_counters()
    if seed_blob is not None:
        database, counters = pickle.loads(seed_blob)
        folder.database = database
    processed = 0
    while True:
        command = command_queue.get()
        op = command[0]
        if op == "snap":
            database = folder.snapshot_database()
            blob = pickle.dumps((database, dict(counters)),
                                protocol=pickle.HIGHEST_PROTOCOL)
            result_conn.send(("snap", command[1], dict(counters),
                              processed, blob))
            continue
        if op == "stop":
            result_conn.close()
            return
        processed += 1
        try:
            _apply_fold_command(folder, counters, command, fold_delay)
        except ProtocolError as exc:
            # A frame that passed the CRC but carried malformed records
            # (or an unparseable document): one typed error, one
            # accounted drop, fold state untouched (folds are atomic).
            counters["fold_errors"] += 1
            records = command[-1] if isinstance(command[-1], int) else 0
            result_conn.send(("folderr", str(exc), records))


class ProcessShardWorker:
    """Parent-side handle for one shard's worker process."""

    def __init__(self, index, keep_addresses=0, queue_size=64,
                 fold_delay=0.0, loop=None, rollup_interval=0,
                 retain_buckets=0):
        self.index = index
        self.keep_addresses = keep_addresses
        self.queue_size = queue_size
        self.fold_delay = fold_delay
        self.rollup_interval = rollup_interval
        self.retain_buckets = retain_buckets
        self.loop = loop or asyncio.get_event_loop()
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        # Parent-side accounting (survives worker restarts).
        self.accepted_batches = 0
        self.dropped_batches = 0
        self.dropped_records = 0
        self.fold_error_batches = 0
        self.fold_error_records = 0
        self.restarts = 0
        self.join_errors = 0  # process.join failures during restart
        self.counters = _fresh_counters()  # last known worker counters
        self.total_samples = 0  # last known shard sample count
        self.evicted_samples = 0  # last known shard eviction count
        self.bucket_count = 0  # last known live rollup buckets
        self._checkpoint = None  # pickled (database, counters) or None
        self._seq = 0  # record-bearing commands enqueued this process
        self._backlog = []  # [(seq, batches, records)] since checkpoint
        self._pending = {}  # snap token -> Future
        self._next_token = 0
        self._stopping = False
        self.process = None
        self._queue = None
        self._conn = None
        self._spawn(seed_blob=None)

    # ------------------------------------------------------------------
    # Process lifecycle.

    def _spawn(self, seed_blob):
        self._queue = self._ctx.Queue(maxsize=self.queue_size)
        self._conn, child_conn = self._ctx.Pipe(duplex=False)
        self.process = self._ctx.Process(
            target=_worker_main,
            args=(self._queue, child_conn, self.keep_addresses,
                  self.fold_delay, seed_blob, self.rollup_interval,
                  self.retain_buckets),
            daemon=True)
        self.process.start()
        child_conn.close()
        self._seq = 0
        self._backlog = []
        reader = threading.Thread(target=self._read_results,
                                  args=(self._conn,), daemon=True)
        reader.start()

    def _read_results(self, conn):
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            self.loop.call_soon_threadsafe(self._on_message, message)
        # The pipe closed: clean stop or a dead worker; the event loop
        # decides which.
        try:
            self.loop.call_soon_threadsafe(self._on_pipe_closed, conn)
        except RuntimeError:
            pass  # loop already closed during shutdown

    def _on_message(self, message):
        kind = message[0]
        if kind == "snap":
            _, token, counters, processed, blob = message
            self.counters = counters
            self._checkpoint = blob
            self._backlog = [entry for entry in self._backlog
                             if entry[0] > processed]
            future = self._pending.pop(token, None)
            if future is not None and not future.done():
                future.set_result(blob)
        elif kind == "folderr":
            _, _message, records = message
            self.fold_error_batches += 1
            self.fold_error_records += records

    def _on_pipe_closed(self, conn):
        if self._stopping or conn is not self._conn:
            return
        # Everything enqueued since the last checkpoint died with the
        # process — account it as dropped, exactly once.
        for _seq, batches, records in self._backlog:
            self.dropped_batches += batches
            self.dropped_records += records
        self._backlog = []
        for future in self._pending.values():
            if not future.done():
                future.set_exception(WorkerRestarted(
                    "shard worker %d died; restarted from its last "
                    "checkpoint" % self.index))
        self._pending.clear()
        self.restarts += 1
        if self._checkpoint is not None:
            _db, counters = pickle.loads(self._checkpoint)
            self.counters = dict(counters)
        else:
            self.counters = _fresh_counters()
        try:
            self.process.join(timeout=1.0)
        except (OSError, AssertionError):
            # join() can only fail like this for an already-reaped child
            # (OSError) or a join from a non-parent (AssertionError in
            # some start methods); no fold state rides on it, but count
            # it so a worker that repeatedly fails to reap is visible.
            self.join_errors += 1
        self._spawn(seed_blob=self._checkpoint)

    def _drop_backlog(self):
        """Account every command enqueued since the last checkpoint as
        dropped (the worker will never fold it), exactly once."""
        for _seq, batches, records in self._backlog:
            self.dropped_batches += batches
            self.dropped_records += records
        self._backlog = []

    async def stop(self):
        self._stopping = True
        delivered = True
        try:
            self._queue.put_nowait(("stop",))
        except (queue_module.Full, ValueError, OSError, AssertionError):
            # Full queue or a queue closed mid-restart: the stop token
            # never reaches the worker, so it will be terminated below
            # with its backlog unfolded.  `_stopping` suppresses the
            # crash-recovery path, so the backlog must be accounted
            # here — previously it vanished without a trace.
            delivered = False
        process = self.process
        deadline = time.monotonic() + 2.0
        while process.is_alive() and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        if process.is_alive():
            process.terminate()
            delivered = False
        if not delivered:
            self._drop_backlog()
        self._queue.close()

    # ------------------------------------------------------------------
    # Command submission (event-loop thread only, to preserve ordering).

    def offer(self, command, batches=1, records=0):
        """Enqueue without blocking; shed (False) when the queue is full.

        The caller accounts accepted batches; sheds are accounted here.
        """
        try:
            self._queue.put_nowait(command)
        except Exception:  # queue.Full, or a closed queue mid-restart
            self.dropped_batches += batches
            self.dropped_records += records
            return False
        self._track(command, batches, records)
        return True

    async def put_blocking(self, command, batches=1, records=0):
        """Enqueue, waiting out a full queue (documents are precious)."""
        while True:
            try:
                self._queue.put_nowait(command)
            except Exception:
                await asyncio.sleep(0.005)
                continue
            self._track(command, batches, records)
            return

    def _track(self, command, batches, records):
        """Account an enqueued command against the crash backlog.

        Sequence numbers must mirror the worker's ``processed`` count
        exactly, and the worker counts only fold commands — ``snap``
        barriers carry no foldable state (a lost one is retried, not
        dropped), so they must not consume a sequence number.
        """
        self.accepted_batches += batches
        if command[0] != "snap":
            self._seq += 1
            self._backlog.append((self._seq, batches, records))

    async def snap(self):
        """Barrier + state fetch: the shard database after everything
        enqueued before this call has folded.  Returns the database."""
        token = self._next_token
        self._next_token += 1
        future = self.loop.create_future()
        self._pending[token] = future
        await self.put_blocking(("snap", token), batches=0, records=0)
        blob = await future
        database, _counters = pickle.loads(blob)
        self.total_samples = database.total_samples
        self.evicted_samples = database.evicted_samples
        self.bucket_count = database.bucket_count
        return database

    async def snap_retry(self):
        """:meth:`snap`, absorbing one worker death mid-barrier."""
        for _attempt in range(2):
            try:
                return await self.snap()
            except WorkerRestarted:
                continue
        raise ServiceError("shard worker %d keeps dying under barrier"
                           % self.index)

    def queue_depth(self):
        try:
            return self._queue.qsize()
        except (NotImplementedError, OSError):
            return -1


class LocalShardWorker:
    """Same interface, no processes: an asyncio queue + task in-loop.

    The inline fallback (``ProfileServer(workers=False)``): identical
    :class:`ShardFolder`, identical accounting, so the two modes fold
    identically — only where the CPU burns differs.
    """

    def __init__(self, index, keep_addresses=0, queue_size=64,
                 fold_delay=0.0, loop=None, rollup_interval=0,
                 retain_buckets=0):
        self.index = index
        self.loop = loop or asyncio.get_event_loop()
        self.fold_delay = fold_delay
        self.folder = ShardFolder(keep_addresses=keep_addresses,
                                  rollup_interval=rollup_interval,
                                  retain_buckets=retain_buckets)
        self.accepted_batches = 0
        self.dropped_batches = 0
        self.dropped_records = 0
        self.fold_error_batches = 0
        self.fold_error_records = 0
        self.restarts = 0
        self.counters = _fresh_counters()
        self.total_samples = 0
        self._queue = asyncio.Queue(maxsize=queue_size)
        self._task = asyncio.ensure_future(self._run())

    # The inline flavour owns its database, so the rollup accounting
    # reads live (the process flavour refreshes these at each snap).
    @property
    def evicted_samples(self):
        return self.folder.database.evicted_samples

    @property
    def bucket_count(self):
        return self.folder.database.bucket_count

    async def _run(self):
        while True:
            command = await self._queue.get()
            try:
                if command[0] == "snap":
                    self.folder.flush()
                    future = command[1]
                    if not future.done():
                        future.set_result(self.folder.database)
                    continue
                if self.fold_delay:
                    await asyncio.sleep(self.fold_delay)
                try:
                    _apply_fold_command(self.folder, self.counters,
                                        command, 0.0)
                except ProtocolError:
                    self.fold_error_batches += 1
                    self.fold_error_records += command[-1] \
                        if isinstance(command[-1], int) else 0
                    self.counters["fold_errors"] += 1
            finally:
                self._queue.task_done()

    async def stop(self):
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        # Cancelling the fold task strands whatever is still queued.
        # Those commands were accepted (accounted in accepted_batches)
        # and will never fold — count them as dropped, mirroring what
        # the process flavour does for a terminated worker's backlog.
        while True:
            try:
                command = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if command[0] == "snap":
                future = command[1]
                if not future.done():
                    future.set_exception(WorkerRestarted(
                        "shard worker %d stopped under barrier"
                        % self.index))
                continue
            self.dropped_batches += 1
            self.dropped_records += command[-1] \
                if isinstance(command[-1], int) else 0

    def offer(self, command, batches=1, records=0):
        try:
            self._queue.put_nowait(command)
        except asyncio.QueueFull:
            self.dropped_batches += batches
            self.dropped_records += records
            return False
        self.accepted_batches += batches
        return True

    async def put_blocking(self, command, batches=1, records=0):
        await self._queue.put(command)
        self.accepted_batches += batches

    async def snap(self):
        future = self.loop.create_future()
        await self._queue.put(("snap", future))
        database = await future
        self.total_samples = database.total_samples
        return database

    async def snap_retry(self):
        return await self.snap()

    def queue_depth(self):
        return self._queue.qsize()


def make_workers(count, workers=True, keep_addresses=0, queue_size=64,
                 fold_delay=0.0, loop=None, rollup_interval=0,
                 retain_buckets=0):
    cls = ProcessShardWorker if workers else LocalShardWorker
    return [cls(index, keep_addresses=keep_addresses, queue_size=queue_size,
                fold_delay=fold_delay, loop=loop,
                rollup_interval=rollup_interval,
                retain_buckets=retain_buckets)
            for index in range(count)]


def worker_pid(worker):
    """The worker's OS pid (None for the inline flavour) — the handle
    the fault-injection tests SIGKILL."""
    process = getattr(worker, "process", None)
    return process.pid if process is not None else None


def kill_worker(worker):
    """SIGKILL the worker process (test fault injection)."""
    pid = worker_pid(worker)
    if pid is not None:
        os.kill(pid, 9)
