"""One-call simulation sessions: program + machine + profilers.

The harness wires the standard experiment stack together::

    run = run_profiled(program, profile=ProfileMeConfig(mean_interval=200))
    run.database.top_by_event(Event.DCACHE_MISS)

and is what the examples and benchmark harnesses use, so every experiment
builds its machine the same way.  Since the engine refactor these entry
points are thin wrappers over :mod:`repro.engine.session` — build a
:class:`~repro.engine.session.SessionSpec` directly for sweeps, SMT or
multiprogram sessions, or parallel execution via
:func:`repro.engine.parallel.run_sessions_parallel`.
"""

from dataclasses import dataclass
from typing import Optional

from repro.analysis.concurrency import PairAnalyzer
from repro.analysis.database import ProfileDatabase
from repro.analysis.groundtruth import GroundTruthCollector
from repro.engine.session import (CounterRun, SessionSpec, build_core,
                                  run_session)
from repro.profileme.driver import ProfileMeDriver
from repro.profileme.unit import ProfileMeConfig, ProfileMeUnit

__all__ = ["CounterRun", "ProfiledRun", "make_core", "run_profiled",
           "run_with_counter"]


def make_core(program, core_kind="ooo", config=None):
    """Instantiate a core ("ooo" or "inorder") for *program*."""
    return build_core(program, core_kind=core_kind, config=config)


@dataclass
class ProfiledRun:
    """Everything a ProfileMe session produced."""

    program: object
    core: object
    cycles: int
    unit: Optional[ProfileMeUnit]
    driver: Optional[ProfileMeDriver]
    database: Optional[ProfileDatabase]
    pair_analyzer: Optional[PairAnalyzer]
    truth: Optional[GroundTruthCollector]

    @property
    def records(self):
        return self.driver.records if self.driver else []

    @property
    def pairs(self):
        return self.driver.pairs if self.driver else []


def run_profiled(program, profile=None, config=None, core_kind="ooo",
                 collect_truth=False, truth_options=None, keep_addresses=0,
                 keep_records=True, max_cycles=None, max_retired=None):
    """Run *program* with ProfileMe attached; return a :class:`ProfiledRun`.

    Args:
        profile: ProfileMeConfig (defaults to single-instruction sampling
            every 1000 fetched instructions).
        config: MachineConfig override.
        core_kind: "ooo" (default) or "inorder".
        collect_truth: attach a GroundTruthCollector.
        truth_options: kwargs for the collector (intervals/series flags).
        keep_addresses: retained effective addresses per PC in the
            database (for the section 7 memory analyses).
        keep_records: keep raw records on the driver (disable for long
            runs where only aggregates matter).
    """
    result = run_session(SessionSpec(
        program=program, core_kind=core_kind, config=config,
        profile=profile or ProfileMeConfig(),
        collect_truth=collect_truth, truth_options=truth_options,
        keep_addresses=keep_addresses, keep_records=keep_records,
        max_cycles=max_cycles, max_retired=max_retired))
    return ProfiledRun(program=program, core=result.core,
                       cycles=result.cycles, unit=result.unit,
                       driver=result.driver, database=result.database,
                       pair_analyzer=result.pair_analyzer,
                       truth=result.truth)


def run_with_counter(program, counter_config, core_kind="ooo", config=None,
                     uninterruptible=None, max_cycles=None,
                     max_retired=None):
    """Run *program* with one event counter attached (the baseline).

    Returns a :class:`~repro.engine.session.CounterRun` carrying the
    core, the counter, and the cycle count; it unpacks as the historical
    ``(core, counter)`` tuple.
    """
    result = run_session(SessionSpec(
        program=program, core_kind=core_kind, config=config,
        counter=counter_config, uninterruptible=uninterruptible,
        max_cycles=max_cycles, max_retired=max_retired))
    return CounterRun(core=result.core, counter=result.counter,
                      cycles=result.cycles)
