"""One-call simulation sessions: program + machine + profilers.

The harness wires the standard experiment stack together::

    run = run_profiled(program, profile=ProfileMeConfig(mean_interval=200))
    run.database.top_by_event(Event.DCACHE_MISS)

and is what the examples and benchmark harnesses use, so every experiment
builds its machine the same way.
"""

from dataclasses import dataclass
from typing import Optional

from repro.analysis.concurrency import PairAnalyzer
from repro.analysis.database import ProfileDatabase
from repro.analysis.groundtruth import GroundTruthCollector
from repro.counters.counter import EventCounter
from repro.cpu.config import MachineConfig
from repro.cpu.inorder.core import InOrderCore
from repro.cpu.ooo.core import OutOfOrderCore
from repro.errors import ConfigError
from repro.profileme.driver import ProfileMeDriver
from repro.profileme.unit import ProfileMeConfig, ProfileMeUnit


def make_core(program, core_kind="ooo", config=None):
    """Instantiate a core ("ooo" or "inorder") for *program*."""
    if core_kind == "ooo":
        return OutOfOrderCore(program,
                              config or MachineConfig.alpha21264_like())
    if core_kind == "inorder":
        return InOrderCore(program,
                           config or MachineConfig.alpha21164_like())
    raise ConfigError("unknown core kind %r" % (core_kind,))


@dataclass
class ProfiledRun:
    """Everything a ProfileMe session produced."""

    program: object
    core: object
    cycles: int
    unit: Optional[ProfileMeUnit]
    driver: Optional[ProfileMeDriver]
    database: Optional[ProfileDatabase]
    pair_analyzer: Optional[PairAnalyzer]
    truth: Optional[GroundTruthCollector]

    @property
    def records(self):
        return self.driver.records if self.driver else []

    @property
    def pairs(self):
        return self.driver.pairs if self.driver else []


def run_profiled(program, profile=None, config=None, core_kind="ooo",
                 collect_truth=False, truth_options=None, keep_addresses=0,
                 keep_records=True, max_cycles=None, max_retired=None):
    """Run *program* with ProfileMe attached; return a :class:`ProfiledRun`.

    Args:
        profile: ProfileMeConfig (defaults to single-instruction sampling
            every 1000 fetched instructions).
        config: MachineConfig override.
        core_kind: "ooo" (default) or "inorder".
        collect_truth: attach a GroundTruthCollector.
        truth_options: kwargs for the collector (intervals/series flags).
        keep_addresses: retained effective addresses per PC in the
            database (for the section 7 memory analyses).
        keep_records: keep raw records on the driver (disable for long
            runs where only aggregates matter).
    """
    profile = profile or ProfileMeConfig()
    core = make_core(program, core_kind=core_kind, config=config)

    driver = ProfileMeDriver(keep_records=keep_records)
    database = driver.add_sink(ProfileDatabase(keep_addresses=keep_addresses))
    pair_analyzer = None
    if profile.effective_group_size >= 2:
        pair_analyzer = driver.add_sink(PairAnalyzer(
            mean_interval=profile.mean_interval,
            pair_window=profile.pair_window,
            issue_width=core.config.issue_width))
    unit = ProfileMeUnit(profile, handler=driver.handle_interrupt)
    core.add_probe(unit)

    truth = None
    if collect_truth:
        truth = GroundTruthCollector(**(truth_options or {}))
        core.add_probe(truth)

    cycles = core.run(max_cycles=max_cycles, max_retired=max_retired)
    unit.finalize()
    return ProfiledRun(program=program, core=core, cycles=cycles, unit=unit,
                       driver=driver, database=database,
                       pair_analyzer=pair_analyzer, truth=truth)


def run_with_counter(program, counter_config, core_kind="ooo", config=None,
                     uninterruptible=None, max_cycles=None,
                     max_retired=None):
    """Run *program* with one event counter attached (the baseline).

    Returns (core, counter).
    """
    core = make_core(program, core_kind=core_kind, config=config)
    counter = EventCounter(counter_config, uninterruptible=uninterruptible)
    core.add_probe(counter)
    core.run(max_cycles=max_cycles, max_retired=max_retired)
    return core, counter
