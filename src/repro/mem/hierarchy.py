"""Two-level memory hierarchy: split L1 I/D + unified L2 + flat memory.

Every access returns ``(latency_cycles, events)`` where *events* is a
plain-int bit mask of :class:`~repro.events.Event` flags (int, not enum:
the cores fold these masks into per-instruction event fields millions of
times per run, and IntFlag's operators pay an enum lookup per ``|``);
the cores fold the events into the per-instruction record that ProfileMe
(or an event counter) observes.  Latencies are loosely calibrated to a late-90s Alpha system:
fast L1, ~12-cycle L2, ~80-cycle memory, ~30-cycle software TLB refill.

Warm-state contract: a :class:`MemoryHierarchy` instance is part of the
cross-engine warm state (:class:`repro.cpu.warm.WarmState`) — in
two-speed mode the functional fast-forward and the detailed OOO windows
share ONE instance, so all cache/TLB contents and hit/miss counters
accumulate across engine hand-offs.  The model is therefore stateful
only in ways both engines agree on: replacement state and the counters
in :meth:`MemoryHierarchy.stats`.
"""

from dataclasses import dataclass, field

from repro.events import Event
from repro.mem.cache import Cache, CacheConfig
from repro.mem.tlb import Tlb, TlbConfig

# Raw flag values for the int event masks returned by every access.
_L2_MISS = int(Event.L2_MISS)
_ITB_MISS = int(Event.ITB_MISS)
_ICACHE_MISS = int(Event.ICACHE_MISS)
_DTB_MISS = int(Event.DTB_MISS)
_DCACHE_MISS = int(Event.DCACHE_MISS)


@dataclass(frozen=True)
class HierarchyConfig:
    """All memory-system geometry and latency parameters."""

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1i", size_bytes=64 * 1024, line_bytes=64, associativity=2))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1d", size_bytes=64 * 1024, line_bytes=64, associativity=2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l2", size_bytes=2 * 1024 * 1024, line_bytes=64,
        associativity=4))
    itlb: TlbConfig = field(default_factory=lambda: TlbConfig(
        name="itlb", entries=64))
    dtlb: TlbConfig = field(default_factory=lambda: TlbConfig(
        name="dtlb", entries=128))

    l1_hit_latency: int = 2  # load-to-use on an L1 hit
    l2_hit_latency: int = 12
    memory_latency: int = 80
    tlb_miss_latency: int = 30  # software-refill style penalty
    ifetch_hit_latency: int = 0  # extra cycles on an L1I hit (pipelined away)


class MemoryHierarchy:
    """Latency/event model shared by both cores."""

    def __init__(self, config=None):
        self.config = config or HierarchyConfig()
        self.l1i = Cache(self.config.l1i)
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(self.config.l2)
        self.itlb = Tlb(self.config.itlb)
        self.dtlb = Tlb(self.config.dtlb)

    # ------------------------------------------------------------------

    def _miss_path(self, addr):
        """L2 lookup shared by I- and D-side L1 misses."""
        if self.l2.access(addr):
            return self.config.l2_hit_latency, 0
        return self.config.memory_latency, _L2_MISS

    def ifetch(self, addr):
        """Instruction fetch at *addr* -> (latency, events).

        Latency 0 means the fetch pipeline absorbs the access (steady-state
        hit); misses stall the fetcher for the returned number of cycles.
        """
        events = 0
        latency = self.config.ifetch_hit_latency
        if not self.itlb.access(addr):
            events |= _ITB_MISS
            latency += self.config.tlb_miss_latency
        if not self.l1i.access(addr):
            events |= _ICACHE_MISS
            extra, more = self._miss_path(addr)
            latency += extra
            events |= more
        return latency, events

    def dread(self, addr):
        """Data load at *addr* -> (latency, events)."""
        events = 0
        latency = self.config.l1_hit_latency
        if not self.dtlb.access(addr):
            events |= _DTB_MISS
            latency += self.config.tlb_miss_latency
        if not self.l1d.access(addr):
            events |= _DCACHE_MISS
            extra, more = self._miss_path(addr)
            latency += extra
            events |= more
        return latency, events

    def dwrite(self, addr):
        """Data store at *addr* -> (latency, events).

        Modelled write-allocate; the returned latency is the tag-check cost
        (stores complete into a write buffer and do not stall retirement).
        """
        events = 0
        latency = 1
        if not self.dtlb.access(addr):
            events |= _DTB_MISS
            latency += self.config.tlb_miss_latency
        if not self.l1d.access(addr):
            events |= _DCACHE_MISS
            _, more = self._miss_path(addr)
            events |= more
        return latency, events

    def stats(self):
        """Aggregate hit/miss counts for reporting."""
        return {
            "l1i": (self.l1i.hits, self.l1i.misses),
            "l1d": (self.l1d.hits, self.l1d.misses),
            "l2": (self.l2.hits, self.l2.misses),
            "itlb": (self.itlb.hits, self.itlb.misses),
            "dtlb": (self.dtlb.hits, self.dtlb.misses),
        }

    def register_probes(self, registry, prefix="mem"):
        """Expose every level under ``mem.<unit>.*``.

        Counters (hits/misses/accesses) plus the derived miss-rate
        fraction per unit; the reads close over the live units, so a
        registry snapshot always reflects the warm shared state.
        """
        for unit_name in ("l1i", "l1d", "l2", "itlb", "dtlb"):
            unit = getattr(self, unit_name)
            base = "%s.%s" % (prefix, unit_name)
            registry.register(base + ".hits",
                              lambda u=unit: u.hits,
                              kind="counter", unit="accesses",
                              description="%s hits" % unit_name)
            registry.register(base + ".misses",
                              lambda u=unit: u.misses,
                              kind="counter", unit="accesses",
                              description="%s misses" % unit_name)
            registry.register(base + ".accesses",
                              lambda u=unit: u.accesses,
                              kind="counter", unit="accesses",
                              description="%s total accesses" % unit_name)
            registry.register(base + ".miss_rate",
                              lambda u=unit: u.miss_rate,
                              kind="fraction", unit="ratio",
                              description="%s misses / accesses"
                              % unit_name)
