"""Fully-associative TLB model with LRU replacement.

Like the caches, the TLB tracks only which page translations are resident:
hit/miss is what the Profiled Event Register records (ITB/DTB miss bits)
and what the section 7 superpage/page-remapping policies consume.
"""

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.probes.props import ratio


@dataclass(frozen=True)
class TlbConfig:
    """Geometry of one TLB."""

    name: str
    entries: int = 128
    page_bytes: int = 8192

    def __post_init__(self):
        if self.entries < 1:
            raise ConfigError("%s: TLB needs >= 1 entry" % self.name)
        if self.page_bytes & (self.page_bytes - 1):
            raise ConfigError("%s: page size must be a power of two"
                              % self.name)


class Tlb:
    """Fully-associative translation buffer."""

    def __init__(self, config):
        self.config = config
        self._pages = []  # MRU-first list of resident page numbers
        self._page_shift = config.page_bytes.bit_length() - 1
        self.hits = 0
        self.misses = 0

    def page_of(self, addr):
        return addr >> self._page_shift

    def access(self, addr):
        """Translate *addr*; returns True on hit, fills on miss."""
        page = self.page_of(addr)
        if page in self._pages:
            if self._pages[0] != page:
                self._pages.remove(page)
                self._pages.insert(0, page)
            self.hits += 1
            return True
        self.misses += 1
        self._pages.insert(0, page)
        if len(self._pages) > self.config.entries:
            self._pages.pop()
        return False

    def invalidate_all(self):
        self._pages = []

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        return ratio(self.misses, self.accesses)
