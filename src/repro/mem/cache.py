"""Set-associative cache model with true-LRU replacement.

The model tracks tags only (no data): the simulators move architectural
values through registers and a sparse word memory, while the cache decides
*latency* and *events*.  That split is standard for cycle-level performance
models and is all ProfileMe observes — hit/miss events and latencies.
"""

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.probes.props import ratio


def _is_power_of_two(value):
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    associativity: int = 2

    def __post_init__(self):
        for field_name in ("size_bytes", "line_bytes", "associativity"):
            value = getattr(self, field_name)
            if not _is_power_of_two(value):
                raise ConfigError("%s.%s must be a power of two, got %r"
                                  % (self.name, field_name, value))
        if self.size_bytes < self.line_bytes * self.associativity:
            raise ConfigError("%s: size %d too small for %d-way %dB lines"
                              % (self.name, self.size_bytes,
                                 self.associativity, self.line_bytes))

    @property
    def num_sets(self):
        return self.size_bytes // (self.line_bytes * self.associativity)


class Cache:
    """One cache level.  ``access`` returns hit/miss and fills on miss."""

    def __init__(self, config):
        self.config = config
        self._sets = [[] for _ in range(config.num_sets)]
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self.hits = 0
        self.misses = 0

    def _locate(self, addr):
        line = addr >> self._line_shift
        return self._sets[line & self._set_mask], line

    def access(self, addr, fill=True):
        """Look up *addr*; return True on hit.

        On a miss with *fill*, the line is brought in, evicting the LRU way.
        MRU order is maintained by moving the hit tag to the list head.
        """
        ways, line = self._locate(addr)
        if line in ways:
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            self.hits += 1
            return True
        self.misses += 1
        if fill:
            ways.insert(0, line)
            if len(ways) > self.config.associativity:
                ways.pop()
        return False

    def probe(self, addr):
        """Non-destructive lookup: True if *addr* is resident (no LRU update)."""
        ways, line = self._locate(addr)
        return line in ways

    def invalidate_all(self):
        """Empty the cache (cold restart)."""
        self._sets = [[] for _ in range(self.config.num_sets)]

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        return ratio(self.misses, self.accesses)
