"""Memory-system substrate: caches, TLBs, and the combined hierarchy."""

from repro.mem.cache import Cache, CacheConfig
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.mem.tlb import Tlb, TlbConfig

__all__ = [
    "Cache",
    "CacheConfig",
    "HierarchyConfig",
    "MemoryHierarchy",
    "Tlb",
    "TlbConfig",
]
