"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ProgramError(ReproError):
    """A program is malformed (bad label, bad operand, unresolved target)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This always indicates a bug in the model (or a malformed program that
    slipped through validation), never an expected runtime condition.
    """


class ConfigError(ReproError):
    """A machine or profiler configuration is invalid."""


class AnalysisError(ReproError):
    """A profile analysis was asked to do something impossible."""


class RelocationError(AnalysisError):
    """A program cannot be safely relocated.

    Raised by the relocation-safety validator
    (:mod:`repro.isa.relocation`) before any code-moving transformation
    (function reordering, instruction insertion) touches a program whose
    control flow depends on absolute code addresses.  ``pcs`` names the
    offending instructions so the error is actionable.
    """

    def __init__(self, message, pcs=()):
        super().__init__(message)
        self.pcs = tuple(pcs)


class PersistenceError(AnalysisError):
    """A stored profile/result document is unreadable or malformed.

    Raised for every load failure mode — unreadable file, corrupt or
    truncated JSON (an interrupted write), wrong format/version, missing
    fields — so callers never see a raw ``OSError``/``KeyError``/
    ``JSONDecodeError`` and a bad document can never load silently.
    Subclasses :class:`AnalysisError` so pre-existing handlers keep
    working.
    """


class ServiceError(ReproError):
    """The continuous-profiling service failed (server or client side)."""


class ProtocolError(ServiceError):
    """A wire frame violated the profiling-service protocol.

    Covers framing faults (truncated or oversized frames, non-JSON
    payloads), version mismatches, and malformed messages.
    """


class WorkerError(ReproError):
    """A worker process failed while executing one session spec.

    Raised in the *parent* process; the message carries the failing
    spec's index and repr plus the worker's formatted traceback, which
    multiprocessing would otherwise lose.
    """


class SweepError(ReproError):
    """A sweep was misconfigured or its checkpoint store is unusable."""
