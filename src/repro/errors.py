"""Exception types shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ProgramError(ReproError):
    """A program is malformed (bad label, bad operand, unresolved target)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This always indicates a bug in the model (or a malformed program that
    slipped through validation), never an expected runtime condition.
    """


class ConfigError(ReproError):
    """A machine or profiler configuration is invalid."""


class AnalysisError(ReproError):
    """A profile analysis was asked to do something impossible."""


class WorkerError(ReproError):
    """A worker process failed while executing one session spec.

    Raised in the *parent* process; the message carries the failing
    spec's index and repr plus the worker's formatted traceback, which
    multiprocessing would otherwise lose.
    """


class SweepError(ReproError):
    """A sweep was misconfigured or its checkpoint store is unusable."""
