"""The shared core skeleton: run loop, limits, and probe plumbing.

Every machine model subclasses :class:`CoreBase` and implements
:meth:`~CoreBase.advance` — its smallest schedulable step (one clock
cycle for the cycle-driven cores, one instruction for the greedy
in-order timing model).  Everything around that step is owned here:

* probe registration through a :class:`~repro.engine.bus.ProbeBus`;
* the run loop with ``max_cycles`` / ``max_retired`` limits;
* deadlock detection (retire-free cycle stretches raise loudly);
* fetch-stall requests (the profiling-interrupt cost model);
* resumable ``drain=False`` stepping for time-sliced scheduling.

Subclasses own their stage state and statistics (``halted``, ``fetched``,
``retired``, ``aborted``, ``mispredicts``) — aggregate machines like the
SMT model expose some of these as properties over their member cores,
which is why :class:`CoreBase` never assigns them itself.
"""

from repro.engine.bus import ProbeBus
from repro.errors import SimulationError


class CoreBase:
    """Common machinery for every execution substrate."""

    def __init__(self, config, context=0):
        self.config = config
        self.context = context  # hardware context id (SMT thread / process)
        self.bus = ProbeBus()
        self.cycle = 0
        self.next_seq = 0
        self.fetch_stall_until = 0
        self._last_retire_cycle = 0
        self._probe_registry = None  # built lazily by probe_registry()

    # ------------------------------------------------------------------
    # Observation.

    @property
    def probes(self):
        """All attached probes, in attach order."""
        return self.bus.probes

    def add_probe(self, probe):
        """Register a profiling/measurement probe."""
        self.bus.subscribe(probe)
        probe.attach(self)
        return probe

    def remove_probe(self, probe):
        """Detach *probe*, rebuilding the bus subscriber lists."""
        return self.bus.detach(probe)

    def probe_registry(self):
        """The core's introspection registry, built on first request.

        An unobserved machine never constructs it — the registry is the
        observation plane, not part of the machine — so the no-probe
        fast path stays untouched.  Providers beyond the core itself
        (counters, the ProfileMe unit, the service) register onto this
        same instance so one ``repro probes list`` sees everything.
        """
        if self._probe_registry is None:
            from repro.probes.registry import ProbeRegistry
            self._probe_registry = ProbeRegistry()
            self._register_probes(self._probe_registry)
        return self._probe_registry

    def _register_probes(self, registry):
        """Register this machine's full probe subtree.

        The default covers a single-context machine: the common core
        stats, the model-specific pipeline gauges, and the attached
        memory hierarchy / branch predictor (registered once, under
        their own global prefixes).  Aggregate machines (SMT) override
        this wholesale.
        """
        self._register_core_probes(registry)
        self._register_pipeline_probes(registry)
        hierarchy = getattr(self, "hierarchy", None)
        if hierarchy is not None:
            hierarchy.register_probes(registry)
        predictor = getattr(self, "predictor", None)
        if predictor is not None:
            predictor.register_probes(registry)

    def _register_core_probes(self, registry):
        """The ``cpu<ctx>.core.*`` subtree every model exposes identically."""
        prefix = "cpu%d.core" % self.context
        registry.register(prefix + ".cycles", lambda: self.cycle,
                          kind="counter", unit="cycles",
                          description="cycles simulated")
        registry.register(prefix + ".retired", lambda: self.retired,
                          kind="counter", unit="instructions",
                          description="instructions retired")
        registry.register(prefix + ".fetched", lambda: self.fetched,
                          kind="counter", unit="instructions",
                          description="instructions fetched")
        registry.register(prefix + ".aborted", lambda: self.aborted,
                          kind="counter", unit="instructions",
                          description="instructions aborted (squashed)")
        registry.register(prefix + ".mispredicts", lambda: self.mispredicts,
                          kind="counter", unit="branches",
                          description="mispredicted branches")
        registry.register(prefix + ".ipc", lambda: self.ipc,
                          kind="gauge", unit="instructions/cycle",
                          description="retired instructions per cycle")
        registry.register(prefix + ".halted", lambda: int(self.halted),
                          kind="gauge", unit="bool",
                          description="1 when the machine has halted")

    def _register_pipeline_probes(self, registry):
        """Model-specific structure gauges; the base model has none."""

    def request_fetch_stall(self, cycles):
        """Stall instruction fetch for *cycles* (profiling-interrupt cost)."""
        self.fetch_stall_until = max(self.fetch_stall_until,
                                     self.cycle + cycles)

    # ------------------------------------------------------------------
    # Run loop.

    def advance(self):
        """Advance the simulation by one schedulable step."""
        raise NotImplementedError

    def run(self, max_cycles=None, max_retired=None, deadlock_limit=20000,
            drain=True):
        """Simulate until the machine halts or a limit is reached.

        Returns the number of cycles simulated.  *deadlock_limit* bounds
        retire-free cycle stretches and turns scheduler bugs into loud
        failures rather than hangs (``None`` disables the check).  With
        ``drain=False`` in-flight instructions are left intact so the
        simulation can be resumed (time-sliced scheduling); architectural
        state is then only valid after a final draining run.
        """
        start_cycle = self.cycle
        while not self.halted:
            if (max_cycles is not None
                    and self.cycle - start_cycle >= max_cycles):
                break
            if max_retired is not None and self.retired >= max_retired:
                break
            self.advance()
            if (deadlock_limit is not None
                    and self.cycle - self._last_retire_cycle
                    > deadlock_limit):
                raise SimulationError(
                    self._deadlock_message(deadlock_limit))
        if drain:
            self._drain()
        return self.cycle - start_cycle

    def _deadlock_message(self, deadlock_limit):
        return ("no instruction retired for %d cycles at cycle %d"
                % (deadlock_limit, self.cycle))

    def _drain(self):
        """Dispose of in-flight state when the simulation stops."""

    # ------------------------------------------------------------------
    # Statistics.

    @property
    def ipc(self):
        if self.cycle == 0:
            return 0.0
        return self.retired / self.cycle
