"""Resumable, fault-tolerant sweeps with content-addressed result caching.

The paper's results (sections 4-6) all come from *sweeps* — grids of
sessions over sampling intervals, seeds, workloads, and pairing
configurations — and DCPI-style continuous profiling assumes collection
survives interruption and accumulates across runs.  This module is the
sweep engine those experiments run on, one layer above
:func:`~repro.engine.parallel.run_sessions_parallel`:

* **Content-addressed result cache.**  :func:`spec_key` hashes the
  canonical form of a :class:`~repro.engine.session.SessionSpec`
  (program text, core/profile/counter configs, limits, seeds — see
  ``SessionSpec.canonical``).  A :class:`ResultStore` maps that key to a
  versioned-JSON result document, so re-running a sweep only simulates
  specs whose key is absent and a cache hit is byte-identical to a
  fresh run.

* **Fault tolerance.**  Each spec runs in its own worker process with a
  per-attempt *timeout*; a raise, hang, or outright worker death
  (SIGKILL) is confined to that spec: it is retried on a fresh worker
  up to *retries* extra times and then recorded in the
  :class:`SweepResult` with status ``failed``/``timeout`` and the
  captured worker traceback.  One bad spec never poisons the pool or
  aborts the remaining specs.

* **Checkpointed resume.**  Specs are sharded into chunks; every
  completed chunk is flushed through the versioned-JSON persistence
  layer (:mod:`repro.analysis.persistence`, atomic rename per file)
  into the store.  A sweep killed between chunks loses at most the
  in-flight chunk: re-running with the same store (``repro sweep
  --resume <dir>``) loads finished specs as ``cached`` and simulates
  only the rest.

* **Progress/metrics hook.**  A *progress* callable receives structured
  events (spec finished, retry, chunk flushed) plus the live
  :class:`SweepMetrics` (done/ok/failed/timeout/cached counts, retries,
  simulated cycles per second) — the CLI prints them, tests import
  them.

Determinism: specs carry explicit seeds, so results are independent of
worker count, chunking, and completion order; ``tests/engine/
test_sweep.py`` verifies sweep output byte-equal to serial execution.
"""

import json
import hashlib
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_ready
from typing import Any, Dict, List, Optional

from repro.analysis.persistence import (result_from_dict, result_to_dict,
                                        save_result)
from repro.engine.parallel import _pool_context
from repro.engine.session import run_session
from repro.errors import PersistenceError, SweepError

STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_CACHED = "cached"


def spec_key(spec):
    """Content hash of a session spec: SHA-256 over its canonical JSON.

    Two specs get the same key iff they would simulate identically —
    the hash is taken over ``SessionSpec.canonical()`` serialized with
    sorted keys, so dict insertion order, container flavour, and the
    presentation-only ``label`` field never change it, while any seed,
    interval, limit, config, or program-text change does.
    """
    text = json.dumps(spec.canonical(), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultStore:
    """Directory of cached results, one JSON document per spec key.

    Layout::

        <root>/manifest.json            sweep-level metadata
        <root>/results/<spec_key>.json  one repro-session-result each

    Files are written atomically (temp + rename), so the store is never
    observed half-written even if the sweep process is killed
    mid-flush; a result file either exists complete or not at all.
    The same directory serves as both cache and checkpoint: resuming is
    nothing more than running the same sweep against the same store.
    """

    def __init__(self, root):
        self.root = str(root)
        self.results_dir = os.path.join(self.root, "results")
        os.makedirs(self.results_dir, exist_ok=True)

    def path_for(self, key):
        return os.path.join(self.results_dir, key + ".json")

    def has(self, key):
        return os.path.exists(self.path_for(key))

    def keys(self):
        return sorted(name[:-len(".json")]
                      for name in os.listdir(self.results_dir)
                      if name.endswith(".json"))

    def __len__(self):
        return len(self.keys())

    def load_payload(self, key):
        """Return the raw JSON document stored under *key*."""
        try:
            with open(self.path_for(key)) as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            raise KeyError(key) from None
        except ValueError as exc:  # corrupt store entry: fail loudly
            raise SweepError("corrupt store entry %s: %s"
                             % (self.path_for(key), exc)) from exc
        stored_key = payload.get("spec_key")
        if stored_key is not None and stored_key != key:
            raise SweepError("store entry %s holds a result for spec %s"
                             % (key, stored_key))
        return payload

    def load(self, key, spec=None):
        """Return the stored result as a detached SessionResult."""
        return result_from_dict(self.load_payload(key), spec=spec)

    def store(self, key, payload):
        save_result(payload, self.path_for(key), spec_key=key)

    def write_manifest(self, metrics=None):
        manifest = {"format": "repro-sweep-checkpoint", "version": 1,
                    "results": len(self)}
        if metrics is not None:
            manifest["last_run"] = metrics.snapshot()
        tmp = os.path.join(self.root, "manifest.json.tmp.%d" % os.getpid())
        with open(tmp, "w") as stream:
            json.dump(manifest, stream, indent=1, sort_keys=True)
        os.replace(tmp, os.path.join(self.root, "manifest.json"))


@dataclass
class SweepMetrics:
    """Live sweep accounting, exposed to the progress hook and the CLI."""

    total: int = 0
    done: int = 0
    ok: int = 0
    failed: int = 0
    timeouts: int = 0
    cached: int = 0
    retries: int = 0
    simulated_cycles: int = 0
    # Profile-volume accounting across fresh (non-cached) results: how
    # many samples the sweep's databases folded, and how many a bounded
    # retention cap (SessionSpec.retain_buckets) evicted again.  A sweep
    # whose evicted count is nonzero produced *approximate* aggregates.
    folded_samples: int = 0
    evicted_samples: int = 0
    persist_failures: int = 0  # checkpoint writes that failed (see flush)
    elapsed_seconds: float = 0.0

    @property
    def cache_hits(self):
        return self.cached

    @property
    def cycles_per_second(self):
        """Fresh-simulation throughput (cached specs cost no cycles)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.simulated_cycles / self.elapsed_seconds

    def snapshot(self):
        data = {f: getattr(self, f) for f in (
            "total", "done", "ok", "failed", "timeouts", "cached",
            "retries", "simulated_cycles", "folded_samples",
            "evicted_samples", "persist_failures", "elapsed_seconds")}
        data["cycles_per_second"] = self.cycles_per_second
        return data


@dataclass
class SpecOutcome:
    """What happened to one spec: status, result or error, attempts."""

    index: int
    spec: Any
    key: str
    status: str
    result: Any = None  # detached SessionResult for ok/cached
    payload: Optional[Dict] = None  # canonical JSON document for ok/cached
    error: Optional[str] = None  # formatted traceback / kill description
    attempts: int = 0  # simulation attempts (0 for cached)


@dataclass
class SweepResult:
    """All outcomes of one sweep, in spec order, plus final metrics."""

    outcomes: List[SpecOutcome]
    metrics: SweepMetrics

    @property
    def results(self):
        """Detached results in spec order (None for failed/timeout)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def statuses(self):
        return [outcome.status for outcome in self.outcomes]

    def completed(self):
        return [o for o in self.outcomes
                if o.status in (STATUS_OK, STATUS_CACHED)]

    def failures(self):
        return [o for o in self.outcomes
                if o.status in (STATUS_FAILED, STATUS_TIMEOUT)]


# ----------------------------------------------------------------------
# Worker side.


def _default_runner(spec):
    return run_session(spec)


def _sweep_worker(conn, runner, spec):
    """Run one spec in a child process; ship back (status, value).

    Everything that can go wrong inside the runner is converted to data
    — the parent decides about retries.  If the *result* cannot cross
    the pipe (unpicklable), that too comes back as an error rather than
    a silent hang.
    """
    try:
        result = runner(spec)
        if hasattr(result, "detach"):
            result = result.detach()
        message = (STATUS_OK, result)
    except BaseException:
        message = ("error", traceback.format_exc())
    try:
        conn.send(message)
    except (OSError, ValueError, TypeError, AttributeError):
        # Pickling the result failed (ValueError/TypeError/AttributeError
        # from pickle) or the pipe broke mid-send (OSError).  Ship the
        # traceback instead so the parent records a failure, not a hang.
        try:
            conn.send(("error", "result not picklable:\n"
                       + traceback.format_exc()))
        except OSError:
            # The pipe itself is gone.  Nothing can cross it, but this is
            # not silent: the parent sees EOF on the connection and
            # records the spec as failed ("worker died without a reply").
            pass
    finally:
        conn.close()


@dataclass
class _Attempt:
    """One in-flight worker process for one spec."""

    index: int
    spec: Any
    attempts: int  # including this one
    process: Any
    conn: Any
    deadline: Optional[float]


# ----------------------------------------------------------------------
# Parent side.


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start:start + size]


def _run_chunk_inline(tasks, retries, runner, finish, emit):
    """Serial in-process execution (workers<=1, no timeout to enforce)."""
    for index, spec in tasks:
        attempts = 0
        while True:
            attempts += 1
            try:
                result = runner(spec)
                if hasattr(result, "detach"):
                    result = result.detach()
                finish(index, spec, STATUS_OK, attempts, result=result)
                break
            except Exception:
                error = traceback.format_exc()
                if attempts <= retries:
                    emit({"kind": "retry", "index": index,
                          "attempts": attempts, "error": error})
                    continue
                finish(index, spec, STATUS_FAILED, attempts, error=error)
                break


def _run_chunk_processes(tasks, workers, timeout, retries, ctx, runner,
                         finish, emit):
    """Run one chunk's specs across dedicated worker processes.

    Each attempt gets a *fresh* process (no shared pool state to
    poison) and a private pipe.  A worker that raises reports an error;
    one that exceeds *timeout* is terminated; one that dies without
    reporting (killed mid-chunk, OOM) is detected via pipe EOF plus
    exit code.  All three outcomes feed the same retry path.
    """
    pending = deque(tasks)  # (index, spec, attempts_so_far)
    live = {}  # recv conn -> _Attempt

    def _failure(attempt, status, error):
        if attempt.attempts <= retries:
            emit({"kind": "retry", "index": attempt.index,
                  "attempts": attempt.attempts, "error": error})
            pending.append((attempt.index, attempt.spec, attempt.attempts))
            return
        final = STATUS_TIMEOUT if status == STATUS_TIMEOUT else STATUS_FAILED
        finish(attempt.index, attempt.spec, final, attempt.attempts,
               error=error)

    while pending or live:
        while pending and len(live) < workers:
            index, spec, attempts = pending.popleft()
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(target=_sweep_worker,
                                  args=(send_conn, runner, spec),
                                  daemon=True)
            process.start()
            send_conn.close()  # keep exactly one writer: EOF means death
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            live[recv_conn] = _Attempt(index=index, spec=spec,
                                       attempts=attempts + 1,
                                       process=process, conn=recv_conn,
                                       deadline=deadline)

        if timeout is None:
            wait_for = None
        else:
            now = time.monotonic()
            wait_for = max(0.0, min(a.deadline for a in live.values()) - now)
        for conn in _wait_ready(list(live), timeout=wait_for):
            attempt = live.pop(conn)
            try:
                status, value = conn.recv()
            except (EOFError, OSError):
                attempt.process.join()
                conn.close()
                _failure(attempt, STATUS_FAILED,
                         "worker died without reporting a result "
                         "(exit code %s)" % attempt.process.exitcode)
                continue
            conn.close()
            attempt.process.join()
            if status == STATUS_OK:
                finish(attempt.index, attempt.spec, STATUS_OK,
                       attempt.attempts, result=value)
            else:
                _failure(attempt, STATUS_FAILED, value)

        if timeout is not None:
            now = time.monotonic()
            for conn, attempt in list(live.items()):
                if attempt.deadline is not None and now >= attempt.deadline:
                    live.pop(conn)
                    attempt.process.terminate()
                    attempt.process.join()
                    conn.close()
                    _failure(attempt, STATUS_TIMEOUT,
                             "timed out after %.3fs (attempt %d)"
                             % (timeout, attempt.attempts))


def run_sweep(specs, workers=None, timeout=None, retries=1, store=None,
              chunk_size=None, progress=None, runner=None):
    """Run every spec; return a :class:`SweepResult` in spec order.

    Arguments:
        specs: session specs (anything with ``canonical()`` — normally
            :class:`~repro.engine.session.SessionSpec`).
        workers: concurrent worker processes; defaults to
            ``min(len(specs), cpu_count)``.  ``workers <= 1`` with no
            *timeout* runs inline (no processes), same as the parallel
            runner's serial path.
        timeout: per-attempt wall-clock seconds; a worker past its
            deadline is terminated.  Setting a timeout forces process
            isolation even for ``workers=1`` (an inline hang cannot be
            interrupted).
        retries: extra attempts (each on a fresh worker) after a
            failure, timeout, or worker death.
        store: a :class:`ResultStore` or directory path.  Specs whose
            key is already present load as ``cached`` without
            simulating; each completed chunk is flushed back, making
            the sweep resumable.
        chunk_size: specs per checkpoint chunk (default ``2 * workers``).
        progress: callable receiving event dicts (``kind`` in
            ``{"cached", "spec", "retry", "flush"}``) with the live
            :class:`SweepMetrics` under ``"metrics"``.
        runner: module-level callable ``spec -> SessionResult``
            replacing :func:`~repro.engine.session.run_session`
            (fault-injection tests use this; it must be picklable).
    """
    specs = list(specs)
    if retries < 0:
        raise SweepError("retries must be >= 0, got %d" % retries)
    if timeout is not None and timeout <= 0:
        raise SweepError("timeout must be positive, got %r" % (timeout,))
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    runner = runner or _default_runner

    metrics = SweepMetrics(total=len(specs))
    started = time.monotonic()
    emit = progress if progress is not None else (lambda event: None)

    def _emit(event):
        metrics.elapsed_seconds = time.monotonic() - started
        event["metrics"] = metrics
        emit(event)

    if not specs:
        return SweepResult(outcomes=[], metrics=metrics)

    if workers is None:
        workers = min(len(specs), os.cpu_count() or 1)
    workers = max(1, workers)
    if chunk_size is None:
        chunk_size = 2 * workers
    if chunk_size < 1:
        raise SweepError("chunk_size must be >= 1, got %d" % chunk_size)

    keys = [spec_key(spec) for spec in specs]
    outcomes = [None] * len(specs)

    # Phase 1: resolve cache hits (the resume path).
    for index, (spec, key) in enumerate(zip(specs, keys)):
        if store is None or not store.has(key):
            continue
        payload = store.load_payload(key)
        outcomes[index] = SpecOutcome(
            index=index, spec=spec, key=key, status=STATUS_CACHED,
            result=result_from_dict(payload, spec=spec),
            payload=payload, attempts=0)
        metrics.cached += 1
        metrics.done += 1
        _emit({"kind": "cached", "index": index, "key": key})

    def finish(index, spec, status, attempts, result=None, error=None):
        payload = None
        if status == STATUS_OK:
            payload = result_to_dict(result, spec_key=keys[index])
            metrics.ok += 1
            metrics.simulated_cycles += result.cycles
            if result.database is not None:
                metrics.folded_samples += \
                    result.database.ingested_samples
                metrics.evicted_samples += \
                    result.database.evicted_samples
        elif status == STATUS_TIMEOUT:
            metrics.timeouts += 1
        else:
            metrics.failed += 1
        metrics.retries += attempts - 1
        metrics.done += 1
        outcomes[index] = SpecOutcome(
            index=index, spec=spec, key=keys[index], status=status,
            result=result, payload=payload, error=error, attempts=attempts)
        _emit({"kind": "spec", "index": index, "status": status,
               "attempts": attempts, "key": keys[index]})

    # Phase 2: simulate the missing specs, one checkpoint per chunk.
    todo = [index for index in range(len(specs)) if outcomes[index] is None]
    use_processes = workers > 1 or timeout is not None
    ctx = _pool_context() if use_processes else None
    for chunk in _chunks(todo, chunk_size):
        if use_processes:
            _run_chunk_processes(
                [(index, specs[index], 0) for index in chunk],
                workers, timeout, retries, ctx, runner, finish, _emit)
        else:
            _run_chunk_inline([(index, specs[index]) for index in chunk],
                              retries, runner, finish, _emit)
        if store is not None:
            # Checkpoint flush.  A write that fails here (disk full,
            # permissions, store directory removed) must not let the
            # sweep "succeed" with an unresumable checkpoint: each
            # failure is counted in the metrics and the chunk's flush
            # ends with a typed PersistenceError.  Only OSError is
            # caught — a bug in payload serialization should raise as
            # itself, not masquerade as a storage problem.
            stored = 0
            write_errors = []
            for index in chunk:
                outcome = outcomes[index]
                if outcome.status != STATUS_OK:
                    continue
                try:
                    store.store(outcome.key, outcome.payload)
                    stored += 1
                except OSError as exc:
                    metrics.persist_failures += 1
                    write_errors.append((outcome.key, exc))
                    _emit({"kind": "persist_error", "key": outcome.key,
                           "error": str(exc)})
            try:
                store.write_manifest(metrics)
            except OSError as exc:
                metrics.persist_failures += 1
                write_errors.append(("manifest", exc))
                _emit({"kind": "persist_error", "key": "manifest",
                       "error": str(exc)})
            _emit({"kind": "flush", "stored": stored,
                   "chunk": [outcomes[i].key for i in chunk]})
            if write_errors:
                metrics.elapsed_seconds = time.monotonic() - started
                key, exc = write_errors[0]
                raise PersistenceError(
                    "checkpoint flush failed for %d write(s) (first: %s: %s)"
                    % (len(write_errors), key, exc)) from exc

    metrics.elapsed_seconds = time.monotonic() - started
    return SweepResult(outcomes=outcomes, metrics=metrics)
