"""Parallel session execution: fan independent specs across processes.

Simulation sessions are embarrassingly parallel — each
:class:`~repro.engine.session.SessionSpec` is self-contained and seeded,
so a sweep over sampling intervals, seeds, or workloads can use every
host core.  Results come back detached (simulator objects dropped,
profiles and statistics kept) and in spec order, so a parallel sweep is
a drop-in replacement for the serial loop it replaces::

    specs = [SessionSpec(program=prog,
                         profile=ProfileMeConfig(mean_interval=s, seed=i))
             for i, s in enumerate(intervals)]
    results = run_sessions_parallel(specs, workers=4)

Determinism: a spec's configs carry explicit seeds, so the same spec
produces the same profile in any process; ``run_sessions_parallel(specs,
workers=1)`` and ``workers=N`` are verified byte-equivalent in
``tests/engine/test_parallel.py``.
"""

import multiprocessing
import os
import traceback

from repro.engine.session import run_session
from repro.errors import WorkerError


def _run_one(payload):
    """Worker body: run one spec; never let an exception cross the pool.

    An exception raised inside ``imap_unordered`` reaches the parent as
    a bare re-raise with no hint of *which* spec failed (the traceback
    below the pool machinery is gone).  Catch it here and ship the spec
    index, repr, and formatted worker traceback back as data; the parent
    re-raises a :class:`WorkerError` carrying all three.
    """
    index, spec = payload
    try:
        return index, run_session(spec).detach(), None
    except Exception:
        return index, repr(spec), traceback.format_exc()


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_sessions_parallel(specs, workers=None):
    """Run every spec; return detached results in spec order.

    *workers* defaults to ``min(len(specs), cpu_count)``; ``workers <= 1``
    runs inline (no processes), which keeps single-session calls and
    restricted environments on the exact same code path.
    """
    specs = list(specs)
    if not specs:
        return []
    if workers is None:
        workers = min(len(specs), os.cpu_count() or 1)
    if workers <= 1 or len(specs) == 1:
        return [run_session(spec).detach() for spec in specs]

    results = [None] * len(specs)
    with _pool_context().Pool(processes=workers) as pool:
        for index, result, failure in pool.imap_unordered(
                _run_one, list(enumerate(specs))):
            if failure is not None:
                raise WorkerError(
                    "spec %d (%s) failed in a worker process\n"
                    "--- worker traceback ---\n%s"
                    % (index, result, failure))
            results[index] = result
    return results
