"""Parallel session execution: fan independent specs across processes.

Simulation sessions are embarrassingly parallel — each
:class:`~repro.engine.session.SessionSpec` is self-contained and seeded,
so a sweep over sampling intervals, seeds, or workloads can use every
host core.  Results come back detached (simulator objects dropped,
profiles and statistics kept) and in spec order, so a parallel sweep is
a drop-in replacement for the serial loop it replaces::

    specs = [SessionSpec(program=prog,
                         profile=ProfileMeConfig(mean_interval=s, seed=i))
             for i, s in enumerate(intervals)]
    results = run_sessions_parallel(specs, workers=4)

Determinism: a spec's configs carry explicit seeds, so the same spec
produces the same profile in any process; ``run_sessions_parallel(specs,
workers=1)`` and ``workers=N`` are verified byte-equivalent in
``tests/engine/test_parallel.py``.
"""

import multiprocessing
import os

from repro.engine.session import run_session


def _run_one(payload):
    index, spec = payload
    return index, run_session(spec).detach()


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_sessions_parallel(specs, workers=None):
    """Run every spec; return detached results in spec order.

    *workers* defaults to ``min(len(specs), cpu_count)``; ``workers <= 1``
    runs inline (no processes), which keeps single-session calls and
    restricted environments on the exact same code path.
    """
    specs = list(specs)
    if not specs:
        return []
    if workers is None:
        workers = min(len(specs), os.cpu_count() or 1)
    if workers <= 1 or len(specs) == 1:
        return [run_session(spec).detach() for spec in specs]

    results = [None] * len(specs)
    with _pool_context().Pool(processes=workers) as pool:
        for index, result in pool.imap_unordered(_run_one,
                                                 list(enumerate(specs))):
            results[index] = result
    return results
