"""Parallel session execution: fan independent specs across processes.

Simulation sessions are embarrassingly parallel — each
:class:`~repro.engine.session.SessionSpec` is self-contained and seeded,
so a sweep over sampling intervals, seeds, or workloads can use every
host core.  Results come back detached (simulator objects dropped,
profiles and statistics kept) and in spec order, so a parallel sweep is
a drop-in replacement for the serial loop it replaces::

    specs = [SessionSpec(program=prog,
                         profile=ProfileMeConfig(mean_interval=s, seed=i))
             for i, s in enumerate(intervals)]
    results = run_sessions_parallel(specs, workers=4)

Determinism: a spec's configs carry explicit seeds, so the same spec
produces the same profile in any process; ``run_sessions_parallel(specs,
workers=1)`` and ``workers=N`` are verified byte-equivalent in
``tests/engine/test_parallel.py``.
"""

import multiprocessing
import os
import traceback

from repro.engine.session import run_session
from repro.errors import WorkerError


def _run_one(payload):
    """Worker body: run one spec; never let an exception cross the pool.

    An exception raised inside ``imap_unordered`` reaches the parent as
    a bare re-raise with no hint of *which* spec failed (the traceback
    below the pool machinery is gone).  Catch it here and ship the spec
    index, repr, and formatted worker traceback back as data; the parent
    re-raises a :class:`WorkerError` carrying all three.
    """
    index, spec = payload
    try:
        return index, run_session(spec).detach(), None
    except Exception:
        return index, repr(spec), traceback.format_exc()


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_sessions_parallel(specs, workers=None):
    """Run every spec; return detached results in spec order.

    *workers* defaults to ``min(len(specs), cpu_count)``; ``workers <= 1``
    runs inline (no processes), which keeps single-session calls and
    restricted environments on the exact same code path.
    """
    specs = list(specs)
    if not specs:
        return []
    if workers is None:
        workers = min(len(specs), os.cpu_count() or 1)
    if workers <= 1 or len(specs) == 1:
        return [run_session(spec).detach() for spec in specs]

    results = [None] * len(specs)
    with _pool_context().Pool(processes=workers) as pool:
        for index, result, failure in pool.imap_unordered(
                _run_one, list(enumerate(specs))):
            if failure is not None:
                raise WorkerError(
                    "spec %d (%s) failed in a worker process\n"
                    "--- worker traceback ---\n%s"
                    % (index, result, failure))
            results[index] = result
    return results


# ----------------------------------------------------------------------
# Batched two-speed windows (repro.engine.twospeed batch mode).

# Per-worker shared context: (program, machine_config, profile).  Set by
# the pool initializer so each WindowPlan payload ships only the state
# that differs per window, not the program image every time.
_WINDOW_CONTEXT = None


def _init_window_worker(program, machine_config, profile):
    global _WINDOW_CONTEXT
    _WINDOW_CONTEXT = (program, machine_config, profile)


def _run_window_payload(plan):
    """Worker body: run one window; ship failures back as data."""
    from repro.engine.twospeed import run_window

    program, machine_config, profile = _WINDOW_CONTEXT
    try:
        return plan.index, run_window(program, machine_config, profile,
                                      plan), None
    except Exception:
        return plan.index, None, traceback.format_exc()


def run_windows(program, machine_config, profile, plans, workers=1):
    """Run planned two-speed windows; return results in plan order.

    Windows are independent (each plan carries private architectural
    and warm-state copies), so execution order and process placement
    cannot change results: ``workers=1`` runs inline and ``workers=N``
    fans across processes, and the two are byte-equivalent
    (``tests/engine/test_twospeed_batched.py``).
    """
    from repro.engine.twospeed import run_window

    plans = list(plans)
    if not plans:
        return []
    if workers is None:
        workers = min(len(plans), os.cpu_count() or 1)
    if workers <= 1 or len(plans) == 1:
        return [run_window(program, machine_config, profile, plan)
                for plan in plans]

    results = [None] * len(plans)
    with _pool_context().Pool(
            processes=min(workers, len(plans)),
            initializer=_init_window_worker,
            initargs=(program, machine_config, profile)) as pool:
        for index, result, failure in pool.imap_unordered(
                _run_window_payload, plans):
            if failure is not None:
                raise WorkerError(
                    "two-speed window %d failed in a worker process\n"
                    "--- worker traceback ---\n%s" % (index, failure))
            results[index] = result
    return results
