"""Per-callback probe dispatch.

The cores used to fan out every event with ``for probe in self.probes:
probe.on_x(...)`` — every attached probe paid a call per event even for
callbacks it never overrode, and the fan-out loop itself ran on events
nobody observed.  ``on_fetch_slots`` and ``on_cycle_end`` fire every
cycle, so that overhead sat directly on the simulator's hottest loop.

:class:`ProbeBus` inverts the dispatch: at attach time it inspects which
callbacks the probe actually implements and builds one subscriber list
per callback.  The cores iterate the (usually short, often empty) lists
of bound methods directly; an empty list means the core can skip not
just the dispatch but the *event construction* (e.g. building fetch-slot
objects nobody will look at).  This is the subscription-over-core
structure mature simulators use for introspection (cf. the Simics probe
framework).
"""

from repro.cpu.probes import Probe

# The complete observation interface, in pipeline order.
PROBE_CALLBACKS = ("on_fetch_slots", "on_issue", "on_retire", "on_abort",
                   "on_cycle_end")

# callback name -> ProbeBus attribute holding its subscriber list.
_LISTS = {
    "on_fetch_slots": "fetch_slots",
    "on_issue": "issue",
    "on_retire": "retire",
    "on_abort": "abort",
    "on_cycle_end": "cycle_end",
}


def probe_overrides(probe, name):
    """True if *probe* provides its own implementation of callback *name*.

    Both class-level overrides (the normal case) and instance-level
    callables are honoured; the no-op stubs on :class:`Probe` do not
    count.  Duck-typed probes that never subclass :class:`Probe` are
    supported: any callable they define is an implementation.
    """
    if name in getattr(probe, "__dict__", {}):
        return callable(getattr(probe, name))
    impl = getattr(type(probe), name, None)
    return impl is not None and impl is not getattr(Probe, name)


class ProbeBus:
    """Subscriber lists for each probe callback, built at attach time.

    The per-callback attributes (``fetch_slots``, ``issue``, ``retire``,
    ``abort``, ``cycle_end``) hold bound methods in attach order; cores
    iterate them directly on the hot path.  ``probes`` preserves the
    full attach-ordered probe list for introspection and compatibility.
    """

    __slots__ = ("probes", "fetch_slots", "issue", "retire", "abort",
                 "cycle_end")

    def __init__(self):
        self.probes = []
        self.fetch_slots = []
        self.issue = []
        self.retire = []
        self.abort = []
        self.cycle_end = []

    def subscribe(self, probe):
        """Register *probe*, wiring only the callbacks it implements."""
        self.probes.append(probe)
        for name, attr in _LISTS.items():
            if probe_overrides(probe, name):
                getattr(self, attr).append(getattr(probe, name))
        return probe

    def detach(self, probe):
        """Unregister *probe*, rebuilding every subscriber list.

        Detach is rare (a one-shot two-speed window probe tearing down,
        a watch session ending) so the lists are rebuilt wholesale from
        the surviving probes — attach order is preserved and the hot
        path keeps iterating plain lists of bound methods.  Detaching a
        probe that was never attached raises ``ValueError``: a double
        detach is a lifecycle bug worth hearing about.
        """
        self.probes.remove(probe)
        for name, attr in _LISTS.items():
            setattr(self, attr, [getattr(p, name) for p in self.probes
                                 if probe_overrides(p, name)])
        return probe

    def subscriptions(self, probe):
        """The callback names *probe* is subscribed to (for tests/tools)."""
        return tuple(name for name in PROBE_CALLBACKS
                     if probe_overrides(probe, name))

    def publish_fetch_slots(self, cycle, slots):
        for callback in self.fetch_slots:
            callback(cycle, slots)

    def publish_issue(self, dyninst, cycle):
        for callback in self.issue:
            callback(dyninst, cycle)

    def publish_retire(self, dyninst, cycle):
        for callback in self.retire:
            callback(dyninst, cycle)

    def publish_abort(self, dyninst, cycle):
        for callback in self.abort:
            callback(dyninst, cycle)

    def publish_cycle_end(self, cycle):
        for callback in self.cycle_end:
            callback(cycle)
