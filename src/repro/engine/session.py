"""Declarative simulation sessions: program + machine + observers.

A :class:`SessionSpec` fully describes one experiment — which programs
run, on which machine model, with which profiling hardware attached —
and :func:`run_session` turns it into a :class:`SessionResult`.  The
public harness entry points (``run_profiled``, ``run_with_counter``) and
the multiprogrammed session build on this layer, so there is exactly one
place that wires a machine to its observers.

Specs are plain picklable data: :func:`repro.engine.parallel.
run_sessions_parallel` ships them to worker processes and gets results
back, with all randomness pinned by the seeds the spec carries.
"""

import dataclasses
import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.analysis.concurrency import PairAnalyzer
from repro.analysis.database import ProfileDatabase
from repro.analysis.groundtruth import GroundTruthCollector
from repro.counters.counter import EventCounter
from repro.errors import ConfigError
from repro.profileme.driver import ProfileMeDriver
from repro.profileme.unit import ProfileMeConfig, ProfileMeUnit

CORE_KINDS = ("ooo", "inorder", "smt", "multiprog")


def build_core(program, core_kind="ooo", config=None, static_hints=None):
    """Instantiate a single-program core ("ooo" or "inorder").

    *static_hints* switches the fetch unit's direction predictor from
    the default dynamic gshare to a profile-hinted static predictor
    (:class:`repro.branch.predictors.StaticDirectionPredictor`): BTFN
    overridden by the given ``pc -> predicted_taken`` hints.  An empty
    mapping means pure BTFN; ``None`` (default) keeps gshare.
    """
    # Cores are imported lazily: they subclass repro.engine.CoreBase, so
    # importing them at module load would be circular.
    if core_kind == "ooo":
        from repro.cpu.config import MachineConfig
        from repro.cpu.ooo.core import OutOfOrderCore

        cfg = config or MachineConfig.alpha21264_like()
        return OutOfOrderCore(
            program, cfg,
            predictor=_static_predictor(program, cfg, static_hints))
    if core_kind == "inorder":
        from repro.cpu.config import MachineConfig
        from repro.cpu.inorder.core import InOrderCore

        cfg = config or MachineConfig.alpha21164_like()
        return InOrderCore(
            program, cfg,
            predictor=_static_predictor(program, cfg, static_hints))
    raise ConfigError("unknown core kind %r" % (core_kind,))


def _static_predictor(program, cfg, static_hints):
    """Build a static-direction BranchPredictor, or None for the default."""
    if static_hints is None:
        return None
    from repro.branch.predictors import (BranchPredictor,
                                         StaticDirectionPredictor)

    return BranchPredictor(
        cfg.predictor,
        direction=StaticDirectionPredictor(program,
                                           hints=dict(static_hints)))


# ----------------------------------------------------------------------
# ProfileMe wiring (shared by the harness, SMT, and multiprog sessions).


def profile_config_for_context(profile, context):
    """Clone *profile* for one hardware context of a multi-context run.

    The clone stamps the Profiled Context Register with *context* and
    decorrelates the sampling intervals with a per-context seed.
    """
    return dataclasses.replace(profile, context=context,
                               seed=profile.seed + 1000 * context)


@dataclass
class ProfileStack:
    """The standard software stack over one ProfileMe unit."""

    unit: ProfileMeUnit
    driver: ProfileMeDriver
    database: ProfileDatabase
    pair_analyzer: Optional[PairAnalyzer]


def attach_profileme(core, profile, keep_records=True, keep_addresses=0,
                     with_pairs=True, rollup_interval=0, retain_buckets=0):
    """Attach a ProfileMe unit plus driver/database/pair-analyzer stack.

    *with_pairs* controls whether a :class:`PairAnalyzer` sink is wired
    when the configuration samples groups (the multiprogrammed session
    keeps per-context databases only).  *rollup_interval* /
    *retain_buckets* configure the database's time-bucketed rollup
    plane: samples fold into per-interval buckets that age into coarser
    epochs, with the oldest evicted past the retention cap.
    """
    driver = ProfileMeDriver(keep_records=keep_records)
    database = driver.add_sink(ProfileDatabase(
        keep_addresses=keep_addresses, rollup_interval=rollup_interval,
        retain_buckets=retain_buckets))
    pair_analyzer = None
    if with_pairs and profile.effective_group_size >= 2:
        pair_analyzer = driver.add_sink(PairAnalyzer(
            mean_interval=profile.mean_interval,
            pair_window=profile.pair_window,
            issue_width=core.config.issue_width))
    unit = ProfileMeUnit(profile, handler=driver.handle_interrupt)
    core.add_probe(unit)
    return ProfileStack(unit=unit, driver=driver, database=database,
                        pair_analyzer=pair_analyzer)


# ----------------------------------------------------------------------
# Session description.


def canonical_value(value):
    """Reduce *value* to plain JSON-safe data with a stable meaning.

    Used by :meth:`SessionSpec.canonical` (and hence the sweep layer's
    content-addressed result cache): two values that would drive a
    simulation identically must reduce to equal structures, regardless
    of dict insertion order or container flavour (tuple vs list).

    Programs reduce to their *text* — name, entry, disassembly, labels,
    function extents, and initial memory — so a rebuilt-but-identical
    program hashes the same as the original object.
    """
    from repro.isa.program import Program

    if isinstance(value, Program):
        return {
            "name": value.name,
            "entry": value.entry,
            "text": [inst.disassemble() for inst in value.instructions],
            "labels": {name: addr for name, addr in value.labels.items()},
            "functions": {name: list(extent)
                          for name, extent in value.functions.items()},
            "initial_memory": {str(addr): word for addr, word
                               in value.initial_memory.items()},
        }
    if isinstance(value, enum.Enum):
        return value.name
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: canonical_value(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): canonical_value(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigError("cannot canonicalize %r (type %s) for hashing"
                      % (value, type(value).__name__))


@dataclass
class SessionSpec:
    """Everything needed to reproduce one simulation session.

    Exactly one of *program* (single-context kinds) or *programs*
    (``smt`` / ``multiprog``) is given.  All contained configs are plain
    frozen dataclasses, so a spec round-trips through pickle and its
    seeds make re-running it deterministic.
    """

    program: Any = None
    programs: Tuple[Any, ...] = ()
    core_kind: str = "ooo"
    config: Any = None  # MachineConfig
    profile: Optional[ProfileMeConfig] = None
    counter: Any = None  # CounterConfig
    uninterruptible: Optional[Sequence] = None
    collect_truth: bool = False
    truth_options: Optional[Dict] = None
    keep_addresses: int = 0
    keep_records: bool = True
    max_cycles: Optional[int] = None
    max_retired: Optional[int] = None
    quantum: int = 200  # multiprog scheduling slice
    partition: bool = True  # smt window partitioning
    # Profile-guided static branch hints (single-context kinds only).
    # None keeps the dynamic gshare direction predictor; a tuple of
    # (pc, predicted_taken) pairs switches the fetch unit to a static
    # predictor — BTFN overridden by the hints, () meaning pure BTFN.
    # The PGO measurement protocol compares ()-baseline vs hinted runs
    # so the transformation is isolated from the predictor class.
    static_branch_hints: Optional[Tuple[Tuple[int, int], ...]] = None
    # Execution engine: "detailed" simulates every instruction cycle-level;
    # "two-speed" fast-forwards between samples and runs bounded detailed
    # windows of `window` retired instructions around each sample point
    # (repro.engine.twospeed).
    exec_mode: str = "detailed"
    window: int = 2000
    # Batched two-speed windows: one functional pass plans every
    # detailed window, then the windows run independently (serially or
    # across `window_workers` processes) and merge in order.  Changes
    # what is simulated (windows start from functionally-warmed state
    # instead of chaining through the detailed core), so it is hashed —
    # but only when enabled, preserving every pre-existing spec_key.
    batch_windows: bool = False
    # Process fan-out for batched windows.  Pure execution detail: any
    # worker count produces byte-identical results, so it is never
    # hashed (like push_to, it cannot change what is simulated).
    window_workers: int = 1
    label: Optional[str] = None
    push_to: Optional[str] = None  # "host:port" profile-service address
    # Cycles between streamed probe-registry readings (0 = off).  With
    # push_to set, each reading is also shipped to the service; registry
    # reads are side-effect-free, so streaming never changes the run.
    probe_stream: int = 0
    # Wire protocol version requested when pushing (2 = binary, 1 =
    # JSON); like push_to, transport-only — it never changes results.
    push_wire: int = 2
    # Continuous-ingest rollup: fold samples into time buckets of this
    # many cycles (0 = one flat store, the classic shape), rolling
    # closed buckets into exponentially coarser epochs.  retain_buckets
    # caps live buckets; past it the oldest are evicted (and counted).
    # Both change what the result's database *contains*, so they are
    # hashed — but omitted when off, preserving pre-existing spec_keys.
    rollup_interval: int = 0
    retain_buckets: int = 0

    def __post_init__(self):
        if self.core_kind not in CORE_KINDS:
            raise ConfigError("unknown core kind %r" % (self.core_kind,))
        if self.core_kind in ("smt", "multiprog"):
            if not self.programs:
                raise ConfigError("%s sessions need `programs`"
                                  % self.core_kind)
        elif self.program is None:
            raise ConfigError("single-context sessions need `program`")
        if self.exec_mode not in ("detailed", "two-speed"):
            raise ConfigError("exec_mode must be 'detailed' or 'two-speed', "
                              "got %r" % (self.exec_mode,))
        if self.static_branch_hints is not None:
            if self.core_kind in ("smt", "multiprog"):
                raise ConfigError("static_branch_hints needs a "
                                  "single-context core (the static "
                                  "predictor is built from one program)")
            if self.exec_mode == "two-speed":
                raise ConfigError("static_branch_hints is not supported "
                                  "in two-speed mode (the fast-forward "
                                  "engine owns predictor construction)")
        if self.exec_mode == "two-speed":
            if self.core_kind != "ooo":
                raise ConfigError("two-speed mode requires core_kind='ooo'")
            if self.profile is None:
                raise ConfigError("two-speed mode needs a ProfileMeConfig: "
                                  "sample scheduling drives window placement")
            if self.window < 4:
                raise ConfigError("window must be >= 4, got %d" % self.window)
            if self.counter is not None or self.collect_truth:
                raise ConfigError("two-speed mode cannot attach counters or "
                                  "ground-truth probes: they would observe "
                                  "only the detailed windows")
            if self.max_cycles is not None:
                raise ConfigError("two-speed mode has no global cycle axis; "
                                  "use max_retired")
        elif self.batch_windows:
            raise ConfigError("batch_windows requires exec_mode='two-speed'")
        if self.window_workers < 1:
            raise ConfigError("window_workers must be >= 1, got %r"
                              % (self.window_workers,))
        if self.rollup_interval < 0:
            raise ConfigError("rollup_interval must be >= 0, got %r"
                              % (self.rollup_interval,))
        if self.retain_buckets < 0:
            raise ConfigError("retain_buckets must be >= 0, got %r"
                              % (self.retain_buckets,))
        if self.retain_buckets and not self.rollup_interval:
            raise ConfigError("retain_buckets requires rollup_interval")

    def resolved_programs(self):
        return tuple(self.programs) if self.programs else (self.program,)

    def canonical(self):
        """JSON-safe dict identifying what this spec *simulates*.

        Covers program text, core kind, machine/profile/counter configs,
        limits, and seeds — every field that can change a result.
        ``label`` is presentation-only and ``push_to`` is transport-only
        (where samples are additionally streamed, never what is
        simulated); both are deliberately excluded, so a relabelled or
        service-attached spec still hits the sweep layer's result cache.
        Dicts reduce order-independently (hashing serializes with sorted
        keys), so two specs built in different field orders are equal
        here iff they would simulate identically.

        Backward compatibility: the two-speed fields (``exec_mode``,
        ``window``) are omitted entirely in detailed mode, so every spec
        written before they existed keeps its pre-existing ``spec_key``
        and old sweep checkpoint caches stay valid.  ``window`` only
        affects two-speed runs, so omitting it for detailed specs is
        lossless.  ``static_branch_hints`` is likewise omitted when
        ``None`` (the dynamic-predictor default) for the same reason;
        hinted specs do change what is simulated, so a non-``None``
        value is hashed.
        """
        data = {}
        for spec_field in dataclasses.fields(self):
            # probe_stream is observation-only: registry reads are
            # side-effect-free, so a streamed run simulates identically
            # to an unstreamed one and must hit the same cache entry.
            if spec_field.name in ("label", "push_to", "probe_stream",
                                   "push_wire", "window_workers"):
                continue
            if (spec_field.name in ("exec_mode", "window", "batch_windows")
                    and self.exec_mode == "detailed"):
                continue
            # batch_windows changes window warm-up provenance, so it is
            # hashed when on — but omitted when off so chained two-speed
            # specs keep the spec_key they had before the field existed.
            if spec_field.name == "batch_windows" and not self.batch_windows:
                continue
            if (spec_field.name == "static_branch_hints"
                    and self.static_branch_hints is None):
                continue
            # Rollup changes the shape of the collected database, so it
            # is hashed when on — omitted when off so every flat-store
            # spec keeps the spec_key it had before the fields existed.
            if (spec_field.name in ("rollup_interval", "retain_buckets")
                    and not self.rollup_interval):
                continue
            data[spec_field.name] = canonical_value(
                getattr(self, spec_field.name))
        return data


@dataclass
class CoreStats:
    """Summary statistics surviving :meth:`SessionResult.detach`."""

    cycles: int
    retired: int
    fetched: int
    aborted: int
    mispredicts: int
    ipc: float

    @classmethod
    def from_core(cls, core, cycles):
        return cls(cycles=cycles,
                   retired=core.retired,
                   fetched=getattr(core, "fetched", 0),
                   aborted=getattr(core, "aborted", 0),
                   mispredicts=getattr(core, "mispredicts", 0),
                   ipc=core.ipc)


@dataclass
class SessionResult:
    """Everything one session produced."""

    spec: SessionSpec
    core: Any
    cycles: int
    stats: CoreStats
    unit: Optional[ProfileMeUnit] = None
    driver: Optional[ProfileMeDriver] = None
    database: Optional[ProfileDatabase] = None
    pair_analyzer: Optional[PairAnalyzer] = None
    truth: Optional[GroundTruthCollector] = None
    counter: Optional[EventCounter] = None
    multi: Any = None  # MultiProgramSession for core_kind="multiprog"
    sampling_stats: Any = None  # ProfileMeStats, populated by detach()
    two_speed: Any = None  # TwoSpeedStats for exec_mode="two-speed"
    # Final probe-registry snapshot: {name: {value, kind, unit,
    # description}}.  Plain data — survives detach() and persistence.
    probes: Optional[Dict] = None

    @property
    def label(self):
        return self.spec.label

    @property
    def records(self):
        return self.driver.records if self.driver else []

    @property
    def pairs(self):
        return self.driver.pairs if self.driver else []

    def detach(self):
        """Drop the simulator objects, keeping the measured outputs.

        After detaching, the result is cheap to pickle: the parallel
        runner calls this in the worker so only profiles, samples, and
        summary statistics cross the process boundary.
        """
        if self.unit is not None:
            self.sampling_stats = self.unit.stats
        self.core = None
        self.unit = None
        self.multi = None
        return self


@dataclass
class CounterRun:
    """Result of a counter-baseline run.

    Iterable for compatibility with the historical
    ``core, counter = run_with_counter(...)`` tuple unpacking, while
    also carrying the cycle count that the tuple silently dropped.
    """

    core: Any
    counter: EventCounter
    cycles: int

    def __iter__(self):
        return iter((self.core, self.counter))


# ----------------------------------------------------------------------
# Execution.


def run_session(spec):
    """Run *spec* to completion and return a :class:`SessionResult`."""
    if spec.exec_mode == "two-speed":
        # Imported lazily: the two-speed engine pulls in the OOO core.
        from repro.engine.twospeed import run_two_speed

        return run_two_speed(spec)
    if spec.core_kind == "multiprog":
        return _run_multiprog(spec)
    if spec.core_kind == "smt":
        from repro.cpu.smt import SmtCore

        core = SmtCore(list(spec.programs), config=spec.config,
                       partition=spec.partition)
    else:
        core = build_core(spec.program, core_kind=spec.core_kind,
                          config=spec.config,
                          static_hints=spec.static_branch_hints)

    stack = None
    push_sink = None
    if spec.profile is not None:
        stack = attach_profileme(core, spec.profile,
                                 keep_records=spec.keep_records,
                                 keep_addresses=spec.keep_addresses,
                                 rollup_interval=spec.rollup_interval,
                                 retain_buckets=spec.retain_buckets)
        if spec.push_to:
            # Stream live samples to a continuous-profiling service.
            # Imported lazily: most sessions never touch the service.
            from repro.service.client import ProfileClient, ServiceSink

            push_sink = stack.driver.add_sink(
                ServiceSink(ProfileClient(spec.push_to,
                                          wire=spec.push_wire)))
    counter = None
    if spec.counter is not None:
        counter = EventCounter(spec.counter,
                               uninterruptible=spec.uninterruptible)
        core.add_probe(counter)
    truth = None
    if spec.collect_truth:
        truth = GroundTruthCollector(**(spec.truth_options or {}))
        core.add_probe(truth)

    # The introspection plane: one registry spanning the core and every
    # attached observer.  Built after all observers attach so their
    # subtrees (profileme.*, counters.*) are enumerable too.
    registry = core.probe_registry()
    if stack is not None:
        stack.unit.register_probes(registry)
    if counter is not None:
        counter.register_probes(registry)
    streamer = None
    probe_client = None
    if spec.probe_stream:
        from repro.probes.stream import ProbeStreamer

        sink = None
        if spec.push_to:
            from repro.service.client import ProfileClient

            probe_client = ProfileClient(spec.push_to,
                                         wire=spec.push_wire)

            def sink(cycle, readings):
                probe_client.push_probes(readings, cycle)
        streamer = core.add_probe(
            ProbeStreamer(period=spec.probe_stream, sink=sink))

    if spec.core_kind == "smt":
        cycles = core.run(max_cycles=spec.max_cycles or 200_000,
                          max_retired=spec.max_retired)
    else:
        cycles = core.run(max_cycles=spec.max_cycles,
                          max_retired=spec.max_retired)
    if stack is not None:
        stack.unit.finalize()
    if push_sink is not None:
        push_sink.close()
    if streamer is not None:
        streamer.sample(core.cycle)  # final flush at the end cycle
    if probe_client is not None:
        probe_client.close()

    return SessionResult(
        spec=spec, core=core, cycles=cycles,
        stats=CoreStats.from_core(core, cycles),
        unit=stack.unit if stack else None,
        driver=stack.driver if stack else None,
        database=stack.database if stack else None,
        pair_analyzer=stack.pair_analyzer if stack else None,
        truth=truth, counter=counter,
        probes=registry.snapshot(refresh=True))


def _run_multiprog(spec):
    from repro.multiprog import MultiProgramSession

    session = MultiProgramSession(list(spec.programs),
                                  quantum=spec.quantum,
                                  config=spec.config,
                                  profile=spec.profile)
    cycles = session.run(max_total_cycles=spec.max_cycles or 5_000_000)
    database = session.merged_database() if spec.profile is not None else None
    if spec.push_to and database is not None:
        # Multiprog keeps per-context databases; ship the merged
        # aggregate as one document rather than replaying raw records.
        from repro.service.client import ProfileClient

        with ProfileClient(spec.push_to) as client:
            client.push_database(database.to_dict())
    # Aggregate stats across contexts.
    cores = [ctx.core for ctx in session.contexts]
    stats = CoreStats(
        cycles=cycles,
        retired=sum(c.retired for c in cores),
        fetched=sum(c.fetched for c in cores),
        aborted=sum(c.aborted for c in cores),
        mispredicts=sum(c.mispredicts for c in cores),
        ipc=(sum(c.retired for c in cores) / cycles) if cycles else 0.0)
    return SessionResult(spec=spec, core=None, cycles=cycles, stats=stats,
                         database=database, multi=session)
