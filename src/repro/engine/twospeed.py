"""Two-speed execution: functional fast-forward + detailed OOO windows.

ProfileMe samples are sparse (random intervals of thousands of fetches),
yet the detailed simulator pays full cycle-level cost for every
instruction between samples.  This engine pays it only where samples
land: the reference interpreter fast-forwards architecturally between
sample points while keeping the shared :class:`~repro.cpu.warm.WarmState`
(caches, TLBs, branch predictor, global history) warm, then hands the
architectural state to a fresh cycle-level
:class:`~repro.cpu.ooo.core.OutOfOrderCore` for a bounded *window* of
``spec.window`` retired instructions around each sample.  The window's
leading ``window // 4`` instructions are pipeline warm-up; the ProfileMe
unit is armed (one-shot) so the sample fires after that warm-up, with
full latency registers and paired-sample overlap captured by the real
hardware model.  When the window completes, the core's committed state
flows back into the interpreter and the engine warps to the next sample
point drawn from the same interval distribution the hardware unit would
have used.

Two documented approximations (see docs/architecture.md):

* inter-sample intervals are counted in *retired* instructions during
  fast-forward but in the configured fetch domain (fetched instructions
  or fetch opportunities) inside windows — the skip distance treats the
  two as equal;
* each window's first instructions run on a warm memory system and
  predictor but an empty pipeline, so latency effects that need more
  than the warm-up prefix to rebuild (a ROB full of in-flight misses at
  the sample point) are under-represented.

Sample points that would land inside an already-simulated window are
skipped and accounted as ``dropped_busy`` — the same free-running-counter
bias rule the hardware unit applies to selections landing on busy
register sets.
"""

import copy
import dataclasses

from repro.analysis.concurrency import PairAnalyzer
from repro.analysis.database import ProfileDatabase
from repro.branch.predictors import BranchPredictor
from repro.cpu.config import MachineConfig
from repro.cpu.ooo.core import OutOfOrderCore
from repro.cpu.tracecache import BlockCache
from repro.cpu.warm import WarmState, fast_forward
from repro.isa.interpreter import Interpreter
from repro.isa.state import Memory
from repro.mem.hierarchy import MemoryHierarchy
from repro.profileme.driver import ProfileMeDriver
from repro.profileme.registers import GroupRecord, PairedRecord
from repro.profileme.unit import ProfileMeStats, ProfileMeUnit
from repro.utils.rng import SamplingRng

# Fraction of each window spent rebuilding pipeline state before the
# sample fires: warmup = window // WARMUP_DIVISOR.
WARMUP_DIVISOR = 4


@dataclasses.dataclass
class TwoSpeedStats:
    """Accounting for one two-speed run.

    ``detailed_cycles`` is the only time axis that exists: fast-forward
    has no clock, so ``SessionResult.cycles`` (and record timestamps)
    count detailed-window cycles only, concatenated across windows.
    """

    windows: int = 0
    warmup: int = 0
    fast_forwarded: int = 0  # instructions retired by the interpreter
    detailed_retired: int = 0  # instructions retired inside windows
    detailed_cycles: int = 0
    skipped_samples: int = 0  # sample points inside already-run windows
    final_state: object = None  # ArchSnapshot at the end of the run

    @property
    def detailed_fraction(self):
        total = self.fast_forwarded + self.detailed_retired
        return self.detailed_retired / total if total else 0.0


def _rebase(sample, base):
    """Shift a delivered sample's timestamps onto the global cycle axis."""
    if base == 0:
        return sample
    if isinstance(sample, PairedRecord):
        return dataclasses.replace(
            sample,
            first=_rebase(sample.first, base),
            second=(_rebase(sample.second, base)
                    if sample.second is not None else None))
    if isinstance(sample, GroupRecord):
        return dataclasses.replace(
            sample,
            records=tuple(_rebase(record, base)
                          if record is not None else None
                          for record in sample.records))
    return dataclasses.replace(sample,
                               fetch_cycle=sample.fetch_cycle + base,
                               done_cycle=sample.done_cycle + base)


def _merge_unit_stats(total, window_stats):
    total.selections += window_stats.selections
    total.dropped_busy += window_stats.dropped_busy
    total.member_selections += window_stats.member_selections
    total.tagged += window_stats.tagged
    total.offpath_selections += window_stats.offpath_selections
    total.empty_selections += window_stats.empty_selections
    total.records_delivered += window_stats.records_delivered
    total.interrupts += window_stats.interrupts
    total.overhead_cycles += window_stats.overhead_cycles
    total.max_concurrent_groups = max(total.max_concurrent_groups,
                                      window_stats.max_concurrent_groups)


def run_two_speed(spec):
    """Run *spec* in two-speed mode; returns a ``SessionResult``.

    Validation (ooo core, profile present, no counter/truth) happens in
    ``SessionSpec.__post_init__``; this function assumes a valid spec.
    """
    if spec.batch_windows:
        return _run_two_speed_batched(spec)
    # Imported here, not at module level: session.py imports this module
    # inside run_session, and the result types live there.
    from repro.engine.session import CoreStats, SessionResult

    profile = spec.profile
    program = spec.program
    machine_config = spec.config or MachineConfig.alpha21264_like()
    window = spec.window
    warmup = max(1, window // WARMUP_DIVISOR)

    warm = WarmState(
        hierarchy=MemoryHierarchy(machine_config.memory),
        predictor=BranchPredictor(machine_config.predictor))
    interp = Interpreter(program)
    # Decoded-block trace cache: the fast-forward between windows is the
    # wall-clock bulk of a two-speed run; fused blocks cut it ~5-10x.
    cache = BlockCache(program)

    driver = ProfileMeDriver(keep_records=spec.keep_records)
    database = driver.add_sink(
        ProfileDatabase(keep_addresses=spec.keep_addresses))
    pair_analyzer = None
    if profile.effective_group_size >= 2:
        pair_analyzer = driver.add_sink(PairAnalyzer(
            mean_interval=profile.mean_interval,
            pair_window=profile.pair_window,
            issue_width=machine_config.issue_width))
    push_sink = None
    if spec.push_to:
        from repro.service.client import ProfileClient, ServiceSink

        push_sink = driver.add_sink(ServiceSink(ProfileClient(spec.push_to)))

    cycle_base = [0]  # mutable: the per-window handler closes over it

    def deliver(batch):
        base = cycle_base[0]
        driver.handle_interrupt([_rebase(sample, base) for sample in batch])

    scheduler_rng = SamplingRng(profile.seed)

    def next_interval():
        if profile.distribution == "geometric":
            return scheduler_rng.geometric_interval(profile.mean_interval)
        return scheduler_rng.interval(profile.mean_interval, profile.jitter)

    stats = TwoSpeedStats(warmup=warmup)
    unit_stats = ProfileMeStats()
    total_retired = 0
    fetched = aborted = mispredicts = 0
    max_retired = spec.max_retired
    state = interp.state

    countdown = next_interval()
    while not state.halted:
        if max_retired is not None and total_retired >= max_retired:
            break
        lead = countdown if countdown < warmup else warmup
        skip = countdown - lead
        if max_retired is not None:
            skip = min(skip, max_retired - total_retired)
        if skip:
            done = fast_forward(interp, warm, skip, cache=cache)
            total_retired += done
            stats.fast_forwarded += done
            if state.halted:
                break
        if max_retired is not None and total_retired >= max_retired:
            break

        core = OutOfOrderCore(program, config=machine_config,
                              hierarchy=warm.hierarchy,
                              predictor=warm.predictor, ghr=warm.ghr)
        core.inject_state(state.regs.snapshot(), state.memory, state.pc)
        # The unit's own rng only draws minor (intra-group) intervals in
        # one-shot mode; fork a stable per-window stream so window count
        # and order never perturb the major-interval draws above.
        window_profile = dataclasses.replace(
            profile, seed=scheduler_rng.fork(("window", stats.windows)).seed)
        unit = ProfileMeUnit(window_profile, handler=deliver,
                             auto_rearm=False)
        core.add_probe(unit)
        unit.arm_major_at(lead)

        limit = window
        if max_retired is not None:
            limit = min(limit, max_retired - total_retired)
        cycles = core.run(max_retired=limit)
        unit.finalize()
        _merge_unit_stats(unit_stats, unit.stats)
        cycle_base[0] += cycles

        stats.windows += 1
        stats.detailed_retired += core.retired
        stats.detailed_cycles += cycles
        total_retired += core.retired
        fetched += core.fetched
        aborted += core.aborted
        mispredicts += core.mispredicts

        # Hand the committed architectural state back to the interpreter.
        state.regs.load(core.architectural_registers())
        state.pc = core.committed_pc
        state.halted = core.halted
        interp.retired += core.retired
        warm.note_redirect()
        if core.halted:
            break

        # Next sample point, measured from the window's sample anchor.
        countdown = next_interval() - (core.retired - lead)
        while countdown <= 0:
            # The free-running counter would have fired inside the window
            # we already simulated; the selection is lost, not deferred.
            stats.skipped_samples += 1
            unit_stats.selections += 1
            unit_stats.dropped_busy += 1
            countdown += next_interval()

    if push_sink is not None:
        push_sink.close()

    stats.final_state = state.snapshot()
    cycles = stats.detailed_cycles
    ipc = (stats.detailed_retired / cycles) if cycles else 0.0
    core_stats = CoreStats(cycles=cycles, retired=total_retired,
                           fetched=fetched, aborted=aborted,
                           mispredicts=mispredicts, ipc=ipc)
    return SessionResult(
        spec=spec, core=None, cycles=cycles, stats=core_stats,
        unit=None, driver=driver, database=database,
        pair_analyzer=pair_analyzer, truth=None, counter=None,
        sampling_stats=unit_stats, two_speed=stats)


# ----------------------------------------------------------------------
# Batched windows: plan every detailed window in one functional pass,
# then run the windows independently (optionally across processes).


@dataclasses.dataclass
class WindowPlan:
    """Everything one detailed window needs to run in isolation.

    Captured during the planning pass: the architectural state at the
    window entry, a private deep copy of the warm microarchitectural
    state, and the window's sampling parameters.  Plans are plain
    picklable data, so they can ship to worker processes.
    """

    index: int
    snapshot: object  # ArchSnapshot at the window entry
    warm: object  # WarmState deep copy (private to this window)
    lead: int  # instructions until the armed sample fires
    limit: int  # retired-instruction budget for this window


@dataclasses.dataclass
class WindowResult:
    """What one detailed window produced (picklable, un-rebased)."""

    index: int
    cycles: int
    retired: int
    fetched: int
    aborted: int
    mispredicts: int
    records: list  # delivered samples on the window-local cycle axis
    unit_stats: object  # ProfileMeStats for this window


def run_window(program, machine_config, profile, plan):
    """Run one planned detailed window; returns a :class:`WindowResult`.

    Windows are independent by construction: each adopts its own memory
    copy and its own warm-state copy, so any execution order (or process
    placement) produces identical results.
    """
    warm = plan.warm
    core = OutOfOrderCore(program, config=machine_config,
                          hierarchy=warm.hierarchy,
                          predictor=warm.predictor, ghr=warm.ghr)
    core.inject_state(list(plan.snapshot.regs),
                      Memory(plan.snapshot.memory), plan.snapshot.pc)
    delivered = []
    window_profile = dataclasses.replace(
        profile, seed=SamplingRng(profile.seed).fork(
            ("window", plan.index)).seed)
    unit = ProfileMeUnit(window_profile, handler=delivered.extend,
                         auto_rearm=False)
    core.add_probe(unit)
    unit.arm_major_at(plan.lead)
    cycles = core.run(max_retired=plan.limit)
    unit.finalize()
    return WindowResult(index=plan.index, cycles=cycles,
                        retired=core.retired, fetched=core.fetched,
                        aborted=core.aborted,
                        mispredicts=core.mispredicts,
                        records=delivered, unit_stats=unit.stats)


def _run_two_speed_batched(spec):
    """Two-speed with batched (optionally parallel) detailed windows.

    One functional pass plans every window: it fast-forwards through the
    whole run (trace-cache accelerated), snapshotting architectural and
    warm state at each window entry, and advances sampling exactly like
    the chained scheduler — the next sample point is drawn from the
    window's anchor, and draws landing inside an already-planned window
    extent are dropped as ``dropped_busy``.  The planned windows then
    run independently, serially or fanned across worker processes
    (``spec.window_workers``), and merge in plan order onto one cycle
    axis.  Worker count can never change results:
    ``tests/engine/test_twospeed_batched.py`` pins serial/parallel
    byte-equality.

    Documented approximation vs chained mode: each window starts from
    *functionally* warmed state — the previous windows' detailed-core
    effects on caches and predictor (wrong-path pollution, speculative
    BTB updates) are not visible to later windows, and the inter-window
    skip is measured in functional retirements for the window extent.
    Architectural state is exact (the committed path is
    engine-independent).
    """
    from repro.engine.parallel import run_windows
    from repro.engine.session import CoreStats, SessionResult

    profile = spec.profile
    program = spec.program
    machine_config = spec.config or MachineConfig.alpha21264_like()
    window = spec.window
    warmup = max(1, window // WARMUP_DIVISOR)

    warm = WarmState(
        hierarchy=MemoryHierarchy(machine_config.memory),
        predictor=BranchPredictor(machine_config.predictor))
    interp = Interpreter(program)
    cache = BlockCache(program)
    scheduler_rng = SamplingRng(profile.seed)

    def next_interval():
        if profile.distribution == "geometric":
            return scheduler_rng.geometric_interval(profile.mean_interval)
        return scheduler_rng.interval(profile.mean_interval, profile.jitter)

    stats = TwoSpeedStats(warmup=warmup)
    unit_stats = ProfileMeStats()
    total_retired = 0
    max_retired = spec.max_retired
    state = interp.state
    plans = []

    countdown = next_interval()
    while not state.halted:
        if max_retired is not None and total_retired >= max_retired:
            break
        lead = countdown if countdown < warmup else warmup
        skip = countdown - lead
        if max_retired is not None:
            skip = min(skip, max_retired - total_retired)
        if skip:
            done = fast_forward(interp, warm, skip, cache=cache)
            total_retired += done
            stats.fast_forwarded += done
            if state.halted:
                break
        if max_retired is not None and total_retired >= max_retired:
            break

        limit = window
        if max_retired is not None:
            limit = min(limit, max_retired - total_retired)
        plans.append(WindowPlan(index=len(plans),
                                snapshot=state.snapshot(),
                                warm=copy.deepcopy(warm),
                                lead=lead, limit=limit))
        # Advance functionally across the window extent: the committed
        # path is engine-independent, so this lands on exactly the
        # architectural state the detailed window will retire up to.
        done = fast_forward(interp, warm, limit, cache=cache)
        total_retired += done

        countdown = next_interval() - (done - lead)
        while countdown <= 0:
            # Sample point inside the extent of the window just planned:
            # same free-running-counter rule as the chained scheduler.
            stats.skipped_samples += 1
            unit_stats.selections += 1
            unit_stats.dropped_busy += 1
            countdown += next_interval()

    driver = ProfileMeDriver(keep_records=spec.keep_records)
    database = driver.add_sink(
        ProfileDatabase(keep_addresses=spec.keep_addresses))
    pair_analyzer = None
    if profile.effective_group_size >= 2:
        pair_analyzer = driver.add_sink(PairAnalyzer(
            mean_interval=profile.mean_interval,
            pair_window=profile.pair_window,
            issue_width=machine_config.issue_width))
    push_sink = None
    if spec.push_to:
        from repro.service.client import ProfileClient, ServiceSink

        push_sink = driver.add_sink(ServiceSink(ProfileClient(spec.push_to)))

    results = run_windows(program, machine_config, profile, plans,
                          workers=spec.window_workers)

    fetched = aborted = mispredicts = 0
    cycle_base = 0
    for result in results:
        driver.handle_interrupt([_rebase(sample, cycle_base)
                                 for sample in result.records])
        cycle_base += result.cycles
        _merge_unit_stats(unit_stats, result.unit_stats)
        stats.windows += 1
        stats.detailed_retired += result.retired
        stats.detailed_cycles += result.cycles
        fetched += result.fetched
        aborted += result.aborted
        mispredicts += result.mispredicts

    if push_sink is not None:
        push_sink.close()

    stats.final_state = state.snapshot()
    cycles = stats.detailed_cycles
    ipc = (stats.detailed_retired / cycles) if cycles else 0.0
    core_stats = CoreStats(cycles=cycles, retired=total_retired,
                           fetched=fetched, aborted=aborted,
                           mispredicts=mispredicts, ipc=ipc)
    return SessionResult(
        spec=spec, core=None, cycles=cycles, stats=core_stats,
        unit=None, driver=driver, database=database,
        pair_analyzer=pair_analyzer, truth=None, counter=None,
        sampling_stats=unit_stats, two_speed=stats)
