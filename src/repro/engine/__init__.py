"""Shared simulation engine: one way to build, run, and observe a machine.

Every execution substrate in the repo — the out-of-order core, the
in-order core, the SMT machine, and the multiprogrammed session — runs
through this layer:

* :class:`ProbeBus` — per-callback probe dispatch built at attach time,
  so callbacks a probe does not override are never called and a
  probe-free machine pays nothing for observability;
* :class:`CoreBase` — the run loop (cycle/retire limits, deadlock
  detection, resumable ``drain=False`` stepping) and probe plumbing
  shared by every core;
* :class:`SessionSpec` / :func:`run_session` — declarative description
  of one experiment (program + machine + profilers), subsuming the
  harness entry points and the per-context wiring in ``repro.multiprog``;
* :func:`run_sessions_parallel` — fans independent sessions across
  worker processes for sweeps;
* :func:`run_sweep` — the resumable, fault-tolerant sweep layer above
  it: content-addressed result caching (:func:`spec_key` /
  :class:`ResultStore`), per-spec timeout and retry, chunked
  checkpoints, and live :class:`SweepMetrics`.

See ``docs/architecture.md`` for the design rationale.
"""

from repro.engine.bus import PROBE_CALLBACKS, ProbeBus, probe_overrides
from repro.engine.core import CoreBase

# The session/parallel layers sit *above* the cores (they import the
# machine models), while the cores themselves import CoreBase/ProbeBus
# from this package.  Loading them eagerly here would therefore be
# circular; PEP 562 lazy attributes keep `repro.engine.run_session`
# spelling working without the cycle.
_SESSION_EXPORTS = ("CoreStats", "CounterRun", "ProfileStack",
                    "SessionResult", "SessionSpec", "attach_profileme",
                    "build_core", "profile_config_for_context",
                    "run_session")
_PARALLEL_EXPORTS = ("run_sessions_parallel",)
_SWEEP_EXPORTS = ("ResultStore", "SpecOutcome", "SweepMetrics",
                  "SweepResult", "run_sweep", "spec_key")


def __getattr__(name):
    if name in _SESSION_EXPORTS:
        from repro.engine import session

        return getattr(session, name)
    if name in _PARALLEL_EXPORTS:
        from repro.engine import parallel

        return getattr(parallel, name)
    if name in _SWEEP_EXPORTS:
        from repro.engine import sweep

        return getattr(sweep, name)
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))


__all__ = [
    "CoreBase",
    "CoreStats",
    "CounterRun",
    "PROBE_CALLBACKS",
    "ProbeBus",
    "ProfileStack",
    "ResultStore",
    "SessionResult",
    "SessionSpec",
    "SpecOutcome",
    "SweepMetrics",
    "SweepResult",
    "attach_profileme",
    "build_core",
    "probe_overrides",
    "profile_config_for_context",
    "run_session",
    "run_sessions_parallel",
    "run_sweep",
    "spec_key",
]
