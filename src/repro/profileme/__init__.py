"""ProfileMe: the paper's instruction-sampling hardware and driver."""

from repro.profileme.driver import ProfileMeDriver
from repro.profileme.fetch_counter import (CountMode,
                                           FetchedInstructionCounter)
from repro.profileme.registers import (GroupRecord, LATENCY_FIELDS,
                                       PairedRecord, ProfileRecord,
                                       capture_record)
from repro.profileme.unit import ProfileMeConfig, ProfileMeStats, ProfileMeUnit

__all__ = [
    "CountMode",
    "FetchedInstructionCounter",
    "GroupRecord",
    "LATENCY_FIELDS",
    "PairedRecord",
    "ProfileMeConfig",
    "ProfileMeDriver",
    "ProfileMeStats",
    "ProfileMeUnit",
    "ProfileRecord",
    "capture_record",
]
