"""The ProfileMe hardware unit (sections 4.1-4.3).

``ProfileMeUnit`` is a :class:`~repro.cpu.probes.Probe` that attaches to a
core and implements the complete sampling pipeline in hardware terms:

1. a software-written :class:`FetchedInstructionCounter` selects a fetch
   slot at a random interval (major interval);
2. the selected instruction is *tagged* (DynInst.profile_tag) and its
   execution is latched into a Profile Register set;
3. for paired / N-way sampling (section 4.1.2: "for paired sampling or,
   in general, N-way sampling, ceil(log(N+1)) bits are needed"), further
   members are selected at successive minor intervals (uniform in
   [1, W]), each latched into its own register set along with its fetch
   offset from the first member;
4. when every instruction of a sample group has retired or aborted —
   including the delayed data of loads that retire before their fill
   (section 4.1.4 requires the interrupt to wait for all signals) — the
   record is pushed into a small on-chip buffer; when the buffer holds
   ``buffer_depth`` samples an interrupt is raised: the registered
   handler (profiling software) receives the records and fetch is stalled
   for ``interrupt_cost_cycles`` to model handler overhead (section 4.3).

Replicated register sets (section 4.3): with ``register_sets > 1``,
several sample groups may be in flight concurrently, which removes the
selection drops that otherwise thin aggressive sampling rates.

Unbiased intervals: the major counter free-runs — it keeps counting while
sample groups are in flight, and a selection that lands when no register
set is free (or while another group is still choosing its members) is
*dropped* (counted in ``stats.dropped_busy``) rather than deferred.
Re-arming only after the previous sample completes would silently stretch
every interval by the sample's flight time and bias the ``k * S``
estimator low; with free-running intervals the expected spacing is
exactly the configured S.

The unit observes *only* what the paper's hardware can observe: fetch
slots, retirement, and aborts.  It never peeks at simulator internals.
"""

import math
from dataclasses import dataclass
from typing import Optional

from repro.cpu.probes import Probe, SLOT_EMPTY, SLOT_INST, SLOT_OFFPATH
from repro.errors import ConfigError
from repro.events import AbortReason, Event
from repro.profileme.fetch_counter import CountMode, FetchedInstructionCounter
from repro.probes.props import ratio
from repro.profileme.registers import (GroupRecord, PairedRecord,
                                       ProfileRecord, capture_record,
                                       register_record_probes)
from repro.utils.rng import SamplingRng


@dataclass(frozen=True)
class ProfileMeConfig:
    """Sampling parameters (the software-visible control registers)."""

    mean_interval: int = 1000  # S: mean fetched instructions between samples
    jitter: float = 0.5  # interval randomization halfwidth (uniform mode)
    distribution: str = "uniform"  # "uniform" or "geometric" intervals
    mode: CountMode = CountMode.INSTRUCTIONS
    paired: bool = False  # shorthand for group_size=2
    group_size: int = 0  # 0 = derive from `paired`; >= 1 explicit N-way
    pair_window: int = 96  # W: conservative bound on in-flight instructions
    register_sets: int = 1  # concurrent sample groups (section 4.3)
    path_bits: int = 16  # width of the Profiled Path Register
    buffer_depth: int = 1  # samples buffered per interrupt (section 4.3)
    interrupt_cost_cycles: int = 0  # fetch-stall cost per interrupt
    # Profiled Context Register value.  None (default) records each
    # instruction's own hardware context — the right behaviour when one
    # unit samples an SMT machine's merged fetch stream.  A fixed value
    # overrides it (used by per-context units in repro.multiprog).
    context: Optional[int] = None
    seed: int = 1

    def __post_init__(self):
        if self.mean_interval < 1:
            raise ConfigError("mean_interval must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")
        if self.pair_window < 1:
            raise ConfigError("pair_window must be >= 1")
        if self.buffer_depth < 1:
            raise ConfigError("buffer_depth must be >= 1")
        if self.path_bits < 1 or self.path_bits > 30:
            raise ConfigError("path_bits must be in [1, 30]")
        if self.distribution not in ("uniform", "geometric"):
            raise ConfigError("distribution must be 'uniform' or "
                              "'geometric', got %r" % (self.distribution,))
        if self.group_size < 0 or self.group_size > 8:
            raise ConfigError("group_size must be in [0, 8]")
        if self.paired and self.group_size not in (0, 2):
            raise ConfigError("paired=True conflicts with group_size=%d"
                              % self.group_size)
        if self.register_sets < 1 or self.register_sets > 16:
            raise ConfigError("register_sets must be in [1, 16]")

    @property
    def effective_group_size(self):
        """Members per sample group: N-way size, or 2 when paired."""
        if self.group_size:
            return self.group_size
        return 2 if self.paired else 1

    @property
    def tag_bits(self):
        """Hardware cost of the ProfileMe tag (section 4.1.2)."""
        distinct = self.effective_group_size * self.register_sets
        return max(1, math.ceil(math.log2(distinct + 1)))


@dataclass
class ProfileMeStats:
    """Hardware-level accounting (useful-sample yield, interrupt costs)."""

    selections: int = 0  # major-counter expirations
    dropped_busy: int = 0  # major expirations lost to busy registers
    member_selections: int = 0  # group members chosen (major + minor)
    tagged: int = 0  # members landing on a pipeline instruction
    offpath_selections: int = 0  # members on in-block, off-path slots
    empty_selections: int = 0  # members with no instruction at all
    records_delivered: int = 0
    interrupts: int = 0
    overhead_cycles: int = 0
    max_concurrent_groups: int = 0

    @property
    def useful_fraction(self):
        """Fraction of member selections that tagged an instruction."""
        return ratio(self.tagged, self.member_selections)


class _SampleGroup:
    """One in-flight sample: up to N selections and their records."""

    __slots__ = ("size", "records", "fetch_cycles", "distances",
                 "selections", "expected")

    def __init__(self, size):
        self.size = size
        self.records = {}  # selection ordinal -> ProfileRecord
        self.fetch_cycles = {}  # ordinal -> selection cycle
        self.distances = []  # minor intervals programmed between members
        self.selections = 0
        self.expected = 0  # tagged members still in flight

    @property
    def selecting(self):
        """Still choosing members (owns the minor counter)."""
        return self.selections < self.size

    @property
    def done(self):
        return not self.selecting and self.expected == 0


class ProfileMeUnit(Probe):
    """Instruction-sampling hardware attached to a core."""

    def __init__(self, config=None, handler=None, auto_rearm=True):
        self.config = config or ProfileMeConfig()
        self.handler = handler  # callable(list_of_records)
        # auto_rearm=False makes the major counter one-shot: it fires at
        # the armed count and stays disarmed until software writes it
        # again (arm_major_at).  The two-speed scheduler uses this — it
        # draws the inter-sample intervals itself and arms the counter
        # only for the distance into each detailed window.
        self.auto_rearm = auto_rearm
        self.rng = SamplingRng(self.config.seed)
        self.major = FetchedInstructionCounter(self.config.mode)
        self.minor = FetchedInstructionCounter(self.config.mode)
        self.stats = ProfileMeStats()
        self.buffer = []
        self.core = None

        self.last_record = None  # most recently latched ProfileRecord
        self._groups = []  # in-flight groups, oldest first
        self._selecting_group = None  # the group owning the minor counter
        self._pending = {}  # id(dyninst) -> (group, ordinal)
        self._next_tag = 0
        # Retired loads whose fill is still in flight: section 4.1.4 says
        # the interrupt "must be delayed until all the appropriate signals
        # have had time to reach the Profile Registers", so capture waits
        # for the Load-issue->Completion latency register to latch.
        self._awaiting_fill = []  # (dyninst, group, ordinal)

    # ------------------------------------------------------------------

    def attach(self, core):
        self.core = core
        if self.auto_rearm:
            self._arm_major()

    def arm_major_at(self, value):
        """Software write of the fetched-instruction counter (section 4.1).

        Arms the major counter to fire after *value* counted slots;
        with ``auto_rearm=False`` this is the only way it ever arms.
        """
        self.major.write(value)

    def _arm_major(self):
        if self.config.distribution == "geometric":
            value = self.rng.geometric_interval(self.config.mean_interval)
        else:
            value = self.rng.interval(self.config.mean_interval,
                                      self.config.jitter)
        self.major.write(value)

    def _arm_minor(self, group):
        distance = self.rng.pair_distance(self.config.pair_window)
        group.distances.append(distance)
        self.minor.write(distance)
        self._selecting_group = group

    # ------------------------------------------------------------------
    # Fetch-side selection.

    def on_fetch_slots(self, cycle, slots):
        for slot in slots:
            if self.minor.armed and self.minor.tick(slot):
                self._select_member(self._selecting_group, slot, cycle)
            if self.major.tick(slot):
                self.stats.selections += 1
                if (len(self._groups) >= self.config.register_sets
                        or self._selecting_group is not None):
                    # No free register set (or the minor counter is busy
                    # choosing another group's members): the selection is
                    # dropped so the next interval starts on schedule.
                    self.stats.dropped_busy += 1
                else:
                    self._start_group(slot, cycle)
                if self.auto_rearm:
                    self._arm_major()

    def _start_group(self, slot, cycle):
        group = _SampleGroup(self.config.effective_group_size)
        self._groups.append(group)
        self.stats.max_concurrent_groups = max(
            self.stats.max_concurrent_groups, len(self._groups))
        self._select_member(group, slot, cycle)
        if slot.kind == SLOT_EMPTY and group.size == 1:
            # Nothing in flight: the attempt is wasted immediately.
            self._groups.remove(group)
            return
        if slot.kind == SLOT_EMPTY and group.selections == 1:
            # An empty *first* selection abandons the whole group: there
            # is no anchor instruction to pair against.
            self._groups.remove(group)
            return
        self._continue_or_settle(group)

    def _select_member(self, group, slot, cycle):
        ordinal = group.selections
        group.selections += 1
        group.fetch_cycles[ordinal] = cycle
        self.stats.member_selections += 1
        if slot.kind == SLOT_INST:
            dyninst = slot.dyninst
            dyninst.profile_tag = self._next_tag
            self._next_tag = (self._next_tag + 1) % (
                1 << self.config.tag_bits)
            self._pending[id(dyninst)] = (group, ordinal)
            group.expected += 1
            self.stats.tagged += 1
        elif slot.kind == SLOT_OFFPATH:
            # The instruction is in the fetch block but off the predicted
            # path: the decoder discards it.  ProfileMe still produces a
            # record showing the immediate abort.
            self.stats.offpath_selections += 1
            group.records[ordinal] = self._offpath_record(slot.pc, cycle)
        else:
            assert slot.kind == SLOT_EMPTY
            self.stats.empty_selections += 1
        if group is self._selecting_group:
            self._selecting_group = None
            self.minor.disarm()
            self._continue_or_settle(group)

    def _continue_or_settle(self, group):
        if group.selecting:
            self._arm_minor(group)
        elif group.done:
            self._complete_group(group)

    def _offpath_record(self, pc, cycle):
        return ProfileRecord(
            context=self.config.context or 0,
            pc=pc,
            op=None,
            addr=None,
            events=Event.ABORTED | Event.BAD_PATH,
            abort_reason=AbortReason.FETCH_DISCARD,
            history=0,
            fetch_to_map=None,
            map_to_data_ready=None,
            data_ready_to_issue=None,
            issue_to_retire_ready=None,
            retire_ready_to_retire=None,
            load_issue_to_completion=None,
            fetch_cycle=cycle,
            done_cycle=cycle,
        )

    # ------------------------------------------------------------------
    # Completion side.

    def on_retire(self, dyninst, cycle):
        self._maybe_capture(dyninst, cycle)

    def on_abort(self, dyninst, cycle):
        self._maybe_capture(dyninst, cycle)

    def _maybe_capture(self, dyninst, cycle):
        if dyninst.profile_tag is None:
            return
        entry = self._pending.pop(id(dyninst), None)
        if entry is None:
            return
        group, ordinal = entry
        dyninst.profile_tag = None
        if (dyninst.retired and dyninst.inst.is_load
                and dyninst.load_complete_cycle is None):
            # The load retired ahead of its data; hold the register set
            # until the fill latches Load-issue->Completion.
            self._awaiting_fill.append((dyninst, group, ordinal))
            return
        self._latch(dyninst, group, ordinal, cycle)

    def _latch(self, dyninst, group, ordinal, cycle):
        record = capture_record(
            dyninst, self.config.path_bits, cycle,
            context=self.config.context)
        group.records[ordinal] = record
        self.last_record = record
        group.expected -= 1
        if group.done:
            self._complete_group(group)

    def on_cycle_end(self, cycle):
        if not self._awaiting_fill:
            return
        still_waiting = []
        for dyninst, group, ordinal in self._awaiting_fill:
            if dyninst.load_complete_cycle is not None:
                self._latch(dyninst, group, ordinal, cycle)
            else:
                still_waiting.append((dyninst, group, ordinal))
        self._awaiting_fill = still_waiting

    # ------------------------------------------------------------------
    # Delivery.

    def _complete_group(self, group):
        if group in self._groups:
            self._groups.remove(group)
        sample = self._assemble(group)
        if sample is not None:
            self._buffer_sample(sample)

    def _assemble(self, group):
        first = group.records.get(0)
        if group.size == 1:
            return first
        if first is None:
            return None
        if group.size == 2:
            second = group.records.get(1)
            intra = None
            if 1 in group.fetch_cycles:
                intra = group.fetch_cycles[1] - group.fetch_cycles[0]
            return PairedRecord(
                first=first, second=second, intra_pair_cycles=intra,
                intra_pair_distance=(group.distances[0]
                                     if group.distances else None))
        base = group.fetch_cycles[0]
        records = tuple(group.records.get(i) for i in range(group.size))
        offsets = tuple(
            (group.fetch_cycles[i] - base
             if i in group.fetch_cycles and group.records.get(i) is not None
             else None)
            for i in range(group.size))
        return GroupRecord(records=records, fetch_offsets=offsets,
                           distances=tuple(group.distances))

    def _buffer_sample(self, sample):
        self.buffer.append(sample)
        self.stats.records_delivered += 1
        if len(self.buffer) >= self.config.buffer_depth:
            self._raise_interrupt()

    def _raise_interrupt(self):
        if not self.buffer:
            return
        self.stats.interrupts += 1
        if self.config.interrupt_cost_cycles and self.core is not None:
            self.core.request_fetch_stall(self.config.interrupt_cost_cycles)
            self.stats.overhead_cycles += self.config.interrupt_cost_cycles
        delivered = list(self.buffer)
        self.buffer.clear()
        if self.handler is not None:
            self.handler(delivered)

    # ------------------------------------------------------------------
    # Introspection.

    def register_probes(self, registry, prefix="profileme"):
        """Expose the unit's accounting and Profile Registers.

        ``profileme.stats.*`` mirrors :class:`ProfileMeStats` (all
        counters plus the derived useful fraction); ``profileme.*``
        gauges report the live hardware state (buffer depth, in-flight
        groups); ``profileme.registers.*`` reads the most recently
        latched Profile Register set field by field.
        """
        stats = self.stats
        for field_name in ("selections", "dropped_busy", "member_selections",
                           "tagged", "offpath_selections", "empty_selections",
                           "records_delivered", "interrupts",
                           "overhead_cycles"):
            registry.register(
                "%s.stats.%s" % (prefix, field_name),
                lambda f=field_name: getattr(stats, f),
                kind="counter", unit="events",
                description="ProfileMeStats.%s" % field_name)
        registry.register(prefix + ".stats.useful_fraction",
                          lambda: stats.useful_fraction,
                          kind="fraction", unit="ratio",
                          description="tagged / member selections")
        registry.register(prefix + ".buffer.depth",
                          lambda: len(self.buffer),
                          kind="gauge", unit="samples",
                          description="samples buffered toward the next "
                                      "interrupt")
        registry.register(prefix + ".groups.in_flight",
                          lambda: len(self._groups),
                          kind="gauge", unit="groups",
                          description="sample groups currently in flight")
        register_record_probes(registry, lambda: self.last_record,
                               prefix=prefix + ".registers")

    def finalize(self):
        """Flush at end of simulation: deliver partial groups and buffer.

        On real hardware the workload never "ends"; in the simulator we
        surface whatever the hardware was holding so short runs lose no
        data.  Groups still counting minor intervals are delivered with
        the missing members as None; a load fill never observed leaves
        Load-issue->Completion unlatched.
        """
        for dyninst, group, ordinal in self._awaiting_fill:
            self._latch(dyninst, group, ordinal, dyninst.retire_cycle)
        self._awaiting_fill = []
        self._selecting_group = None
        self.minor.disarm()
        for group in list(self._groups):
            if group.expected == 0:
                group.selections = group.size  # stop selecting
                self._complete_group(group)
        self._raise_interrupt()
