"""The Fetched Instruction Counter (section 4.1.1).

Software writes a pseudo-random value; the counter decrements as the
fetcher advances, and the instruction (or fetch opportunity) it lands on
is selected for profiling.  Both counting disciplines the paper discusses
are implemented:

* ``CountMode.INSTRUCTIONS`` — decrement once per instruction fetched on
  the predicted control path.  Every selection lands on an instruction,
  but the hardware must handle the variable number (0..fetch_width) of
  predicted-path instructions per cycle.
* ``CountMode.FETCH_OPPORTUNITIES`` — decrement once per fetch opportunity
  (fetch_width per cycle, unconditionally).  Simpler hardware, but a
  selection may land on an off-path instruction or on no instruction at
  all, "effectively reducing the useful sampling rate".

The yield difference between the two modes is quantified by
``benchmarks/bench_ablation_fetch_modes.py``.
"""

import enum

from repro.cpu.probes import SLOT_INST
from repro.errors import ConfigError


class CountMode(enum.Enum):
    """What one counter decrement corresponds to."""

    INSTRUCTIONS = "instructions"
    FETCH_OPPORTUNITIES = "fetch_opportunities"


class FetchedInstructionCounter:
    """Software-writable countdown over the fetch stream."""

    def __init__(self, mode=CountMode.INSTRUCTIONS):
        if not isinstance(mode, CountMode):
            raise ConfigError("mode must be a CountMode, got %r" % (mode,))
        self.mode = mode
        self._remaining = None  # None = disarmed

    @property
    def armed(self):
        return self._remaining is not None

    def write(self, value):
        """Arm the counter with *value* (the software's random interval)."""
        if value < 1:
            raise ConfigError("counter value must be >= 1, got %r" % (value,))
        self._remaining = value

    def disarm(self):
        self._remaining = None

    def tick(self, slot):
        """Advance over one fetch slot; True if the counter fired on it."""
        if self._remaining is None:
            return False
        if self.mode is CountMode.INSTRUCTIONS and slot.kind != SLOT_INST:
            return False
        self._remaining -= 1
        if self._remaining == 0:
            self._remaining = None
            return True
        return False

    def consume(self, slots):
        """Advance over one cycle's fetch slots.

        Returns the index of the selected slot, or None if the counter did
        not reach zero this cycle.  The caller decides what to do when the
        selected slot holds no usable instruction.
        """
        for index, slot in enumerate(slots):
            if self.tick(slot):
                return index
        return None
