"""Profile registers: what the ProfileMe hardware records (section 4.1.3).

A :class:`ProfileRecord` is the software-visible image of one sampled
instruction's Profile Registers:

* *Profiled Context Register* — ``context``;
* *Profiled PC Register* — ``pc``;
* *Profiled Address Register* — ``addr`` (effective address of loads and
  stores, target address of indirect jumps);
* *Profiled Event Register* — ``events`` + ``retired`` + ``abort_reason``;
* *Profiled Path Register* — ``history`` (low *path_bits* of the global
  branch-history register captured at fetch);
* *Latency Registers* — the six Table 1 latencies.

``fetch_cycle`` and ``done_cycle`` are absolute processor-cycle-counter
readings; real hardware exposes a cycle counter (Alpha PCC) and the
interrupt handler can timestamp samples, so including them does not grant
the software anything unimplementable.

The capture function reads **only architecturally observable fields** of a
DynInst — never simulator bookkeeping like physical register numbers.
"""

from dataclasses import dataclass
from typing import Optional

from repro.events import AbortReason, Event
from repro.isa.opcodes import Opcode

# The Table 1 latency register names, in pipeline order.
LATENCY_FIELDS = (
    "fetch_to_map",
    "map_to_data_ready",
    "data_ready_to_issue",
    "issue_to_retire_ready",
    "retire_ready_to_retire",
    "load_issue_to_completion",
)


@dataclass(frozen=True)
class ProfileRecord:
    """Software-visible image of one instruction's Profile Registers."""

    context: int
    pc: int
    op: Optional[Opcode]  # None for off-path selections (never decoded)
    addr: Optional[int]
    events: Event
    abort_reason: AbortReason
    history: int

    fetch_to_map: Optional[int]
    map_to_data_ready: Optional[int]
    data_ready_to_issue: Optional[int]
    issue_to_retire_ready: Optional[int]
    retire_ready_to_retire: Optional[int]
    load_issue_to_completion: Optional[int]

    fetch_cycle: int
    done_cycle: int  # retire or abort cycle

    @property
    def retired(self):
        return bool(self.events & Event.RETIRED)

    @property
    def fetch_to_issue(self):
        """Cycles from fetch to issue (None if the instruction never issued)."""
        total = 0
        for field_name in ("fetch_to_map", "map_to_data_ready",
                           "data_ready_to_issue"):
            value = getattr(self, field_name)
            if value is None:
                return None
            total += value
        return total

    @property
    def fetch_to_retire_ready(self):
        """The "in progress" latency used by the wasted-issue-slot metric."""
        issue = self.fetch_to_issue
        if issue is None or self.issue_to_retire_ready is None:
            return None
        return issue + self.issue_to_retire_ready

    def has_event(self, event):
        return bool(self.events & event)


def capture_record(dyninst, path_bits, done_cycle, context=None):
    """Latch a DynInst's observable state into a ProfileRecord.

    *context* is the Profiled Context Register value (the hardware's
    current address-space id); defaults to the DynInst's own context.
    """
    inst = dyninst.inst
    addr = None
    if inst.is_memory or inst.is_prefetch:
        addr = dyninst.eff_addr
    elif inst.op in (Opcode.JMP, Opcode.RET):
        addr = dyninst.actual_target
    history_mask = (1 << path_bits) - 1
    return ProfileRecord(
        context=dyninst.context if context is None else context,
        pc=dyninst.pc,
        op=inst.op,
        addr=addr,
        # The cores keep DynInst.events as a raw int bit-field (hot-path
        # composition); the latched record restores the enum type.
        events=Event(dyninst.events),
        abort_reason=dyninst.abort_reason,
        history=dyninst.history_at_fetch & history_mask,
        fetch_to_map=dyninst.fetch_to_map,
        map_to_data_ready=dyninst.map_to_data_ready,
        data_ready_to_issue=dyninst.data_ready_to_issue,
        issue_to_retire_ready=dyninst.issue_to_retire_ready,
        retire_ready_to_retire=dyninst.retire_ready_to_retire,
        load_issue_to_completion=dyninst.load_issue_to_completion,
        fetch_cycle=dyninst.fetch_cycle,
        done_cycle=done_cycle,
    )


def register_record_probes(registry, read_record, prefix="profileme.registers"):
    """Register one gauge per Profile Register field.

    *read_record* returns the currently-latched :class:`ProfileRecord`
    (or None before the first sample); each probe reads one field out of
    it, mirroring how software reads the hardware's register file after
    an interrupt.  All reads are None-safe and JSON-safe: enums flatten
    to their integer value, missing records read as None.
    """

    def field_reader(field_name, convert=None):
        def read():
            record = read_record()
            if record is None:
                return None
            value = getattr(record, field_name)
            if value is None or convert is None:
                return value
            return convert(value)
        return read

    scalar_fields = (
        ("context", None, "Profiled Context Register"),
        ("pc", None, "Profiled PC Register"),
        ("addr", None, "Profiled Address Register"),
        ("history", None, "Profiled Path Register"),
        ("fetch_cycle", None, "cycle the sampled instruction was fetched"),
        ("done_cycle", None, "cycle the sample retired or aborted"),
        ("events", int, "Profiled Event Register bit-field"),
        ("abort_reason", lambda reason: reason.value,
         "abort reason name ('none' when retired)"),
    )
    for field_name, convert, description in scalar_fields:
        registry.register("%s.%s" % (prefix, field_name),
                          field_reader(field_name, convert),
                          kind="gauge", unit="",
                          description=description)
    for field_name in LATENCY_FIELDS:
        registry.register("%s.%s" % (prefix, field_name),
                          field_reader(field_name),
                          kind="gauge", unit="cycles",
                          description="Table 1 latency register: "
                          + field_name.replace("_", " "))
    registry.register(prefix + ".retired",
                      field_reader("retired", int),
                      kind="gauge", unit="bool",
                      description="1 when the latched sample retired")


@dataclass(frozen=True)
class GroupRecord:
    """One N-way sample (section 4.1.2's "in general, N-way sampling").

    The hardware generalization of paired sampling: N instructions are
    selected at successive random minor intervals, each latched into its
    own Profile Register set; the interrupt fires when all have left the
    machine.  A ⌈log(N+1)⌉-bit ProfileMe tag distinguishes the members.

    Attributes:
        records: per-ordinal records; None where a selection landed on an
            empty fetch opportunity (or the run ended first).
        fetch_offsets: each member's fetch-time offset in cycles from the
            first member (None for missing members).
        distances: the minor intervals the software programmed between
            consecutive members.
    """

    records: tuple
    fetch_offsets: tuple
    distances: tuple

    @property
    def first(self):
        return self.records[0] if self.records else None

    @property
    def complete(self):
        return all(record is not None for record in self.records)

    def member_pairs(self):
        """Decompose into ordered (earlier, later, cycle_offset) pairs.

        An N-way group yields N(N-1)/2 concurrent pairs per interrupt,
        each analyzable exactly like a paired sample — the statistical
        payoff of N-way sampling.
        """
        pairs = []
        for i in range(len(self.records)):
            for j in range(i + 1, len(self.records)):
                if self.records[i] is None or self.records[j] is None:
                    continue
                if (self.fetch_offsets[i] is None
                        or self.fetch_offsets[j] is None):
                    continue
                pairs.append((self.records[i], self.records[j],
                              self.fetch_offsets[j] - self.fetch_offsets[i]))
        return pairs


@dataclass(frozen=True)
class PairedRecord:
    """One paired sample (section 4.2).

    Attributes:
        first: record of the first sampled instruction.
        second: record of the second, or None if the simulation ended
            before one was selected (delivered so software sees the tail).
        intra_pair_cycles: fetch-time separation in cycles — the latency
            register the paired-sampling hardware adds so the two sets of
            latency registers can be correlated (section 4.2).
        intra_pair_distance: the minor interval in fetched instructions
            (known to software because it wrote the interval register).
    """

    first: ProfileRecord
    second: Optional[ProfileRecord]
    intra_pair_cycles: Optional[int]
    intra_pair_distance: Optional[int]

    @property
    def complete(self):
        return self.second is not None
