"""Profiling software: the interrupt handler side of ProfileMe (section 5).

``ProfileMeDriver`` plays the role of the DCPI-style daemon: it registers
itself as the ProfileMe interrupt handler, receives batches of records,
and either logs them (complete-samples mode) or folds them into
aggregation sinks as they arrive (the compact-storage mode the paper
recommends: "aggregating samples for the same instruction").

The driver is deliberately thin — the real analysis lives in
``repro.analysis`` — but it is the single place records enter software,
so retention policy (keep-all vs. aggregate-only, and the ``max_records``
cap that bounds keep-all on long runs) is decided here.
"""

from repro.profileme.registers import GroupRecord, PairedRecord


class ProfileMeDriver:
    """Collects delivered samples and dispatches them to sinks."""

    def __init__(self, keep_records=True, max_records=None):
        """*max_records*: cap on retained samples across ``records`` /
        ``pairs`` / ``groups`` (None = unbounded).  Samples past the cap
        still reach every sink and still count in ``delivered`` — only
        raw retention stops, with ``dropped`` counting what was shed, so
        a long continuous-profiling session cannot exhaust memory.
        """
        self.keep_records = keep_records
        self.max_records = max_records
        self.records = []  # ProfileRecord (single sampling)
        self.pairs = []  # PairedRecord (paired sampling)
        self.groups = []  # GroupRecord (N-way sampling)
        self.delivered = 0
        self.batches = 0
        self.dropped = 0  # samples not retained because of max_records
        self._sinks = []

    @property
    def retained(self):
        """Samples currently held across all three retention lists."""
        return len(self.records) + len(self.pairs) + len(self.groups)

    def add_sink(self, sink):
        """Register an object with an ``add(record)`` method.

        Sinks receive every record (for pairs, the PairedRecord itself);
        ``repro.analysis.database.ProfileDatabase`` and
        ``repro.analysis.concurrency.PairAnalyzer`` are the standard
        sinks, ``repro.service.client.ServiceSink`` ships records to a
        profile server.
        """
        self._sinks.append(sink)
        return sink

    def handle_interrupt(self, batch):
        """The interrupt handler: invoked by the hardware with >= 1 records."""
        self.batches += 1
        for sample in batch:
            self.delivered += 1
            if self.keep_records:
                if (self.max_records is not None
                        and self.retained >= self.max_records):
                    self.dropped += 1
                elif isinstance(sample, PairedRecord):
                    self.pairs.append(sample)
                elif isinstance(sample, GroupRecord):
                    self.groups.append(sample)
                else:
                    self.records.append(sample)
            for sink in self._sinks:
                sink.add(sample)

    def all_single_records(self):
        """Every ProfileRecord seen, unpacking pairs/groups into members."""
        unpacked = list(self.records)
        for pair in self.pairs:
            unpacked.append(pair.first)
            if pair.second is not None:
                unpacked.append(pair.second)
        for group in self.groups:
            unpacked.extend(r for r in group.records if r is not None)
        return unpacked
