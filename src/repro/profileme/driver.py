"""Profiling software: the interrupt handler side of ProfileMe (section 5).

``ProfileMeDriver`` plays the role of the DCPI-style daemon: it registers
itself as the ProfileMe interrupt handler, receives batches of records,
and either logs them (complete-samples mode) or folds them into
aggregation sinks as they arrive (the compact-storage mode the paper
recommends: "aggregating samples for the same instruction").

The driver is deliberately thin — the real analysis lives in
``repro.analysis`` — but it is the single place records enter software,
so retention policy (keep-all vs. aggregate-only) is decided here.
"""

from repro.profileme.registers import GroupRecord, PairedRecord, ProfileRecord


class ProfileMeDriver:
    """Collects delivered samples and dispatches them to sinks."""

    def __init__(self, keep_records=True):
        self.keep_records = keep_records
        self.records = []  # ProfileRecord (single sampling)
        self.pairs = []  # PairedRecord (paired sampling)
        self.groups = []  # GroupRecord (N-way sampling)
        self.delivered = 0
        self.batches = 0
        self._sinks = []

    def add_sink(self, sink):
        """Register an object with an ``add(record)`` method.

        Sinks receive every record (for pairs, the PairedRecord itself);
        ``repro.analysis.database.ProfileDatabase`` and
        ``repro.analysis.concurrency.PairAnalyzer`` are the standard sinks.
        """
        self._sinks.append(sink)
        return sink

    def handle_interrupt(self, batch):
        """The interrupt handler: invoked by the hardware with >= 1 records."""
        self.batches += 1
        for sample in batch:
            self.delivered += 1
            if self.keep_records:
                if isinstance(sample, PairedRecord):
                    self.pairs.append(sample)
                elif isinstance(sample, GroupRecord):
                    self.groups.append(sample)
                else:
                    self.records.append(sample)
            for sink in self._sinks:
                sink.add(sample)

    def all_single_records(self):
        """Every ProfileRecord seen, unpacking pairs/groups into members."""
        unpacked = list(self.records)
        for pair in self.pairs:
            unpacked.append(pair.first)
            if pair.second is not None:
                unpacked.append(pair.second)
        for group in self.groups:
            unpacked.extend(r for r in group.records if r is not None)
        return unpacked
